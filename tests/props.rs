//! Property-based tests: channel and checker invariants under arbitrary
//! operation sequences, and protocol safety under randomized schedules.

use nonfifo::channel::{
    AdversarialChannel, BoundedReorderChannel, Channel, FifoChannel, LossyFifoChannel,
    PacketMultiset, ProbabilisticChannel,
};
use nonfifo::ioa::spec::{check_dl1_dl2, check_pl1};
use nonfifo::ioa::{CopyId, Dir, Event, Execution, Header, Message, Packet, SpecMonitor};
use proptest::prelude::*;

/// Operations a test driver can apply to any channel.
#[derive(Debug, Clone)]
enum ChanOp {
    Send(u32),
    Poll,
    Tick,
}

fn chan_ops() -> impl Strategy<Value = Vec<ChanOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..6).prop_map(ChanOp::Send),
            Just(ChanOp::Poll),
            Just(ChanOp::Tick),
        ],
        0..200,
    )
}

/// Drives a channel with arbitrary ops, records the trace, and checks PL1
/// plus conservation (sent = delivered + dropped + in transit + queued).
fn drive(channel: &mut dyn Channel, ops: &[ChanOp]) {
    let dir = channel.dir();
    let mut exec = Execution::new();
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    for op in ops {
        match op {
            ChanOp::Send(h) => {
                let pkt = Packet::header_only(Header::new(*h));
                let copy = channel.send(pkt);
                exec.push(Event::SendPkt {
                    dir,
                    packet: pkt,
                    copy,
                });
            }
            ChanOp::Poll => {
                if let Some((pkt, copy)) = channel.poll_deliver() {
                    exec.push(Event::ReceivePkt {
                        dir,
                        packet: pkt,
                        copy,
                    });
                    delivered += 1;
                }
            }
            ChanOp::Tick => channel.tick(),
        }
        for (pkt, copy) in channel.drain_drops() {
            exec.push(Event::DropPkt {
                dir,
                packet: pkt,
                copy,
            });
            dropped += 1;
        }
    }
    check_pl1(&exec, dir).expect("PL1 must hold for every channel");
    assert_eq!(channel.total_delivered(), delivered);
    // Conservation: every sent copy is delivered, dropped, in transit, or
    // queued awaiting a poll.
    let accounted = delivered + dropped + channel.in_transit_len() as u64;
    assert!(
        channel.total_sent() >= accounted,
        "over-accounted: sent {} < accounted {}",
        channel.total_sent(),
        accounted
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pl1_holds_for_fifo(ops in chan_ops()) {
        drive(&mut FifoChannel::new(Dir::Forward), &ops);
    }

    #[test]
    fn pl1_holds_for_lossy_fifo(ops in chan_ops(), seed in 0u64..1000) {
        drive(&mut LossyFifoChannel::new(Dir::Forward, 0.4, seed), &ops);
    }

    #[test]
    fn pl1_holds_for_probabilistic(ops in chan_ops(), seed in 0u64..1000) {
        drive(&mut ProbabilisticChannel::new(Dir::Backward, 0.35, seed), &ops);
    }

    #[test]
    fn pl1_holds_for_bounded_reorder(ops in chan_ops(), seed in 0u64..1000, bound in 1u64..20) {
        drive(&mut BoundedReorderChannel::new(Dir::Forward, bound, seed), &ops);
    }

    #[test]
    fn pl1_holds_for_virtual_link(ops in chan_ops(), seed in 0u64..1000, spread in 0u64..12) {
        use nonfifo::transport::{RoutePolicy, VirtualLinkBuilder};
        let mut link = VirtualLinkBuilder::new(Dir::Forward)
            .route(0)
            .route(spread)
            .route(spread / 2)
            .policy(RoutePolicy::Random)
            .seed(seed)
            .build();
        drive(&mut link, &ops);
    }

    #[test]
    fn sliding_window_correct_under_in_window_reorder(
        seed in 0u64..500,
        w in 4u32..10,
    ) {
        // The E9 diagonal as a property: reorder bound B < w never breaks
        // the window-w protocol.
        use nonfifo::core::{SimConfig, Simulation};
        use nonfifo::protocols::SlidingWindow;
        let bound = u64::from(w) / 2; // strictly inside the window
        let mut sim = Simulation::bounded_reorder(SlidingWindow::new(w), bound.max(1), seed);
        let cfg = SimConfig { payloads: true, max_steps_per_message: 50_000 };
        let stats = sim.deliver(60, &cfg).expect("within tolerance");
        prop_assert_eq!(stats.delivered_payloads, (0..60).collect::<Vec<u64>>());
    }

    #[test]
    fn pl1_holds_for_adversarial_with_releases(ops in chan_ops(), seed in 0u64..1000) {
        // Interleave adversary releases between ordinary ops.
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        let dir = ch.dir();
        let mut exec = Execution::new();
        let mut rng = seed;
        for op in &ops {
            match op {
                ChanOp::Send(h) => {
                    let pkt = Packet::header_only(Header::new(*h));
                    let copy = ch.send(pkt);
                    exec.push(Event::SendPkt { dir, packet: pkt, copy });
                }
                ChanOp::Poll => {
                    // Pseudo-random adversary action.
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    match rng % 3 {
                        0 => { ch.release_all(); }
                        1 => { ch.release_oldest_of_header(Header::new((rng >> 8) as u32 % 6)); }
                        _ => { ch.drop_oldest_of_packet(Packet::header_only(Header::new((rng >> 8) as u32 % 6))); }
                    }
                    while let Some((pkt, copy)) = ch.poll_deliver() {
                        exec.push(Event::ReceivePkt { dir, packet: pkt, copy });
                    }
                }
                ChanOp::Tick => ch.tick(),
            }
            for (pkt, copy) in ch.drain_drops() {
                exec.push(Event::DropPkt { dir, packet: pkt, copy });
            }
        }
        check_pl1(&exec, dir).expect("PL1 must hold under adversary control");
    }

    #[test]
    fn multiset_conserves_copies(inserts in prop::collection::vec((0u32..5, 0u64..10_000), 0..100)) {
        let mut ms = PacketMultiset::new();
        let mut expected = 0usize;
        let mut used = std::collections::HashSet::new();
        for (h, c) in inserts {
            if used.insert(c) {
                ms.insert(Packet::header_only(Header::new(h)), CopyId::from_raw(c));
                expected += 1;
            }
        }
        assert_eq!(ms.len(), expected);
        let per_packet: usize = ms.packets().map(|p| ms.packet_copies(p)).sum();
        assert_eq!(per_packet, expected);
        let drained = ms.drain_all();
        assert_eq!(drained.len(), expected);
        // Mint order.
        for w in drained.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn monitor_agrees_with_offline_checker_on_message_streams(
        script in prop::collection::vec(prop_oneof![Just(true), Just(false)], 0..60)
    ) {
        // true = send_msg, false = receive_msg (identical messages).
        let mut exec = Execution::new();
        let mut monitor = SpecMonitor::new();
        let mut monitor_flagged = false;
        let mut sends = 0u64;
        let mut recvs = 0u64;
        for is_send in script {
            let e = if is_send {
                sends += 1;
                Event::SendMsg(Message::identical(sends - 1))
            } else {
                recvs += 1;
                Event::ReceiveMsg(Message::identical(recvs - 1))
            };
            if monitor.observe(&e).is_err() {
                monitor_flagged = true;
            }
            exec.push(e);
        }
        // With identical messages the online prefix check is exact: it
        // flags iff the offline DL1 matcher rejects.
        let offline = check_dl1_dl2(&exec).is_err();
        prop_assert_eq!(monitor_flagged, offline);
    }
}

mod text_format {
    use super::*;
    use nonfifo::ioa::text::{parse_text, write_text};
    use nonfifo::ioa::Payload;
    

    fn arb_event() -> impl Strategy<Value = Event> {
        let msg = (any::<u64>(), prop::option::of(any::<u64>())).prop_map(|(id, p)| match p {
            Some(w) => Message::with_payload(id, Payload::new(w)),
            None => Message::identical(id),
        });
        let pkt = (any::<u32>(), prop::option::of(any::<u64>())).prop_map(|(h, p)| match p {
            Some(w) => Packet::new(Header::new(h), Payload::new(w)),
            None => Packet::header_only(Header::new(h)),
        });
        let dir = prop_oneof![Just(Dir::Forward), Just(Dir::Backward)];
        prop_oneof![
            msg.clone().prop_map(Event::SendMsg),
            msg.prop_map(Event::ReceiveMsg),
            (dir.clone(), pkt.clone(), any::<u64>()).prop_map(|(dir, packet, c)| {
                Event::SendPkt { dir, packet, copy: CopyId::from_raw(c) }
            }),
            (dir.clone(), pkt.clone(), any::<u64>()).prop_map(|(dir, packet, c)| {
                Event::ReceivePkt { dir, packet, copy: CopyId::from_raw(c) }
            }),
            (dir, pkt, any::<u64>()).prop_map(|(dir, packet, c)| {
                Event::DropPkt { dir, packet, copy: CopyId::from_raw(c) }
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Arbitrary executions survive the text round trip unchanged.
        #[test]
        fn text_round_trip(events in prop::collection::vec(arb_event(), 0..60)) {
            let exec: Execution = events.into_iter().collect();
            let text = write_text(&exec);
            let back = parse_text(&text).expect("own output parses");
            prop_assert_eq!(back, exec);
        }
    }
}

mod protocol_safety {
    use super::*;
    use nonfifo::adversary::{Disposition, System};
    use nonfifo::protocols::SequenceNumber;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The naive protocol never violates the spec, whatever the channel
        /// does: park/deliver decisions drawn from proptest, plus random
        /// stale replays.
        #[test]
        fn sequence_number_is_unbreakable(
            decisions in prop::collection::vec(any::<u8>(), 20..200)
        ) {
            let mut sys = System::new(&SequenceNumber::new());
            let iter = decisions.into_iter();
            let mut outstanding = false;
            for d in iter {
                if !outstanding && sys.ready() {
                    sys.send_msg();
                    outstanding = true;
                }
                match d % 4 {
                    0 => { sys.step_park_all(); }
                    1 => { sys.step_deliver_all(); }
                    2 => {
                        // Replay a random stale copy if one exists.
                        let target = sys
                            .fwd
                            .parked_multiset()
                            .iter()
                            .nth(usize::from(d) % sys.fwd.in_transit_len().max(1))
                            .map(|(p, _)| p);
                        if let Some(p) = target {
                            sys.fwd.release_oldest_of_packet(p);
                            sys.drain_released();
                        }
                    }
                    _ => {
                        sys.step(|_, _, _| if d > 128 { Disposition::Deliver } else { Disposition::Park });
                    }
                }
                prop_assert!(sys.violation().is_none(), "violated: {:?}", sys.violation());
                if sys.counts().rm >= sys.counts().sm {
                    outstanding = false;
                }
            }
        }
    }
}

mod parser_robustness {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The trace parser never panics on arbitrary input — it returns a
        /// structured error instead.
        #[test]
        fn trace_parser_total(input in ".{0,200}") {
            let _ = nonfifo::ioa::text::parse_text(&input);
        }

        /// Same for the attack-schedule parser.
        #[test]
        fn schedule_parser_total(input in ".{0,200}") {
            let _ = nonfifo::adversary::Schedule::parse(&input);
        }
    }
}
