//! Property-based tests: channel and checker invariants under arbitrary
//! operation sequences, and protocol safety under randomized schedules.
//!
//! The generators run on the workspace's own deterministic PRNG
//! (`nonfifo-rng`), so every case is addressable by its seed: a failure
//! message names the seed, and rerunning the test replays the identical
//! input without a persisted regression corpus.

use nonfifo::channel::{
    AdversarialChannel, BoundedReorderChannel, Channel, Discipline, FaultObserver, FifoChannel,
    LossyFifoChannel, PacketMultiset, ProbabilisticChannel,
};
use nonfifo::ioa::spec::{check_dl1_dl2, check_pl1};
use nonfifo::ioa::{CopyId, Dir, Event, Execution, Header, Message, Packet, SpecMonitor};
use nonfifo_rng::StdRng;

/// Operations a test driver can apply to any channel.
#[derive(Debug, Clone)]
enum ChanOp {
    Send(u32),
    Poll,
    Tick,
}

fn chan_ops(rng: &mut StdRng) -> Vec<ChanOp> {
    let len = rng.gen_range(0..200);
    (0..len)
        .map(|_| match rng.gen_range(0..3) {
            0 => ChanOp::Send(rng.gen_range(0..6) as u32),
            1 => ChanOp::Poll,
            _ => ChanOp::Tick,
        })
        .collect()
}

/// Drives a channel with arbitrary ops, records the trace, and checks PL1
/// plus conservation (sent = delivered + dropped + in transit + queued).
fn drive(channel: &mut dyn FaultObserver, ops: &[ChanOp]) {
    let dir = channel.dir();
    let mut exec = Execution::new();
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    for op in ops {
        match op {
            ChanOp::Send(h) => {
                let pkt = Packet::header_only(Header::new(*h));
                let copy = channel.send(pkt);
                exec.push(Event::SendPkt {
                    dir,
                    packet: pkt,
                    copy,
                });
            }
            ChanOp::Poll => {
                if let Some((pkt, copy)) = channel.poll_deliver() {
                    exec.push(Event::ReceivePkt {
                        dir,
                        packet: pkt,
                        copy,
                    });
                    delivered += 1;
                }
            }
            ChanOp::Tick => channel.tick(),
        }
        for (pkt, copy) in channel.drain_drops() {
            exec.push(Event::DropPkt {
                dir,
                packet: pkt,
                copy,
            });
            dropped += 1;
        }
    }
    check_pl1(&exec, dir).expect("PL1 must hold for every channel");
    assert_eq!(channel.total_delivered(), delivered);
    // Conservation: every sent copy is delivered, dropped, in transit, or
    // queued awaiting a poll.
    let accounted = delivered + dropped + channel.in_transit_len() as u64;
    assert!(
        channel.total_sent() >= accounted,
        "over-accounted: sent {} < accounted {}",
        channel.total_sent(),
        accounted
    );
}

/// Runs `case` once per seed in `0..cases`; a panic names the seed so the
/// failing input replays exactly.
fn for_seeds(cases: u64, case: impl Fn(u64, &mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(seed, &mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at seed {seed}; rerun replays it exactly");
            std::panic::resume_unwind(payload);
        }
    }
}

#[test]
fn pl1_holds_for_fifo() {
    for_seeds(64, |_, rng| {
        let ops = chan_ops(rng);
        drive(&mut FifoChannel::new(Dir::Forward), &ops);
    });
}

#[test]
fn pl1_holds_for_lossy_fifo() {
    for_seeds(64, |seed, rng| {
        let ops = chan_ops(rng);
        drive(&mut LossyFifoChannel::new(Dir::Forward, 0.4, seed), &ops);
    });
}

#[test]
fn pl1_holds_for_probabilistic() {
    for_seeds(64, |seed, rng| {
        let ops = chan_ops(rng);
        drive(
            &mut ProbabilisticChannel::new(Dir::Backward, 0.35, seed),
            &ops,
        );
    });
}

#[test]
fn pl1_holds_for_bounded_reorder() {
    for_seeds(64, |seed, rng| {
        let ops = chan_ops(rng);
        let bound = rng.gen_range(1..20) as u64;
        drive(
            &mut BoundedReorderChannel::new(Dir::Forward, bound, seed),
            &ops,
        );
    });
}

#[test]
fn pl1_holds_for_virtual_link() {
    use nonfifo::transport::{RoutePolicy, VirtualLinkBuilder};
    for_seeds(64, |seed, rng| {
        let ops = chan_ops(rng);
        let spread = rng.gen_range(0..12) as u64;
        let mut link = VirtualLinkBuilder::new(Dir::Forward)
            .route(0)
            .route(spread)
            .route(spread / 2)
            .policy(RoutePolicy::Random)
            .seed(seed)
            .build();
        drive(&mut link, &ops);
    });
}

#[test]
fn sliding_window_correct_under_in_window_reorder() {
    // The E9 diagonal as a property: reorder bound B < w never breaks
    // the window-w protocol.
    use nonfifo::core::{SimConfig, Simulation};
    use nonfifo::protocols::SlidingWindow;
    for_seeds(48, |seed, rng| {
        let w = rng.gen_range(4..10) as u32;
        let bound = u64::from(w) / 2; // strictly inside the window
        let mut sim = Simulation::builder(SlidingWindow::new(w))
            .channel(Discipline::BoundedReorder {
                bound: bound.max(1),
            })
            .seed(seed)
            .build();
        let cfg = SimConfig {
            payloads: true,
            max_steps_per_message: 50_000,
            ..SimConfig::default()
        };
        let stats = sim.deliver(60, &cfg).expect("within tolerance");
        assert_eq!(stats.delivered_payloads, (0..60).collect::<Vec<u64>>());
    });
}

#[test]
fn pl1_holds_for_adversarial_with_releases() {
    for_seeds(64, |seed, outer| {
        // Interleave adversary releases between ordinary ops.
        let ops = chan_ops(outer);
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        let dir = ch.dir();
        let mut exec = Execution::new();
        let mut rng = seed;
        for op in &ops {
            match op {
                ChanOp::Send(h) => {
                    let pkt = Packet::header_only(Header::new(*h));
                    let copy = ch.send(pkt);
                    exec.push(Event::SendPkt {
                        dir,
                        packet: pkt,
                        copy,
                    });
                }
                ChanOp::Poll => {
                    // Pseudo-random adversary action.
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    match rng % 3 {
                        0 => {
                            ch.release_all();
                        }
                        1 => {
                            ch.release_oldest_of_header(Header::new((rng >> 8) as u32 % 6));
                        }
                        _ => {
                            ch.drop_oldest_of_packet(Packet::header_only(Header::new(
                                (rng >> 8) as u32 % 6,
                            )));
                        }
                    }
                    while let Some((pkt, copy)) = ch.poll_deliver() {
                        exec.push(Event::ReceivePkt {
                            dir,
                            packet: pkt,
                            copy,
                        });
                    }
                }
                ChanOp::Tick => ch.tick(),
            }
            for (pkt, copy) in ch.drain_drops() {
                exec.push(Event::DropPkt {
                    dir,
                    packet: pkt,
                    copy,
                });
            }
        }
        check_pl1(&exec, dir).expect("PL1 must hold under adversary control");
    });
}

#[test]
fn multiset_conserves_copies() {
    for_seeds(64, |_, rng| {
        let n = rng.gen_range(0..100);
        let mut ms = PacketMultiset::new();
        let mut expected = 0usize;
        let mut used = std::collections::HashSet::new();
        for _ in 0..n {
            let h = rng.gen_range(0..5) as u32;
            let c = rng.gen_range(0..10_000) as u64;
            if used.insert(c) {
                ms.insert(Packet::header_only(Header::new(h)), CopyId::from_raw(c));
                expected += 1;
            }
        }
        assert_eq!(ms.len(), expected);
        let per_packet: usize = ms.packets().map(|p| ms.packet_copies(p)).sum();
        assert_eq!(per_packet, expected);
        let drained = ms.drain_all();
        assert_eq!(drained.len(), expected);
        // Mint order.
        for w in drained.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    });
}

#[test]
fn monitor_agrees_with_offline_checker_on_message_streams() {
    for_seeds(64, |_, rng| {
        // true = send_msg, false = receive_msg (identical messages).
        let len = rng.gen_range(0..60);
        let mut exec = Execution::new();
        let mut monitor = SpecMonitor::new();
        let mut monitor_flagged = false;
        let mut sends = 0u64;
        let mut recvs = 0u64;
        for _ in 0..len {
            let e = if rng.gen_bool(0.5) {
                sends += 1;
                Event::SendMsg(Message::identical(sends - 1))
            } else {
                recvs += 1;
                Event::ReceiveMsg(Message::identical(recvs - 1))
            };
            if monitor.observe(&e).is_err() {
                monitor_flagged = true;
            }
            exec.push(e);
        }
        // With identical messages the online prefix check is exact: it
        // flags iff the offline DL1 matcher rejects.
        let offline = check_dl1_dl2(&exec).is_err();
        assert_eq!(monitor_flagged, offline);
    });
}

mod text_format {
    use super::*;
    use nonfifo::ioa::text::{parse_text, write_text};
    use nonfifo::ioa::Payload;

    fn arb_event(rng: &mut StdRng) -> Event {
        let msg = |rng: &mut StdRng| {
            let id = rng.next_u64();
            if rng.gen_bool(0.5) {
                Message::with_payload(id, Payload::new(rng.next_u64()))
            } else {
                Message::identical(id)
            }
        };
        let pkt = |rng: &mut StdRng| {
            let h = Header::new(rng.next_u64() as u32);
            if rng.gen_bool(0.5) {
                Packet::new(h, Payload::new(rng.next_u64()))
            } else {
                Packet::header_only(h)
            }
        };
        let dir = |rng: &mut StdRng| {
            if rng.gen_bool(0.5) {
                Dir::Forward
            } else {
                Dir::Backward
            }
        };
        match rng.gen_range(0..5) {
            0 => Event::SendMsg(msg(rng)),
            1 => Event::ReceiveMsg(msg(rng)),
            2 => Event::SendPkt {
                dir: dir(rng),
                packet: pkt(rng),
                copy: CopyId::from_raw(rng.next_u64()),
            },
            3 => Event::ReceivePkt {
                dir: dir(rng),
                packet: pkt(rng),
                copy: CopyId::from_raw(rng.next_u64()),
            },
            _ => Event::DropPkt {
                dir: dir(rng),
                packet: pkt(rng),
                copy: CopyId::from_raw(rng.next_u64()),
            },
        }
    }

    /// Arbitrary executions survive the text round trip unchanged.
    #[test]
    fn text_round_trip() {
        for_seeds(128, |_, rng| {
            let len = rng.gen_range(0..60);
            let exec: Execution = (0..len).map(|_| arb_event(rng)).collect();
            let text = write_text(&exec);
            let back = parse_text(&text).expect("own output parses");
            assert_eq!(back, exec);
        });
    }
}

mod protocol_safety {
    use super::*;
    use nonfifo::adversary::{Disposition, System};
    use nonfifo::protocols::SequenceNumber;

    /// The naive protocol never violates the spec, whatever the channel
    /// does: random park/deliver decisions plus random stale replays.
    #[test]
    fn sequence_number_is_unbreakable() {
        for_seeds(32, |_, rng| {
            let len = rng.gen_range(20..200);
            let decisions: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut sys = System::new(&SequenceNumber::new());
            let mut outstanding = false;
            for d in decisions {
                if !outstanding && sys.ready() {
                    sys.send_msg();
                    outstanding = true;
                }
                match d % 4 {
                    0 => {
                        sys.step_park_all();
                    }
                    1 => {
                        sys.step_deliver_all();
                    }
                    2 => {
                        // Replay a random stale copy if one exists.
                        let target = sys
                            .fwd
                            .parked_multiset()
                            .iter()
                            .nth(usize::from(d) % sys.fwd.in_transit_len().max(1))
                            .map(|(p, _)| p);
                        if let Some(p) = target {
                            sys.fwd.release_oldest_of_packet(p);
                            sys.drain_released();
                        }
                    }
                    _ => {
                        sys.step(|_, _, _| {
                            if d > 128 {
                                Disposition::Deliver
                            } else {
                                Disposition::Park
                            }
                        });
                    }
                }
                assert!(sys.violation().is_none(), "violated: {:?}", sys.violation());
                if sys.counts().rm >= sys.counts().sm {
                    outstanding = false;
                }
            }
        });
    }
}

mod chaos {
    use super::*;
    use nonfifo::channel::{ChaosChannel, FaultPlan};
    use nonfifo::core::{SimConfig, SimError, Simulation};
    use nonfifo::protocols::{AlternatingBit, DataLink, GoBackN, SequenceNumber, SlidingWindow};

    /// A random but well-formed fault plan, produced through the parser so
    /// the text grammar is exercised on every case.
    fn arb_plan(rng: &mut StdRng) -> FaultPlan {
        let mut text = format!(
            "dup {:.3}\ndrop {:.3}\ncorrupt {:.3}\n",
            rng.gen_range(0..300) as f64 / 1000.0,
            rng.gen_range(0..300) as f64 / 1000.0,
            rng.gen_range(0..100) as f64 / 1000.0,
        );
        if rng.gen_bool(0.3) {
            let p = rng.gen_range(0..20) as f64 / 1000.0;
            let len = rng.gen_range(2..9);
            text.push_str(&format!("burst {p:.3} {len}\n"));
        }
        if rng.gen_bool(0.3) {
            let p = rng.gen_range(0..50) as f64 / 1000.0;
            let len = rng.gen_range(2..7);
            text.push_str(&format!("storm {p:.3} {len}\n"));
        }
        if rng.gen_bool(0.3) {
            let start = rng.gen_range(0..50) as u64;
            let end = start + rng.gen_range(1..20) as u64;
            text.push_str(&format!("partition {start} {end}\n"));
        }
        FaultPlan::parse(&text).expect("generated plan parses")
    }

    /// PL1 holds for the chaos decorator as long as its injected copies
    /// are declared — exactly what `drain_injected_sends` is for.
    #[test]
    fn pl1_holds_for_chaos_channel() {
        for_seeds(64, |seed, rng| {
            let plan = arb_plan(rng);
            let ops = chan_ops(rng);
            let mut ch = ChaosChannel::new(Box::new(FifoChannel::new(Dir::Forward)), plan, seed);
            let dir = ch.dir();
            let mut exec = Execution::new();
            let declare = |ch: &mut ChaosChannel, exec: &mut Execution| {
                for (packet, copy) in ch.drain_injected_sends() {
                    exec.push(Event::SendPkt { dir, packet, copy });
                }
                for (packet, copy) in ch.drain_drops() {
                    exec.push(Event::DropPkt { dir, packet, copy });
                }
            };
            for op in &ops {
                match op {
                    ChanOp::Send(h) => {
                        let packet = Packet::header_only(Header::new(*h));
                        let copy = ch.send(packet);
                        exec.push(Event::SendPkt { dir, packet, copy });
                        declare(&mut ch, &mut exec);
                    }
                    ChanOp::Poll => {
                        declare(&mut ch, &mut exec);
                        if let Some((packet, copy)) = ch.poll_deliver() {
                            exec.push(Event::ReceivePkt { dir, packet, copy });
                        }
                    }
                    ChanOp::Tick => {
                        ch.tick();
                        declare(&mut ch, &mut exec);
                    }
                }
            }
            check_pl1(&exec, dir).expect("PL1 must hold under declared chaos");
        });
    }

    /// Runs `proto` through a full chaos simulation and returns the outcome
    /// plus the execution fingerprint.
    fn run_chaos(
        proto: impl DataLink,
        plan: &FaultPlan,
        seed: u64,
    ) -> (Result<u64, SimError>, u64) {
        let mut sim = Simulation::builder(proto)
            .fault_plan(plan.clone())
            .seed(seed)
            .build();
        let cfg = SimConfig {
            max_steps_per_message: 10_000,
            ..SimConfig::default()
        };
        let outcome = sim.deliver(15, &cfg).map(|s| s.messages_delivered);
        (outcome, sim.execution_fingerprint())
    }

    /// The same (protocol, plan, seed) triple always replays the identical
    /// execution: equal outcomes and equal fingerprints.
    #[test]
    fn same_plan_and_seed_reproduce_the_run() {
        for_seeds(32, |seed, rng| {
            let plan = arb_plan(rng);
            let (out_a, fp_a) = run_chaos(SequenceNumber::new(), &plan, seed);
            let (out_b, fp_b) = run_chaos(SequenceNumber::new(), &plan, seed);
            assert_eq!(fp_a, fp_b, "fingerprint must be deterministic");
            assert_eq!(out_a.is_ok(), out_b.is_ok());
            if let (Ok(a), Ok(b)) = (out_a, out_b) {
                assert_eq!(a, b);
            }
        });
    }

    /// Chaos may legitimately break a weak protocol at the *message* layer
    /// (DL1 phantoms for the alternating bit), but because every injected
    /// copy is declared, it can never manufacture a *packet*-layer (PL1)
    /// violation — that would mean the monitor itself is unsound.
    #[test]
    fn chaos_never_fakes_a_packet_layer_violation() {
        use nonfifo::ioa::SpecViolation as V;
        for_seeds(16, |seed, rng| {
            let plan = arb_plan(rng);
            for proto in 0..4 {
                let (outcome, _) = match proto {
                    0 => run_chaos(AlternatingBit::new(), &plan, seed),
                    1 => run_chaos(SequenceNumber::new(), &plan, seed),
                    2 => run_chaos(SlidingWindow::new(4), &plan, seed),
                    _ => run_chaos(GoBackN::new(4), &plan, seed),
                };
                if let Err(SimError::Violation(v)) = outcome {
                    assert!(
                        matches!(v, V::MessageInvented { .. } | V::MessageReordered { .. }),
                        "chaos produced a packet-layer violation: {v:?}"
                    );
                    assert_ne!(proto, 1, "sequence numbers are safe everywhere: {v:?}");
                }
            }
        });
    }
}

mod parser_robustness {
    use super::for_seeds;
    use nonfifo_rng::StdRng;

    /// An adversarial ~`.{0,200}`: mostly printable ASCII with format-ish
    /// tokens mixed in so parsers reach their deeper branches, plus raw
    /// unicode.
    fn arb_line(rng: &mut StdRng) -> String {
        const TOKENS: &[&str] = &[
            "send",
            "recv",
            "drop",
            "pkt",
            "msg",
            "fwd",
            "bwd",
            "copy",
            "park",
            "deliver-all",
            "deliver",
            "quiesce",
            "#",
            ":",
            " ",
            "\t",
            "-",
            "0",
            "7",
            "18446744073709551615",
        ];
        let len = rng.gen_range(0..201);
        let mut s = String::new();
        while s.chars().count() < len {
            match rng.gen_range(0..4) {
                0 => s.push_str(TOKENS[rng.gen_range(0..TOKENS.len())]),
                1 => s.push((b' ' + rng.gen_range(0..95) as u8) as char),
                2 => {
                    s.push(char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{fffd}'))
                }
                _ => s.push('\n'),
            }
        }
        s
    }

    /// The trace parser never panics on arbitrary input — it returns a
    /// structured error instead.
    #[test]
    fn trace_parser_total() {
        for_seeds(256, |_, rng| {
            let input = arb_line(rng);
            let _ = nonfifo::ioa::text::parse_text(&input);
        });
    }

    /// Same for the attack-schedule parser.
    #[test]
    fn schedule_parser_total() {
        for_seeds(256, |_, rng| {
            let input = arb_line(rng);
            let _ = nonfifo::adversary::Schedule::parse(&input);
        });
    }
}
