//! Property harness over the protocol × channel exploration matrix.
//!
//! For random small scopes, random protocols, and every channel
//! [`Discipline`], the sequential oracle and the parallel engine must agree
//! on the outcome *kind* and on the shortest-counterexample depth, and the
//! parallel engine must produce byte-identical reports at every thread
//! count. Cases run on the workspace PRNG so each is addressable by seed;
//! `PROPTEST_CASES` scales the case count (CI pins it for reproducible
//! runtime).

use nonfifo::adversary::{
    explore, scope_root, Discipline, ExploreArena, ExploreConfig, ExploreOutcome, ParallelExplorer,
    Schedule,
};
use nonfifo::protocols::{
    AlternatingBit, DataLink, GoBackN, Outnumber, SequenceNumber, SlidingWindow,
};
use nonfifo_rng::StdRng;

/// Cases per property: `PROPTEST_CASES` if set, else a small default that
/// keeps the whole harness in tier-1 time.
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn for_seeds(cases: u64, case: impl Fn(u64, &mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(seed, &mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at seed {seed}; rerun replays it exactly");
            std::panic::resume_unwind(payload);
        }
    }
}

fn random_protocol(rng: &mut StdRng) -> Box<dyn DataLink> {
    match rng.gen_range(0..5) {
        0 => Box::new(SequenceNumber::new()),
        1 => Box::new(AlternatingBit::new()),
        2 => Box::new(GoBackN::new(1 + rng.gen_range(0..2) as u32)),
        3 => Box::new(SlidingWindow::new(1 + rng.gen_range(0..2) as u32)),
        _ => Box::new(Outnumber::new(3 + rng.gen_range(0..2) as u32)),
    }
}

fn random_discipline(rng: &mut StdRng) -> Discipline {
    match rng.gen_range(0..3) {
        0 => Discipline::NonFifo,
        1 => Discipline::BoundedReorder(rng.gen_range(0..4) as u64),
        _ => Discipline::LossyFifo,
    }
}

fn random_scope(rng: &mut StdRng) -> ExploreConfig {
    ExploreConfig {
        max_messages: 1 + rng.gen_range(0..3) as u64,
        max_depth: 4 + rng.gen_range(0..6),
        max_pool: 2 + rng.gen_range(0..3),
        // Generous: random scopes this small never reach it, so outcomes
        // stay comparable across engines.
        max_states: 2_000_000,
        discipline: random_discipline(rng),
        // A third of the scopes start from a seeded corrupted in-transit
        // multiset — the engines must agree there too.
        corrupt_start: if rng.gen_range(0..3) == 0 {
            Some(rng.next_u64())
        } else {
            None
        },
        // Half the scopes run reduced: every property here (engine
        // agreement, thread-count byte-identity, arena invisibility,
        // counterexample replay) must hold with the reduction on too.
        por: rng.gen_range(0..2) == 1,
    }
}

fn kind(outcome: &ExploreOutcome) -> &'static str {
    match outcome {
        ExploreOutcome::Counterexample { .. } => "counterexample",
        ExploreOutcome::Exhausted { .. } => "exhausted",
        ExploreOutcome::Truncated { .. } => "truncated",
    }
}

#[test]
fn sequential_and_parallel_agree_across_the_matrix() {
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let cfg = random_scope(rng);
        let seq = explore(proto.as_ref(), &cfg);
        let par = ParallelExplorer::new(0).explore(proto.as_ref(), &cfg);
        assert_eq!(
            kind(&seq),
            kind(&par),
            "seed {seed}: engines disagree on outcome kind for {} under {} \
             (seq {seq:?}, par {par:?})",
            proto.name(),
            cfg.discipline,
        );
        if let (
            ExploreOutcome::Counterexample { depth: ds, .. },
            ExploreOutcome::Counterexample { depth: dp, .. },
        ) = (&seq, &par)
        {
            assert_eq!(
                ds,
                dp,
                "seed {seed}: shortest-counterexample depth differs for {} under {}",
                proto.name(),
                cfg.discipline,
            );
        }
    });
}

#[test]
fn parallel_reports_are_byte_identical_across_thread_counts() {
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let cfg = random_scope(rng);
        let baseline = ParallelExplorer::new(1)
            .explore(proto.as_ref(), &cfg)
            .report();
        for threads in [2, 8] {
            let report = ParallelExplorer::new(threads)
                .explore(proto.as_ref(), &cfg)
                .report();
            assert_eq!(
                baseline,
                report,
                "seed {seed}: {threads}-thread report diverges for {} under {}",
                proto.name(),
                cfg.discipline,
            );
        }
    });
}

#[test]
fn arena_reuse_is_invisible() {
    // The engine's zero-copy machinery — parent-pointer path records,
    // pooled systems refilled with `assign_from`, reused worker scratch —
    // lives in the `ExploreArena`. Running a random sequence of scopes and
    // protocols through ONE arena (so every run inherits the previous
    // run's recycled buffers, including across protocol switches) must
    // produce byte-identical reports to fresh-arena runs.
    for_seeds(cases(), |seed, rng| {
        let explorer = ParallelExplorer::new(1 + rng.gen_range(0..3));
        let mut arena = ExploreArena::new();
        for round in 0..3 {
            let proto = random_protocol(rng);
            let cfg = random_scope(rng);
            let warm = explorer
                .explore_in(proto.as_ref(), &cfg, &mut arena)
                .report();
            let fresh = explorer.explore(proto.as_ref(), &cfg).report();
            assert_eq!(
                warm,
                fresh,
                "seed {seed} round {round}: warm-arena report diverges for {} under {}",
                proto.name(),
                cfg.discipline,
            );
        }
    });
}

#[test]
fn counterexamples_replay_and_certificates_quiesce() {
    // Kind-agreement says the engines match each other; this says the
    // counterexamples they agree on are *real*: the emitted schedule
    // replays through the strict scheduler to a DL1 violation.
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let cfg = random_scope(rng);
        if let ExploreOutcome::Counterexample { schedule, .. } =
            ParallelExplorer::new(0).explore(proto.as_ref(), &cfg)
        {
            // Replay from the scope's root: corrupted scopes only violate
            // when the seeded junk is present, so a clean boot would abort.
            let sys = Schedule::run_steps_from(schedule.steps(), scope_root(proto.as_ref(), &cfg))
                .unwrap_or_else(|e| panic!("seed {seed}: replay aborted: {e}"));
            assert!(
                sys.violation().is_some(),
                "seed {seed}: counterexample schedule replayed clean for {} under {}",
                proto.name(),
                cfg.discipline,
            );
        }
    });
}
