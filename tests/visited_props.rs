//! Property harness for the visited-set tiers and the state codec.
//!
//! For random small scopes, random protocols, and every channel
//! [`Discipline`], the exact tiers must be invisible: a run deduplicating
//! through the disk-spilling tier — even under a budget tiny enough to
//! force spills every few states — must produce a report byte-identical
//! to the in-RAM run, on both engines. The probabilistic tier must honor
//! the false-dedup bound it reports, and the [`StateCodec`] must
//! reproduce the legacy state digests bit-for-bit on reachable states.
//! Cases run on the workspace PRNG so each is addressable by seed;
//! `PROPTEST_CASES` scales the case count (CI pins it for reproducible
//! runtime).

use nonfifo::adversary::{
    scope_root, state_digest, Discipline, ExploreConfig, ExploreOutcome, Explorer, StateCodec,
    VisitedSpec,
};
use nonfifo::protocols::{
    AlternatingBit, DataLink, GoBackN, Outnumber, SequenceNumber, SlidingWindow,
};
use nonfifo_rng::StdRng;

/// Cases per property: `PROPTEST_CASES` if set, else a small default that
/// keeps the whole harness in tier-1 time.
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn for_seeds(cases: u64, case: impl Fn(u64, &mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(seed, &mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at seed {seed}; rerun replays it exactly");
            std::panic::resume_unwind(payload);
        }
    }
}

fn random_protocol(rng: &mut StdRng) -> Box<dyn DataLink> {
    match rng.gen_range(0..5) {
        0 => Box::new(SequenceNumber::new()),
        1 => Box::new(AlternatingBit::new()),
        2 => Box::new(GoBackN::new(1 + rng.gen_range(0..2) as u32)),
        3 => Box::new(SlidingWindow::new(1 + rng.gen_range(0..2) as u32)),
        _ => Box::new(Outnumber::new(3 + rng.gen_range(0..2) as u32)),
    }
}

fn random_discipline(rng: &mut StdRng) -> Discipline {
    match rng.gen_range(0..3) {
        0 => Discipline::NonFifo,
        1 => Discipline::BoundedReorder(rng.gen_range(0..4) as u64),
        _ => Discipline::LossyFifo,
    }
}

fn random_scope(rng: &mut StdRng) -> ExploreConfig {
    ExploreConfig {
        max_messages: 1 + rng.gen_range(0..3) as u64,
        max_depth: 4 + rng.gen_range(0..6),
        max_pool: 2 + rng.gen_range(0..3),
        max_states: 2_000_000,
        discipline: random_discipline(rng),
        corrupt_start: if rng.gen_range(0..3) == 0 {
            Some(rng.next_u64())
        } else {
            None
        },
        por: rng.gen_range(0..2) == 1,
    }
}

fn states_of(outcome: &ExploreOutcome) -> Option<usize> {
    match outcome {
        ExploreOutcome::Exhausted { states } | ExploreOutcome::Truncated { states } => {
            Some(*states)
        }
        ExploreOutcome::Counterexample { .. } => None,
    }
}

#[test]
fn exact_tiers_are_byte_identical_across_the_matrix() {
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let cfg = random_scope(rng);
        let reference = Explorer::new(cfg).explore(proto.as_ref()).report();
        // A budget this small spills every ~20 admitted states, so every
        // scope that certifies exercises many delta→run compactions.
        let spec = VisitedSpec::tiered(256);
        let seq = Explorer::new(cfg)
            .visited(spec)
            .explore(proto.as_ref())
            .report();
        assert_eq!(
            reference,
            seq,
            "seed {seed}: tiered sequential report diverges for {} under {}",
            proto.name(),
            cfg.discipline,
        );
        for threads in [2, 8] {
            let par = Explorer::new(cfg)
                .parallel(threads)
                .visited(spec)
                .explore(proto.as_ref())
                .report();
            assert_eq!(
                reference,
                par,
                "seed {seed}: tiered {threads}-thread report diverges for {} under {}",
                proto.name(),
                cfg.discipline,
            );
        }
    });
}

#[test]
fn multi_run_invariance_across_budget_compaction_and_threads() {
    // The streaming multi-run tier's whole contract in one matrix: for a
    // scope big enough to spill repeatedly, the report is byte-identical
    // across every (budget, compact-runs, engine, thread-count)
    // combination — spill boundaries, run counts, and compaction timing
    // are invisible to the search.
    let cfg = ExploreConfig {
        max_messages: 8,
        max_depth: 18,
        max_pool: 8,
        max_states: 2_000_000,
        discipline: Discipline::NonFifo,
        corrupt_start: None,
        por: false,
    };
    let proto = SequenceNumber::new();
    let reference = Explorer::new(cfg).explore(&proto).report();
    // 4 KiB forces a spill every ~340 admitted states (many compaction
    // cycles at every threshold); 64 KiB spills a few times; usize::MAX
    // never spills and must degenerate to the pure-RAM answer.
    for budget in [4 * 1024, 64 * 1024, usize::MAX] {
        for compact_runs in [1, 2, 8] {
            let spec = VisitedSpec::tiered(budget).with_compact_runs(compact_runs);
            let seq = Explorer::new(cfg).visited(spec).explore(&proto).report();
            assert_eq!(
                reference, seq,
                "sequential report diverges at budget {budget}, \
                 compact-runs {compact_runs}"
            );
            for threads in [1, 2, 8] {
                let par = Explorer::new(cfg)
                    .parallel(threads)
                    .visited(spec)
                    .explore(&proto)
                    .report();
                assert_eq!(
                    reference, par,
                    "{threads}-thread report diverges at budget {budget}, \
                     compact-runs {compact_runs}"
                );
            }
        }
    }
}

#[test]
fn dropped_arena_deletes_every_spill_file() {
    // Crash safety: however many runs are live (including sources of an
    // in-flight compaction), dropping the explorer — and the arena and
    // tier inside it — must delete every spill file it ever created.
    let cfg = ExploreConfig {
        max_messages: 8,
        max_depth: 18,
        max_pool: 8,
        max_states: 2_000_000,
        discipline: Discipline::NonFifo,
        corrupt_start: None,
        por: false,
    };
    // A compaction threshold above the spill count keeps every run live.
    let mut facade = Explorer::new(cfg)
        .parallel(2)
        .visited(VisitedSpec::tiered(4 * 1024).with_compact_runs(64));
    facade.explore(&SequenceNumber::new());
    let paths = facade.visited_set().spill_paths();
    assert!(
        paths.len() > 1,
        "the 4 KiB budget should have left several live runs, got {}",
        paths.len()
    );
    for path in &paths {
        assert!(path.exists(), "live run {path:?} must be on disk");
    }
    drop(facade);
    for path in &paths {
        assert!(
            !path.exists(),
            "spill file {path:?} must not outlive its arena"
        );
    }
}

#[test]
fn forced_spills_leave_no_trace_in_the_report() {
    // The regression the tier exists for: a budget far below the scope's
    // working set must actually spill to disk (not silently stay
    // resident) and still certify the exact same state count.
    let cfg = ExploreConfig {
        max_messages: 4,
        max_depth: 14,
        max_pool: 6,
        max_states: 2_000_000,
        discipline: Discipline::NonFifo,
        corrupt_start: None,
        por: false,
    };
    let proto = SequenceNumber::new();
    let reference = Explorer::new(cfg).explore(&proto).report();
    let mut tiered = Explorer::new(cfg).visited(VisitedSpec::tiered(512).with_compact_runs(2));
    assert_eq!(tiered.explore(&proto).report(), reference);
    let visited = tiered.visited_set();
    assert!(visited.spills() > 0, "512-byte budget must spill");
    assert!(visited.disk_bytes() > 0, "spills must land on disk");
    // The peak folds in the background compactor's block buffers — one
    // 4 KiB block per source run plus the output's write buffer, 12 KiB at
    // this threshold — which dominate a budget this tiny. The point stands:
    // the peak tracks budget + a small constant, never the spilled volume
    // (the old rewrite-all scheme read all of disk_bytes back into RAM).
    // (The "peak < 2× budget under heavy spilling" regression itself is
    // pinned by `spill_transient_stays_within_twice_the_budget` in
    // `crates/adversary/src/visited.rs`, at budgets that dwarf the buffer
    // constant.)
    assert!(
        visited.peak_memory_bytes() < 16 * 1024,
        "resident stays near budget + compactor buffers, got {}",
        visited.peak_memory_bytes()
    );
}

#[test]
fn probabilistic_tier_honors_its_reported_bound() {
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let cfg = random_scope(rng);
        let exact = Explorer::new(cfg).explore(proto.as_ref());
        let Some(exact_states) = states_of(&exact) else {
            return; // Counterexample scopes have no state count to compare.
        };
        // A filter an order of magnitude under-sized for big scopes and
        // ample for small ones: both regimes must stay within the bound
        // the tier itself reports.
        let mut prob = Explorer::new(cfg).visited(VisitedSpec::Probabilistic {
            memory_budget: 16 * 1024,
        });
        let outcome = prob.explore(proto.as_ref());
        let bound = prob
            .visited_set()
            .false_dedup_bound()
            .expect("probabilistic tier reports a bound");
        assert!(
            (0.0..1.0).contains(&bound),
            "seed {seed}: bound {bound} out of range"
        );
        let Some(prob_states) = states_of(&outcome) else {
            return; // A (sound) counterexample ends the run early.
        };
        assert!(
            prob_states <= exact_states,
            "seed {seed}: false dedup can only shrink the state count"
        );
        // Expected misses ≤ bound × inserts; allow generous headroom so
        // the assertion checks the bound's order of magnitude, not luck.
        let missed = exact_states - prob_states;
        let allowance = (bound * exact_states as f64 * 16.0).ceil() as usize + 1;
        assert!(
            missed <= allowance,
            "seed {seed}: {missed} states lost to false dedup exceeds the \
             reported bound {bound:.3e} × {exact_states} states (allowance \
             {allowance}) for {} under {}",
            proto.name(),
            cfg.discipline,
        );
    });
}

#[test]
fn codec_reproduces_the_legacy_digest_on_scope_roots() {
    let codec = StateCodec::full();
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let cfg = random_scope(rng);
        let root = scope_root(proto.as_ref(), &cfg);
        let encoded = codec.encode(&root);
        assert_eq!(
            codec.key_of(&encoded),
            state_digest(&root),
            "seed {seed}: codec key diverges from the legacy digest for {} under {}",
            proto.name(),
            cfg.discipline,
        );
        const {
            assert!(
                nonfifo::adversary::EncodedState::BYTES <= 64,
                "codec blew the 64-byte budget"
            );
        }
    });
}
