//! Integration tests for the campaign engine, driven end-to-end through the
//! facade: plan text → expansion → work-stealing execution → report. The
//! load-bearing guarantees are thread-count invariance (the report and the
//! aggregate metrics are byte-identical at any worker count) and cache
//! transparency (a warm replay renders exactly like a cold run).

use nonfifo::campaign::{CampaignCache, CampaignPlan, CampaignRunner, RunOutcome};

const PLAN: &str = "\
# cross-protocol smoke matrix
scenario smoke
protocols abp seqnum window4
disciplines fifo prob:0.2
messages 5 10
seeds 0..2

scenario chaos
protocols seqnum
disciplines fifo
messages 12
seeds 9
fault dup 0.1
fault drop 0.05
";

fn plan_runs() -> Vec<nonfifo::campaign::RunSpec> {
    CampaignPlan::parse(PLAN).expect("plan parses").expand()
}

#[test]
fn report_and_aggregate_are_byte_identical_across_thread_counts() {
    let runs = plan_runs();
    assert_eq!(runs.len(), 3 * 2 * 2 * 2 + 1);

    let baseline = CampaignRunner::new(1).run(&runs).expect("1-thread run");
    let base_render = baseline.render();
    let base_metrics = baseline.aggregate_metrics().to_json();
    for threads in [2, 8] {
        let report = CampaignRunner::new(threads)
            .run(&runs)
            .expect("multi-thread run");
        assert_eq!(
            report.render(),
            base_render,
            "{threads} threads: report diverged from single-threaded run"
        );
        assert_eq!(
            report.aggregate_metrics().to_json(),
            base_metrics,
            "{threads} threads: aggregate metrics diverged"
        );
    }
}

#[test]
fn warm_cache_replays_every_run_and_renders_identically() {
    let runs = plan_runs();
    let mut cache = CampaignCache::new();

    let cold = CampaignRunner::new(2)
        .run_with_cache(&runs, &mut cache)
        .expect("cold run");
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cache.len(), runs.len());

    let warm = CampaignRunner::new(2)
        .run_with_cache(&runs, &mut cache)
        .expect("warm run");
    assert_eq!(
        warm.cache_hits,
        runs.len(),
        "second run must be 100% cached"
    );
    assert_eq!(
        warm.render(),
        cold.render(),
        "cache replay must be invisible in the report"
    );
    assert!(warm.records.iter().all(|r| r.cached));
}

#[test]
fn cache_survives_a_save_load_round_trip() {
    let runs = plan_runs();
    let mut cache = CampaignCache::new();
    CampaignRunner::new(1)
        .run_with_cache(&runs, &mut cache)
        .expect("populate");

    let path = std::env::temp_dir()
        .join(format!(
            "nonfifo-campaign-cache-{}.json",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned();
    cache.save(&path).expect("save");
    let loaded = CampaignCache::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, cache, "cache did not round-trip through disk");

    let mut reloaded = loaded;
    let warm = CampaignRunner::new(1)
        .run_with_cache(&runs, &mut reloaded)
        .expect("warm run from disk cache");
    assert_eq!(warm.cache_hits, runs.len());
}

#[test]
fn all_smoke_runs_deliver_and_worst_is_none() {
    let report = CampaignRunner::new(0)
        .run(&plan_runs())
        .expect("smoke campaign");
    assert_eq!(report.count(RunOutcome::Delivered), report.records.len());
    assert!(report.worst().is_none());
}

#[test]
fn run_fingerprints_are_unique_across_the_matrix() {
    let runs = plan_runs();
    let mut keys: Vec<u64> = runs.iter().map(|r| r.fingerprint()).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(
        keys.len(),
        runs.len(),
        "fingerprint collision in the matrix"
    );
}
