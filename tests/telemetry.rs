//! Integration tests for the telemetry subsystem: the packet-conservation
//! invariant across every channel implementation, the pinned metrics JSON
//! schema, and — the load-bearing guarantee — that attaching telemetry
//! never changes what a run computes.

use nonfifo::adversary::{ExploreConfig, ParallelExplorer};
use nonfifo::channel::{
    AdversarialChannel, BoundedReorderChannel, ChannelIntrospect, ChaosChannel, CorruptingChannel,
    Discipline, FaultObserver, FaultPlan, FifoChannel, LossyFifoChannel, ProbabilisticChannel,
};
use nonfifo::core::{SimConfig, Simulation};
use nonfifo::ioa::{Dir, Header, Packet};
use nonfifo::protocols::{AlternatingBit, SequenceNumber};
use nonfifo::telemetry::{Json, MetricsSnapshot, Registry, TraceSink, SCHEMA_VERSION};
use nonfifo::transport::VirtualLinkBuilder;
use nonfifo_rng::StdRng;
use std::sync::Arc;

/// Drives a channel with a seeded op mix, drains what is deliverable, and
/// checks exact conservation: every copy that entered is delivered,
/// dropped, or still inside (`in_transit_len` counts every stage —
/// delayed, parked, held, storm-buffered, or ready).
fn check_conservation(mut ch: impl ChannelIntrospect + FaultObserver, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    for _ in 0..rng.gen_range(50..250) {
        match rng.gen_range(0..4) {
            0 | 1 => {
                ch.send(Packet::header_only(Header::new(rng.gen_range(0..8) as u32)));
            }
            2 => {
                if ch.poll_deliver().is_some() {
                    delivered += 1;
                }
            }
            _ => ch.tick(),
        }
        dropped += ch.drain_drops().len() as u64;
    }
    while ch.poll_deliver().is_some() {
        delivered += 1;
    }
    dropped += ch.drain_drops().len() as u64;
    assert_eq!(ch.total_delivered(), delivered);
    assert_eq!(
        ch.total_sent(),
        delivered + dropped + ch.in_transit_len() as u64,
        "conservation violated (delivered {delivered}, dropped {dropped}, \
         in transit {})",
        ch.in_transit_len()
    );
}

#[test]
fn conservation_holds_for_every_channel_impl() {
    for seed in 0..16 {
        check_conservation(FifoChannel::new(Dir::Forward), seed);
        check_conservation(LossyFifoChannel::new(Dir::Forward, 0.3, seed), seed);
        check_conservation(BoundedReorderChannel::new(Dir::Forward, 4, seed), seed);
        check_conservation(CorruptingChannel::new(Dir::Forward, 0.2, seed), seed);
        check_conservation(ProbabilisticChannel::new(Dir::Forward, 0.4, seed), seed);
        check_conservation(AdversarialChannel::parked(Dir::Forward), seed);
        check_conservation(AdversarialChannel::immediate(Dir::Forward), seed);
        check_conservation(
            VirtualLinkBuilder::new(Dir::Forward)
                .route(0)
                .route(6)
                .seed(seed)
                .build(),
            seed,
        );
        let plan = FaultPlan::parse("dup 0.2\ndrop 0.1\ncorrupt 0.05").expect("plan");
        check_conservation(
            ChaosChannel::new(Box::new(FifoChannel::new(Dir::Forward)), plan, seed),
            seed,
        );
    }
}

/// The exported counters must satisfy the same invariant the channels do:
/// a seeded chaos run's metrics account for every packet.
#[test]
fn chaos_run_metrics_satisfy_conservation() {
    let plan = FaultPlan::parse("dup 0.15\ndrop 0.1").expect("plan");
    let registry = Arc::new(Registry::new());
    let mut sim = Simulation::builder(SequenceNumber::factory())
        .fault_plan(plan.clone())
        .seed(7)
        .build();
    sim.attach_telemetry(Arc::clone(&registry), None);
    sim.deliver(40, &SimConfig::default()).expect("run");

    let snap = registry.snapshot();
    for dir in ["fwd", "bwd"] {
        let sends = snap.counters[&format!("chan.{dir}.sends")];
        let delivered = snap.counters[&format!("chan.{dir}.delivered")];
        let drops = snap.counters[&format!("chan.{dir}.drops")];
        let in_transit = snap.gauges[&format!("sim.{dir}.in_transit")].value;
        assert_eq!(
            sends,
            delivered + drops + in_transit,
            "{dir}: sends {sends} != delivered {delivered} + drops {drops} \
             + in transit {in_transit}"
        );
        // Injected duplicates are a subset of sends, not extra mass.
        assert!(snap.counters[&format!("chan.{dir}.injected")] <= sends);
    }
    assert!(
        snap.counters["chan.fwd.drops"] > 0,
        "plan injected no drops"
    );
}

#[test]
fn metrics_json_round_trips_with_pinned_schema() {
    let registry = Registry::new();
    registry.counter("a.sends").add(41);
    registry.gauge("a.depth").set(9);
    registry.gauge("a.depth").set(3);
    for v in [0, 1, 5, 1000] {
        registry.histogram("a.sizes").record(v);
    }
    registry.set_value("a.rate", 123.5);

    let snap = registry.snapshot();
    assert_eq!(snap.schema_version, SCHEMA_VERSION);
    assert_eq!(
        SCHEMA_VERSION, 1,
        "schema version is pinned; bump knowingly"
    );

    let json = snap.to_json();
    let back = MetricsSnapshot::from_json(&json).expect("round trip");
    assert_eq!(snap, back);
    assert_eq!(back.to_json(), json, "reserialization is byte-identical");

    // A document from a future schema is rejected, not misread.
    let future = json.replacen("\"schema_version\":1", "\"schema_version\":99", 1);
    assert!(MetricsSnapshot::from_json(&future).is_err());
    // And the document is syntactically plain JSON.
    assert!(Json::parse(&json).is_ok());
}

/// The replayability contract: a run computes bit-for-bit the same
/// execution whether or not anyone is watching.
#[test]
fn telemetry_on_and_off_yield_identical_fingerprints() {
    for seed in 0..8 {
        let cfg = SimConfig::default();
        let mut plain = Simulation::builder(SequenceNumber::factory())
            .channel(Discipline::Probabilistic { q: 0.35 })
            .seed(seed)
            .build();
        let plain_stats = plain.deliver(25, &cfg).expect("plain run");

        let registry = Arc::new(Registry::new());
        let trace = Arc::new(TraceSink::new());
        let mut watched = Simulation::builder(SequenceNumber::factory())
            .channel(Discipline::Probabilistic { q: 0.35 })
            .seed(seed)
            .build();
        watched.attach_telemetry(Arc::clone(&registry), Some(Arc::clone(&trace)));
        let watched_stats = watched.deliver(25, &cfg).expect("watched run");

        assert_eq!(
            plain_stats.fingerprint, watched_stats.fingerprint,
            "seed {seed}: telemetry changed the execution fingerprint"
        );
        assert_eq!(
            format!("{plain_stats:?}"),
            format!("{watched_stats:?}"),
            "seed {seed}: telemetry changed the run statistics"
        );
        assert!(registry.snapshot().counters["sim.messages.received"] == 25);
        assert!(!trace.is_empty());
    }
}

#[test]
fn explorer_reports_are_byte_identical_with_telemetry_enabled() {
    let cfg = ExploreConfig::default();
    for threads in [1, 2, 8] {
        for proto in [
            Box::new(SequenceNumber::new()) as Box<dyn nonfifo::protocols::DataLink>,
            Box::new(AlternatingBit::new()),
        ] {
            let plain = ParallelExplorer::new(threads)
                .explore(proto.as_ref(), &cfg)
                .report();
            let registry = Arc::new(Registry::new());
            let watched = ParallelExplorer::new(threads)
                .with_telemetry(Arc::clone(&registry), Some(Arc::new(TraceSink::new())))
                .explore(proto.as_ref(), &cfg)
                .report();
            assert_eq!(
                plain,
                watched,
                "{} at {threads} threads: telemetry perturbed the report",
                proto.name()
            );
            assert!(registry.snapshot().counters["explore.states"] > 0);
        }
    }
}
