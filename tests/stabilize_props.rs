//! Property harness for the self-stabilization wing, driven end-to-end
//! through the facade: seeded initial corruption → settle → workload →
//! convergence judgment. Cases run on the workspace PRNG so each is
//! addressable by seed; `PROPTEST_CASES` scales the case count (CI pins
//! it for reproducible runtime).

use nonfifo::channel::{CorruptionSeverity, Discipline, FaultPlan, ScramblePlan};
use nonfifo::core::{certify, stabilize_run, SeedVerdict, StabilizeConfig};
use nonfifo::protocols::{NaiveCycle, StabilizingDl};
use nonfifo_rng::StdRng;

/// Cases per property: `PROPTEST_CASES` if set, else a small default that
/// keeps the whole harness in tier-1 time.
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

fn for_seeds(cases: u64, case: impl Fn(u64, &mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(seed, &mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at seed {seed}; rerun replays it exactly");
            std::panic::resume_unwind(payload);
        }
    }
}

fn random_severity(rng: &mut StdRng) -> CorruptionSeverity {
    CorruptionSeverity::ALL[rng.gen_range(0..CorruptionSeverity::ALL.len())]
}

#[test]
fn scramble_plans_are_pure_functions_of_severity_and_seed() {
    for_seeds(cases(), |_seed, rng| {
        let severity = random_severity(rng);
        let seed = rng.next_u64();
        let a = ScramblePlan::generate(severity, seed);
        let b = ScramblePlan::generate(severity, seed);
        assert_eq!(a, b, "{severity} plan at seed {seed} is not deterministic");
        assert!(!a.is_empty(), "{severity} plan injects nothing");
        let shifted = ScramblePlan::generate(severity, seed ^ 1);
        assert_ne!(a, shifted, "{severity} plans at adjacent seeds collide");
    });
}

#[test]
fn corrupted_runs_replay_fingerprint_identically_per_seed() {
    for_seeds(cases(), |seed, rng| {
        let cfg = StabilizeConfig {
            severity: random_severity(rng),
            discipline: Discipline::Probabilistic {
                q: 0.1 + 0.1 * rng.gen_range(0..3) as f64,
            },
            ..StabilizeConfig::default()
        };
        let run_seed = rng.next_u64() % 10_000;
        let a = stabilize_run(StabilizingDl::new(), run_seed, &cfg);
        let b = stabilize_run(StabilizingDl::new(), run_seed, &cfg);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "case {seed}: fingerprint does not replay at run seed {run_seed}"
        );
        assert_eq!(
            a.verdict, b.verdict,
            "case {seed}: verdict not deterministic"
        );
        assert_eq!(
            a.corruption_events, b.corruption_events,
            "case {seed}: corrupted prefix length not deterministic"
        );
    });
}

#[test]
fn stabilizing_dl_converges_across_random_scopes() {
    for_seeds(cases(), |seed, rng| {
        let cfg = StabilizeConfig {
            severity: random_severity(rng),
            discipline: Discipline::Probabilistic {
                q: 0.1 + 0.1 * rng.gen_range(0..3) as f64,
            },
            fault_plan: if rng.gen_range(0..2) == 0 {
                Some(FaultPlan::parse("dup 0.1\ndrop 0.05").expect("valid plan"))
            } else {
                None
            },
            ..StabilizeConfig::default()
        };
        let outcome = stabilize_run(StabilizingDl::new(), rng.next_u64() % 10_000, &cfg);
        assert!(
            matches!(outcome.verdict, SeedVerdict::Converged { .. }),
            "case {seed}: stabilizing-dl failed a corrupted start: {}",
            outcome.verdict
        );
    });
}

#[test]
fn convergence_spec_rejects_the_naive_cycle_from_poisoned_states() {
    // The contrast that makes certification meaningful: a FIFO-only label
    // cycle trusts whatever the scramble left in the channel and never
    // recovers on at least one seed.
    let report = certify(|| NaiveCycle::new(3), 16, &StabilizeConfig::default());
    assert!(
        !report.certified(),
        "naive cycle must not certify from corrupted starts: {report}"
    );
    assert!(report.first_failure().is_some());
    assert_eq!(
        report.converged + report.diverged + report.stalled,
        report.seeds
    );
}
