//! Shard-merge determinism, end-to-end through the facade: the property
//! that makes the `nonfifo serve` daemon safe is that the expand →
//! execute → merge pipeline is a pure function of the plan — however the
//! expansion is partitioned, wherever the pieces run, whatever order they
//! come back in, and whatever mix of cached and fresh records fills the
//! slots. These tests pin that property for the in-process service (the
//! process-spawning paths live in `crates/cli/tests/serve.rs`) plus the
//! regressions around it: adversarial partitions, lost records healed by
//! retry, and warm-cache replay through a restarted daemon.

use nonfifo::campaign::{
    merge_reports, CampaignPlan, CampaignRunner, CampaignService, PlanExpansion, ServiceConfig,
    ShardSpec, WireMsg,
};
use std::sync::Mutex;

const PLAN: &str = "\
schema_version 1
scenario mixed
protocols abp seqnum window4
disciplines fifo prob:0.25
messages 5 9
seeds 0..2

scenario chaos
protocols seqnum
disciplines prob:0.2
messages 8
seeds 0..3
fault dup 0.1
";

fn expansion() -> PlanExpansion {
    let plan = CampaignPlan::parse(PLAN).expect("plan parses");
    PlanExpansion::of_plan(&plan).expect("plan validates")
}

fn batch_baseline() -> (String, String) {
    let report = CampaignRunner::new(1).run(expansion().runs()).unwrap();
    (report.render(), report.aggregate_metrics().to_json())
}

/// A deterministic "random" partition: assigns index `i` to shard
/// `xorshift(seed, i) % k`, allowing empty and wildly unbalanced shards —
/// shapes the round-robin splitter never produces.
fn scrambled_partition(len: usize, k: usize, seed: u64) -> Vec<ShardSpec> {
    let mut shards: Vec<ShardSpec> = (0..k)
        .map(|shard| ShardSpec {
            shard,
            of: k,
            indices: Vec::new(),
        })
        .collect();
    let mut state = seed | 1;
    for i in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        shards[(state as usize) % k].indices.push(i);
    }
    shards.retain(|s| !s.indices.is_empty());
    shards
}

/// Property: ANY partition of the expansion — round-robin or scrambled,
/// balanced or degenerate, executed and merged in any shard order —
/// reassembles byte-identically to the single-process batch report.
#[test]
fn arbitrary_partitions_merge_byte_identically() {
    let exp = expansion();
    let (render, aggregate) = batch_baseline();
    let cases: Vec<Vec<ShardSpec>> = vec![
        exp.shard_all(1),
        exp.shard_all(2),
        exp.shard_all(4),
        exp.shard_all(exp.len()),
        scrambled_partition(exp.len(), 3, 0x9e37),
        scrambled_partition(exp.len(), 5, 0xc2b2),
        scrambled_partition(exp.len(), 2, 0x1234_5678),
    ];
    for (case, shards) in cases.into_iter().enumerate() {
        let mut parts: Vec<_> = shards.iter().map(|s| s.execute(&exp, |_| {})).collect();
        // Completion order must not matter: merge the parts reversed.
        parts.reverse();
        let merged = merge_reports(&exp, Vec::new(), parts).unwrap();
        assert_eq!(merged.render(), render, "case {case}");
        assert_eq!(
            merged.aggregate_metrics().to_json(),
            aggregate,
            "case {case}"
        );
    }
}

/// Regression: the service's worker counts 1, 2, and 4 — the matrix CI
/// pins over real processes — hold in-process too, Run deltas included.
#[test]
fn service_reports_are_worker_count_invariant() {
    let (render, aggregate) = batch_baseline();
    let total = expansion().len();
    for workers in [1usize, 2, 4] {
        let service = CampaignService::new(ServiceConfig::default()).unwrap();
        let streamed = Mutex::new(Vec::new());
        let mut sink = |msg: &WireMsg| {
            if let WireMsg::Run { index, .. } = msg {
                streamed.lock().unwrap().push(*index as usize);
            }
        };
        let report = service.run_campaign(PLAN, workers, &mut sink).unwrap();
        let mut indices = streamed.into_inner().unwrap();
        indices.sort_unstable();
        assert_eq!(
            indices,
            (0..total).collect::<Vec<_>>(),
            "{workers} workers: every run streamed exactly once"
        );
        match report {
            WireMsg::Report {
                render: r,
                aggregate: a,
                ..
            } => {
                assert_eq!(r, render, "{workers} workers");
                assert_eq!(a.to_json(), aggregate, "{workers} workers");
            }
            other => panic!("wrong kind: {}", other.kind()),
        }
    }
}

/// Regression: a part that lost records (a crashed worker) merges to an
/// error naming the gap, and refilling exactly the missing indices —
/// whatever shard claims the refill — heals to the byte-identical report.
#[test]
fn lost_records_are_named_and_retry_heals_byte_identically() {
    let exp = expansion();
    let (render, _) = batch_baseline();
    let shards = exp.shard_all(3);
    let mut parts: Vec<_> = shards.iter().map(|s| s.execute(&exp, |_| {})).collect();

    // Drop a prefix of shard 1 and a suffix of shard 2 — two different
    // crash shapes.
    parts[1].records.drain(..2);
    parts[2].records.truncate(1);
    let err = merge_reports(&exp, Vec::new(), parts.clone()).unwrap_err();
    assert!(
        err.to_string().contains("produced no record"),
        "gap is named: {err}"
    );

    let mut healed_parts = parts;
    for (shard, part) in [(1usize, 1usize), (2, 2)] {
        let missing = healed_parts[part].missing_from(&shards[shard].indices);
        assert!(!missing.is_empty());
        let refill = ShardSpec {
            shard: 99, // the merge keys on index + fingerprint, not shard id
            of: 100,
            indices: missing,
        }
        .execute(&exp, |_| {});
        healed_parts.push(refill);
    }
    let healed = merge_reports(&exp, Vec::new(), healed_parts).unwrap();
    assert_eq!(healed.render(), render);
}

/// Warm-cache replay through the daemon: a service restarted on the cache
/// file a previous service wrote replays every run without executing
/// anything, byte-identical except the hit counter.
#[test]
fn warm_cache_replays_through_a_restarted_service() {
    let total = expansion().len();
    let path = std::env::temp_dir()
        .join(format!("nonfifo-service-cache-{}.json", std::process::id()))
        .to_string_lossy()
        .into_owned();
    std::fs::remove_file(&path).ok();

    let cfg = ServiceConfig {
        cache_path: Some(path.clone()),
        ..ServiceConfig::default()
    };
    let cold_service = CampaignService::new(cfg.clone()).unwrap();
    let mut sink = |_: &WireMsg| {};
    let cold = cold_service.run_campaign(PLAN, 2, &mut sink).unwrap();
    assert_eq!(cold_service.cache().len(), total, "cache file populated");

    // A fresh service instance — only the file connects them.
    let warm_service = CampaignService::new(cfg).unwrap();
    let executed = Mutex::new(0usize);
    let mut sink = |msg: &WireMsg| {
        if matches!(msg, WireMsg::Run { .. }) {
            *executed.lock().unwrap() += 1;
        }
    };
    let warm = warm_service.run_campaign(PLAN, 4, &mut sink).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(executed.into_inner().unwrap(), 0, "nothing re-executed");

    match (cold, warm) {
        (
            WireMsg::Report {
                render: cr,
                aggregate: ca,
                cache_hits: 0,
            },
            WireMsg::Report {
                render: wr,
                aggregate: mut wa,
                cache_hits: hits,
            },
        ) => {
            assert_eq!(hits as usize, total);
            assert_eq!(cr, wr, "renders byte-identical across the restart");
            wa.counters.insert("campaign.cache_hits".to_string(), 0);
            assert_eq!(ca.to_json(), wa.to_json(), "aggregates differ only in hits");
        }
        other => panic!("unexpected reports: {other:?}"),
    }
}

/// The versioned plan schema rides the whole pipeline: a v1 declaration
/// is accepted everywhere, and an unsupported version is rejected with
/// the line number before any run executes.
#[test]
fn schema_versions_gate_the_service_pipeline() {
    let service = CampaignService::new(ServiceConfig::default()).unwrap();
    let mut sink = |_: &WireMsg| panic!("rejected plans must not stream");
    let future = PLAN.replace("schema_version 1", "schema_version 99");
    let err = service.run_campaign(&future, 2, &mut sink).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 1"), "{msg}");
    assert!(msg.contains("unsupported schema_version 99"), "{msg}");
}
