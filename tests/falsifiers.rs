//! Integration: the executable lower-bound constructions against every
//! protocol, with the produced evidence re-validated by the independent
//! offline checkers.

use nonfifo::adversary::{
    FalsifyOutcome, GreedyReplayAdversary, MfConfig, MfFalsifier, PfConfig, PfFalsifier,
};
use nonfifo::ioa::spec::{check_dl1, check_pl1, Validity};
use nonfifo::ioa::Dir;
use nonfifo::protocols::{
    AfekFlush, AlternatingBit, DataLink, NaiveCycle, SequenceNumber, SlidingWindow,
};

fn mf() -> MfFalsifier {
    MfFalsifier::new(MfConfig {
        max_messages: 40,
        ..MfConfig::default()
    })
}

#[test]
fn violations_are_real_invalid_executions() {
    // The evidence must convince the *offline* checkers, not just the
    // online monitor that produced it.
    let victims: Vec<Box<dyn DataLink>> = vec![
        Box::new(AlternatingBit::new()),
        Box::new(NaiveCycle::new(3)),
        Box::new(NaiveCycle::new(4)),
        Box::new(SlidingWindow::new(2)),
    ];
    for proto in victims {
        let FalsifyOutcome::Violation(report) = mf().run(proto.as_ref()) else {
            panic!("{} should fall", proto.name());
        };
        let exec = &report.execution;
        // The execution is invalid in exactly the paper's way…
        assert!(check_dl1(exec).is_err(), "{}", proto.name());
        assert!(matches!(Validity::classify(exec), Validity::Invalid(_)));
        assert_eq!(exec.counts().rm, exec.counts().sm + 1, "{}", proto.name());
        // …while the *physical* layer behaved perfectly legally: the blame
        // is the protocol's.
        check_pl1(exec, Dir::Forward).expect("channel was legal");
        check_pl1(exec, Dir::Backward).expect("channel was legal");
    }
}

#[test]
fn prefix_before_phantom_is_semi_valid() {
    let FalsifyOutcome::Violation(report) = mf().run(&NaiveCycle::new(3)) else {
        panic!("cycle should fall");
    };
    // Strip the phantom delivery and everything after: what remains must be
    // a perfectly ordinary (semi-)valid execution, as in the proofs.
    let exec = &report.execution;
    let phantom_index = exec
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_receive_msg())
        .map(|(i, _)| i)
        .nth(exec.counts().sm as usize)
        .expect("phantom receive present");
    let prefix = exec.prefix(phantom_index);
    assert!(
        Validity::classify(&prefix).is_semi_valid(),
        "prefix: {}",
        Validity::classify(&prefix)
    );
}

#[test]
fn survivors_and_victims_partition_correctly() {
    let mf = mf();
    assert!(mf.run(&AlternatingBit::new()).is_violation());
    assert!(!mf.run(&SequenceNumber::new()).is_violation());
    assert!(!mf.run(&AfekFlush::new()).is_violation());

    let greedy = GreedyReplayAdversary::default();
    assert!(greedy.run(&AlternatingBit::new()).is_violation());
    assert!(!greedy.run(&SequenceNumber::new()).is_violation());
}

#[test]
fn pf_curve_shapes_match_theorem_4_1() {
    let pf = PfFalsifier::new(PfConfig {
        messages: 50,
        ..PfConfig::default()
    });
    // Afek: linear, bound respected, in-transit grows one per message.
    let (outcome, costs) = pf.run(&AfekFlush::new());
    assert!(matches!(outcome, FalsifyOutcome::Survived(_)));
    for c in &costs {
        assert!(c.extension_sends >= c.in_transit_before / 3);
        assert!(c.extension_sends <= c.in_transit_before + 2);
    }
    // Sequence numbers: constant extensions regardless of the pool.
    let (outcome, costs) = pf.run(&SequenceNumber::new());
    assert!(matches!(outcome, FalsifyOutcome::Survived(_)));
    assert!(costs.iter().all(|c| c.extension_sends <= 2));
}

#[test]
fn mf_growth_trace_matches_induction_bookkeeping() {
    // Against the 3-header reconstruction the growth round parks one new
    // copy per message: pool size equals message count + 1 at every stage.
    let (outcome, stages) = mf().run_with_trace(&AfekFlush::new());
    assert!(matches!(outcome, FalsifyOutcome::Survived(_)));
    for s in &stages {
        assert_eq!(
            s.pool_size,
            s.message + 1,
            "stage {}: pool {}",
            s.message,
            s.pool_size
        );
        // Copies spread across the 3 labels (the pigeonhole of T4.1).
        assert!(s.pool_histogram.len() <= 3);
    }
}

#[test]
fn phantom_replay_is_receiver_indistinguishable_from_beta() {
    // Verify the simulation argument itself, not just its conclusion:
    // the replayed extension β′ (delayed copies substituted for fresh
    // sends, no send_msg) must be indistinguishable to the receiver from
    // the oracle's extension β.
    use nonfifo::adversary::{BoundnessOracle, System};
    use nonfifo::channel::ChannelIntrospect as _;
    use nonfifo::ioa::view::{receiver_indistinguishable, receiver_view};
    use nonfifo::ioa::Execution;

    let k = 3;
    let mut sys = System::new(&NaiveCycle::new(k));
    // Build the pool: one captured retransmission per message, k messages.
    for _ in 0..k {
        sys.send_msg();
        let mut captured = false;
        while sys.counts().rm < sys.counts().sm {
            sys.step(|_, _, _| {
                if captured {
                    nonfifo::adversary::Disposition::Deliver
                } else {
                    captured = true;
                    nonfifo::adversary::Disposition::Park
                }
            });
        }
    }
    // The pool now holds one copy per label; the next message's extension
    // is fully coverable.
    let oracle = BoundnessOracle::default();
    let beta = oracle.extension_with_new_message(&sys).expect("live");
    assert!(!beta.receipts.is_empty());
    for (&p, &n) in beta.histogram().iter() {
        assert!(
            sys.fwd.packet_copies(p) as u64 >= n,
            "pool does not cover {p}"
        );
    }

    // Replay β without any send_msg.
    let mut fork = sys.clone();
    let start = fork.execution().len();
    fork.replay_receipts(&beta.receipts);
    let beta_prime: Execution = fork.execution().events()[start..].iter().copied().collect();

    assert!(
        receiver_indistinguishable(&beta.events, &beta_prime),
        "views differ:\n  β : {:?}\n  β′: {:?}",
        receiver_view(&beta.events),
        receiver_view(&beta_prime)
    );
    // And the conclusion: the phantom delivery happened.
    assert_eq!(fork.counts().rm, fork.counts().sm + 1);
}
