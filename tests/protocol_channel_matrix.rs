//! Integration: every protocol on every channel it claims to support,
//! end to end through the public API.

use nonfifo::channel::Discipline;
use nonfifo::core::{SimConfig, Simulation};
use nonfifo::protocols::{
    AfekFlush, AlternatingBit, DataLink, GoBackN, NaiveCycle, Outnumber, SelectiveReject,
    SequenceNumber, SlidingWindow,
};

fn all_protocols() -> Vec<Box<dyn DataLink>> {
    vec![
        Box::new(AlternatingBit::new()),
        Box::new(NaiveCycle::new(3)),
        Box::new(NaiveCycle::new(5)),
        Box::new(SequenceNumber::new()),
        Box::new(SlidingWindow::new(4)),
        Box::new(GoBackN::new(4)),
        Box::new(SelectiveReject::new(4)),
        Box::new(AfekFlush::new()),
        Box::new(Outnumber::new(3)),
    ]
}

#[derive(Clone, Copy)]
enum Substrate {
    Fifo,
    LossyFifo(f64),
    Probabilistic(f64),
}

fn build(proto: &dyn DataLink, substrate: Substrate, seed: u64) -> Simulation {
    // `DataLink` factories are cheap; rebuild a concrete one by name to keep
    // this test at the public-API level.
    macro_rules! with {
        ($p:expr) => {
            match substrate {
                Substrate::Fifo => Simulation::builder($p).build(),
                Substrate::LossyFifo(l) => Simulation::builder($p)
                    .channel(Discipline::LossyFifo { loss: l })
                    .seed(seed)
                    .build(),
                Substrate::Probabilistic(q) => Simulation::builder($p)
                    .channel(Discipline::Probabilistic { q })
                    .seed(seed)
                    .build(),
            }
        };
    }
    match proto.name().as_str() {
        "alternating-bit" => with!(AlternatingBit::new()),
        "naive-cycle(k=3)" => with!(NaiveCycle::new(3)),
        "naive-cycle(k=5)" => with!(NaiveCycle::new(5)),
        "sequence-number" => with!(SequenceNumber::new()),
        "sliding-window(w=4)" => with!(SlidingWindow::new(4)),
        "go-back-n(w=4)" => with!(GoBackN::new(4)),
        "selective-reject(w=4)" => with!(SelectiveReject::new(4)),
        "afek-flush(3)" => with!(AfekFlush::new()),
        "outnumber(L=3)" => with!(Outnumber::new(3)),
        other => panic!("unknown protocol {other}"),
    }
}

#[test]
fn every_protocol_is_correct_over_perfect_fifo() {
    for proto in all_protocols() {
        // Outnumber's cost doubles per message even on a perfect channel
        // (that is the point of the paper); keep its run short.
        let n = if proto.name().starts_with("outnumber") {
            12
        } else {
            30
        };
        let mut sim = build(proto.as_ref(), Substrate::Fifo, 0);
        let stats = sim
            .deliver(n, &SimConfig::default())
            .unwrap_or_else(|e| panic!("{} over fifo: {e}", proto.name()));
        assert_eq!(stats.messages_delivered, n, "{}", proto.name());
        assert!(stats.violation.is_none(), "{}", proto.name());
    }
}

#[test]
fn fifo_safe_protocols_survive_loss() {
    // Loss (without reordering) is survivable by every retransmitting
    // protocol here.
    for proto in all_protocols() {
        let n = if proto.name().starts_with("outnumber") {
            10
        } else {
            60
        };
        let mut sim = build(proto.as_ref(), Substrate::LossyFifo(0.3), 11);
        let stats = sim
            .deliver(n, &SimConfig::default())
            .unwrap_or_else(|e| panic!("{} over lossy fifo: {e}", proto.name()));
        assert_eq!(stats.messages_delivered, n, "{}", proto.name());
        assert!(stats.violation.is_none(), "{}", proto.name());
    }
}

#[test]
fn unbounded_and_reconstructed_protocols_survive_probabilistic() {
    for proto in all_protocols() {
        // The probabilistic channel never delivers its delayed copies, so
        // even naive protocols stay safe here; what differs is cost.
        let n = if proto.name().starts_with("outnumber") {
            9
        } else {
            50
        };
        let mut sim = build(proto.as_ref(), Substrate::Probabilistic(0.25), 3);
        let stats = sim
            .deliver(n, &SimConfig::default())
            .unwrap_or_else(|e| panic!("{} over probabilistic: {e}", proto.name()));
        assert_eq!(stats.messages_delivered, n, "{}", proto.name());
    }
}

#[test]
fn bounded_header_protocols_keep_their_promise() {
    use nonfifo::protocols::HeaderBound;
    for proto in all_protocols() {
        let mut sim = build(proto.as_ref(), Substrate::LossyFifo(0.2), 5);
        let n = if proto.name().starts_with("outnumber") {
            9
        } else {
            40
        };
        let stats = sim.deliver(n, &SimConfig::default()).unwrap();
        match proto.forward_headers() {
            HeaderBound::Fixed(k) => assert!(
                stats.distinct_forward_packets <= u64::from(k),
                "{} promised {k} headers, used {}",
                proto.name(),
                stats.distinct_forward_packets
            ),
            HeaderBound::PerMessage => assert_eq!(
                stats.distinct_forward_packets,
                n,
                "{} should use one header per message",
                proto.name()
            ),
        }
    }
}

#[test]
fn cost_separation_over_probabilistic_channel() {
    // The paper's bottom line, through the public API: at equal n the
    // bounded-header witness pays orders of magnitude more than the naive
    // protocol.
    let n = 10;
    let mut naive = Simulation::builder(SequenceNumber::new())
        .channel(Discipline::Probabilistic { q: 0.3 })
        .seed(9)
        .build();
    let naive_stats = naive.deliver(n, &SimConfig::default()).unwrap();
    let mut bounded = Simulation::builder(Outnumber::factory())
        .channel(Discipline::Probabilistic { q: 0.3 })
        .seed(9)
        .build();
    let bounded_stats = bounded.deliver(n, &SimConfig::default()).unwrap();
    assert!(
        bounded_stats.packets_sent_forward > 20 * naive_stats.packets_sent_forward,
        "bounded {} vs naive {}",
        bounded_stats.packets_sent_forward,
        naive_stats.packets_sent_forward
    );
}
