//! The builder contract, post-migration. The PR 4 per-discipline
//! constructors (`Simulation::fifo`, `::probabilistic`, `::lossy_fifo`,
//! `::bounded_reorder`, `::chaos`) were pure respellings of
//! `Simulation::builder` chains, held to fingerprint-and-metrics parity
//! until their removal; these tests pin the properties that made that
//! deletion safe — the builder is deterministic, its defaults are the
//! documented ones, and each discipline chain is observably distinct.

use nonfifo::channel::{Discipline, FaultPlan};
use nonfifo::core::{SimConfig, Simulation};
use nonfifo::protocols::{AlternatingBit, SequenceNumber};
use nonfifo::telemetry::{MetricsSnapshot, Registry};
use std::sync::Arc;

/// Runs `sim` for `n` messages under telemetry and returns the pair of
/// observables the builder contract is judged on.
fn observe(mut sim: Simulation, n: u64) -> (u64, MetricsSnapshot) {
    let registry = Arc::new(Registry::new());
    sim.attach_telemetry(Arc::clone(&registry), None);
    sim.deliver(n, &SimConfig::default()).expect("delivery");
    (sim.execution_fingerprint(), registry.snapshot())
}

/// Asserts the two constructions are indistinguishable.
fn assert_parity(old: Simulation, new: Simulation, n: u64, label: &str) {
    let (old_fp, old_snap) = observe(old, n);
    let (new_fp, new_snap) = observe(new, n);
    assert_eq!(old_fp, new_fp, "{label}: fingerprints diverged");
    assert_eq!(old_snap, new_snap, "{label}: metrics diverged");
}

/// Every chain from the migration table in `docs/builder_migration.md`,
/// over a representative protocol.
fn migration_chains(seed: u64) -> Vec<(&'static str, Simulation)> {
    let plan = FaultPlan::parse("dup 0.15\ndrop 0.1").expect("plan");
    vec![
        (
            "fifo",
            Simulation::builder(SequenceNumber::factory()).build(),
        ),
        (
            "probabilistic",
            Simulation::builder(SequenceNumber::factory())
                .channel(Discipline::Probabilistic { q: 0.3 })
                .seed(seed)
                .build(),
        ),
        (
            "lossy_fifo",
            Simulation::builder(AlternatingBit::factory())
                .channel(Discipline::LossyFifo { loss: 0.25 })
                .seed(seed)
                .build(),
        ),
        (
            "bounded_reorder",
            Simulation::builder(SequenceNumber::factory())
                .channel(Discipline::BoundedReorder { bound: 4 })
                .seed(seed)
                .build(),
        ),
        (
            "chaos",
            Simulation::builder(SequenceNumber::factory())
                .fault_plan(plan)
                .seed(seed)
                .build(),
        ),
    ]
}

/// Building the same chain twice yields bit-identical executions — the
/// property the removed constructors delegated to, and the one the
/// campaign cache and the sharded service still rely on.
#[test]
fn every_migration_chain_is_deterministic() {
    for seed in [0, 7, 41] {
        let first = migration_chains(seed);
        let second = migration_chains(seed);
        for ((label, a), (_, b)) in first.into_iter().zip(second) {
            assert_parity(a, b, 25, label);
        }
    }
}

/// The old constructors were distinct for a reason: each discipline chain
/// produces an observably different execution on a lossy-tolerant
/// protocol, so no two rows of the migration table collapsed.
#[test]
fn migration_chains_are_pairwise_distinct() {
    let fingerprints: Vec<(&str, u64)> = migration_chains(7)
        .into_iter()
        .map(|(label, sim)| (label, observe(sim, 25).0))
        .collect();
    for (i, (la, fa)) in fingerprints.iter().enumerate() {
        for (lb, fb) in &fingerprints[i + 1..] {
            assert_ne!(fa, fb, "{la} and {lb} produced identical executions");
        }
    }
}

/// The builder's defaults are the documented ones: FIFO, seed 0, no faults.
/// Spelling them out explicitly must change nothing.
#[test]
fn builder_defaults_are_explicit_fifo_seed_zero() {
    assert_parity(
        Simulation::builder(SequenceNumber::factory()).build(),
        Simulation::builder(SequenceNumber::factory())
            .channel(Discipline::Fifo)
            .seed(0)
            .build(),
        40,
        "defaults",
    );
}
