//! The builder migration contract: every deprecated constructor is a pure
//! respelling of a `Simulation::builder` chain. Parity is checked at the
//! strongest observable level — execution fingerprints and full metrics
//! snapshots — so the old spellings can be deleted without behaviour risk.

#![allow(deprecated)]

use nonfifo::channel::{Discipline, FaultPlan};
use nonfifo::core::{SimConfig, Simulation};
use nonfifo::protocols::{AlternatingBit, SequenceNumber};
use nonfifo::telemetry::{MetricsSnapshot, Registry};
use std::sync::Arc;

/// Runs `sim` for `n` messages under telemetry and returns the pair of
/// observables parity is judged on.
fn observe(mut sim: Simulation, n: u64) -> (u64, MetricsSnapshot) {
    let registry = Arc::new(Registry::new());
    sim.attach_telemetry(Arc::clone(&registry), None);
    sim.deliver(n, &SimConfig::default()).expect("delivery");
    (sim.execution_fingerprint(), registry.snapshot())
}

/// Asserts the two constructions are indistinguishable.
fn assert_parity(old: Simulation, new: Simulation, n: u64, label: &str) {
    let (old_fp, old_snap) = observe(old, n);
    let (new_fp, new_snap) = observe(new, n);
    assert_eq!(old_fp, new_fp, "{label}: fingerprints diverged");
    assert_eq!(old_snap, new_snap, "{label}: metrics diverged");
}

#[test]
fn fifo_constructor_matches_builder() {
    assert_parity(
        Simulation::fifo(SequenceNumber::factory()),
        Simulation::builder(SequenceNumber::factory()).build(),
        40,
        "fifo",
    );
}

#[test]
fn probabilistic_constructor_matches_builder() {
    for seed in [0, 7, 41] {
        assert_parity(
            Simulation::probabilistic(SequenceNumber::factory(), 0.3, seed),
            Simulation::builder(SequenceNumber::factory())
                .channel(Discipline::Probabilistic { q: 0.3 })
                .seed(seed)
                .build(),
            25,
            "probabilistic",
        );
    }
}

#[test]
fn lossy_fifo_constructor_matches_builder() {
    for seed in [0, 7, 41] {
        assert_parity(
            Simulation::lossy_fifo(AlternatingBit::factory(), 0.25, seed),
            Simulation::builder(AlternatingBit::factory())
                .channel(Discipline::LossyFifo { loss: 0.25 })
                .seed(seed)
                .build(),
            25,
            "lossy_fifo",
        );
    }
}

#[test]
fn bounded_reorder_constructor_matches_builder() {
    for seed in [0, 7, 41] {
        assert_parity(
            Simulation::bounded_reorder(SequenceNumber::factory(), 4, seed),
            Simulation::builder(SequenceNumber::factory())
                .channel(Discipline::BoundedReorder { bound: 4 })
                .seed(seed)
                .build(),
            25,
            "bounded_reorder",
        );
    }
}

#[test]
fn chaos_constructor_matches_builder() {
    let plan = FaultPlan::parse("dup 0.15\ndrop 0.1").expect("plan");
    for seed in [0, 7, 41] {
        assert_parity(
            Simulation::chaos(SequenceNumber::factory(), &plan, seed),
            Simulation::builder(SequenceNumber::factory())
                .fault_plan(plan.clone())
                .seed(seed)
                .build(),
            25,
            "chaos",
        );
    }
}

/// The builder's defaults are the documented ones: FIFO, seed 0, no faults.
/// Spelling them out explicitly must change nothing.
#[test]
fn builder_defaults_are_explicit_fifo_seed_zero() {
    assert_parity(
        Simulation::builder(SequenceNumber::factory()).build(),
        Simulation::builder(SequenceNumber::factory())
            .channel(Discipline::Fifo)
            .seed(0)
            .build(),
        40,
        "defaults",
    );
}
