//! Property harness for the partial-order reduction (`--por`).
//!
//! Three families of properties back the reduction's soundness argument:
//!
//! 1. **Swap**: for every adjacent pair of steps in a seeded random
//!    schedule that [`steps_independent_at`] claims independent at the
//!    pre-state, executing the pair in either order reaches the same state
//!    digest and the same monitor verdict.
//! 2. **Retirement**: along seeded random walks, every parked packet the
//!    system calls retired ([`System::packet_retired`]) really is dead —
//!    delivering it moves neither automaton fingerprint, neither
//!    specification counter, nor the verdict — and retirement is monotone:
//!    once a value is retired it stays retired for the rest of the walk.
//! 3. **Oracle agreement**: over random protocol × discipline × scope
//!    draws, the reduced engine and the full engine agree on the outcome
//!    kind and the shortest-counterexample depth, and the reduced state
//!    count never exceeds the full one.
//!
//! Cases run on the workspace PRNG so each is addressable by seed;
//! `PROPTEST_CASES` scales the case count.

use nonfifo::adversary::{
    apply_step, scope_root, state_digest, steps_independent_at, Discipline, ExploreConfig,
    ExploreOutcome, ParallelExplorer, ScheduleStep, System,
};
use nonfifo::protocols::{
    AlternatingBit, DataLink, GoBackN, Outnumber, SequenceNumber, SlidingWindow,
};
use nonfifo_rng::StdRng;

/// Cases per property: `PROPTEST_CASES` if set, else a small default that
/// keeps the whole harness in tier-1 time.
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn for_seeds(cases: u64, case: impl Fn(u64, &mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(seed, &mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("por property failed at seed {seed}; rerun replays it exactly");
            std::panic::resume_unwind(payload);
        }
    }
}

fn random_protocol(rng: &mut StdRng) -> Box<dyn DataLink> {
    match rng.gen_range(0..6) {
        // Weighted toward the retiring protocol: the quotient and the
        // retirement properties only bite where `header_retired` is
        // implemented, but the defaulted protocols must keep the identity
        // quotient, so they stay in the draw.
        0 | 1 => Box::new(SequenceNumber::new()),
        2 => Box::new(AlternatingBit::new()),
        3 => Box::new(GoBackN::new(1 + rng.gen_range(0..2) as u32)),
        4 => Box::new(SlidingWindow::new(1 + rng.gen_range(0..2) as u32)),
        _ => Box::new(Outnumber::new(3 + rng.gen_range(0..2) as u32)),
    }
}

/// Scope for the walk-based properties: always non-FIFO (where the
/// reduction is live) with the reduction requested.
fn walk_scope(rng: &mut StdRng) -> ExploreConfig {
    ExploreConfig {
        max_messages: 2 + rng.gen_range(0..3) as u64,
        max_depth: 16,
        max_pool: 3 + rng.gen_range(0..3),
        max_states: 2_000_000,
        discipline: Discipline::NonFifo,
        corrupt_start: if rng.gen_range(0..3) == 0 {
            Some(rng.next_u64())
        } else {
            None
        },
        por: true,
    }
}

/// The schedule steps worth trying at `sys`: the two automaton-driving
/// steps plus a deliver and a drop per distinct parked header. Steps that
/// do not resolve to an enabled action are filtered by `apply_step`.
fn candidate_steps(sys: &System) -> Vec<ScheduleStep> {
    let mut steps = vec![ScheduleStep::Send, ScheduleStep::Park];
    let mut headers = Vec::new();
    for (p, _) in sys.fwd.parked_multiset().iter() {
        if !headers.contains(&p.header()) {
            headers.push(p.header());
        }
    }
    for h in headers {
        steps.push(ScheduleStep::Deliver(h));
        steps.push(ScheduleStep::Drop(h));
    }
    steps
}

/// Drives a seeded random walk from the scope root, returning the visited
/// states and the step taken out of each non-final state.
fn random_walk(
    proto: &dyn DataLink,
    cfg: &ExploreConfig,
    rng: &mut StdRng,
) -> (Vec<System>, Vec<ScheduleStep>) {
    let mut states = vec![scope_root(proto, cfg)];
    let mut steps = Vec::new();
    for _ in 0..cfg.max_depth {
        let sys = states.last().unwrap();
        let enabled: Vec<(ScheduleStep, System)> = candidate_steps(sys)
            .into_iter()
            .filter_map(|s| apply_step(sys, cfg, s).map(|next| (s, next)))
            .collect();
        if enabled.is_empty() {
            break;
        }
        let (step, next) = enabled[rng.gen_range(0..enabled.len())].clone();
        steps.push(step);
        states.push(next);
    }
    (states, steps)
}

#[test]
fn claimed_independent_adjacent_pairs_commute() {
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let cfg = walk_scope(rng);
        let (states, steps) = random_walk(proto.as_ref(), &cfg, rng);
        let mut checked = 0u64;
        for i in 0..steps.len().saturating_sub(1) {
            let (at, a, b) = (&states[i], steps[i], steps[i + 1]);
            if !steps_independent_at(at, &cfg, a, b) {
                continue;
            }
            checked += 1;
            let ab = apply_step(at, &cfg, a)
                .and_then(|s| apply_step(&s, &cfg, b))
                .unwrap_or_else(|| {
                    panic!("seed {seed}: independent pair {a:?};{b:?} failed to run in order")
                });
            let ba = apply_step(at, &cfg, b)
                .and_then(|s| apply_step(&s, &cfg, a))
                .unwrap_or_else(|| {
                    panic!("seed {seed}: independent pair {a:?};{b:?} failed to run swapped")
                });
            assert_eq!(
                state_digest(&ab),
                state_digest(&ba),
                "seed {seed}: swapping {a:?};{b:?} changes the state key for {}",
                proto.name(),
            );
            // Verdicts must match by *kind*: a violation's `event_index`
            // records where in the execution log the monitor flagged it,
            // which is path bookkeeping, not part of the verdict (the two
            // orders legitimately log their shared events differently).
            assert_eq!(
                ab.violation().as_ref().map(std::mem::discriminant),
                ba.violation().as_ref().map(std::mem::discriminant),
                "seed {seed}: swapping {a:?};{b:?} changes the verdict for {} \
                 ({:?} vs {:?})",
                proto.name(),
                ab.violation(),
                ba.violation(),
            );
        }
        // The walk should exercise the relation at least occasionally; a
        // harness that never finds an independent pair proves nothing. Not
        // asserted per seed (some walks legitimately have none), but the
        // counter keeps the property honest under --nocapture.
        let _ = checked;
    });
}

#[test]
fn retired_packets_are_dead_and_stay_retired() {
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let cfg = walk_scope(rng);
        let (states, _) = random_walk(proto.as_ref(), &cfg, rng);
        let mut seen_retired = Vec::new();
        for sys in &states {
            // Monotonicity: every value retired earlier in the walk is
            // still retired here, parked or not.
            for &p in &seen_retired {
                assert!(
                    sys.packet_retired(p),
                    "seed {seed}: {} un-retired a value mid-walk",
                    proto.name(),
                );
            }
            for (p, _) in sys.fwd.parked_multiset().iter() {
                if !sys.packet_retired(p) {
                    continue;
                }
                if !seen_retired.contains(&p) {
                    seen_retired.push(p);
                }
                // Deadness: releasing the retired copy is invisible to both
                // automata, both counters, and the monitor.
                let mut probe = sys.clone();
                probe.fwd.release_oldest_of_packet(p);
                probe.drain_released();
                assert_eq!(
                    probe.tx.state_fingerprint(),
                    sys.tx.state_fingerprint(),
                    "seed {seed}: retired delivery moved the {} transmitter",
                    proto.name(),
                );
                assert_eq!(
                    probe.rx.state_fingerprint(),
                    sys.rx.state_fingerprint(),
                    "seed {seed}: retired delivery moved the {} receiver",
                    proto.name(),
                );
                let (pc, sc) = (probe.counts(), sys.counts());
                assert_eq!(
                    (pc.sm, pc.rm),
                    (sc.sm, sc.rm),
                    "seed {seed}: counters moved"
                );
                assert_eq!(
                    probe.violation(),
                    sys.violation(),
                    "seed {seed}: retired delivery changed the verdict for {}",
                    proto.name(),
                );
            }
        }
    });
}

fn kind(outcome: &ExploreOutcome) -> &'static str {
    match outcome {
        ExploreOutcome::Counterexample { .. } => "counterexample",
        ExploreOutcome::Exhausted { .. } => "exhausted",
        ExploreOutcome::Truncated { .. } => "truncated",
    }
}

fn states_of(outcome: &ExploreOutcome) -> Option<usize> {
    match outcome {
        ExploreOutcome::Exhausted { states, .. } | ExploreOutcome::Truncated { states, .. } => {
            Some(*states)
        }
        ExploreOutcome::Counterexample { .. } => None,
    }
}

#[test]
fn reduced_engine_agrees_with_full_oracle() {
    for_seeds(cases(), |seed, rng| {
        let proto = random_protocol(rng);
        let mut cfg = walk_scope(rng);
        // Random discipline here: outside non-FIFO the reduction must
        // degenerate to the identity and still agree trivially.
        cfg.discipline = match rng.gen_range(0..3) {
            0 => Discipline::NonFifo,
            1 => Discipline::BoundedReorder(rng.gen_range(0..4) as u64),
            _ => Discipline::LossyFifo,
        };
        cfg.max_depth = 4 + rng.gen_range(0..6);
        let reduced = ParallelExplorer::new(0).explore(proto.as_ref(), &cfg);
        let full =
            ParallelExplorer::new(0).explore(proto.as_ref(), &ExploreConfig { por: false, ..cfg });
        assert_eq!(
            kind(&reduced),
            kind(&full),
            "seed {seed}: reduced and full engines disagree for {} under {} \
             (reduced {reduced:?}, full {full:?})",
            proto.name(),
            cfg.discipline,
        );
        if let (
            ExploreOutcome::Counterexample { depth: dr, .. },
            ExploreOutcome::Counterexample { depth: df, .. },
        ) = (&reduced, &full)
        {
            assert_eq!(
                dr,
                df,
                "seed {seed}: shortest-counterexample depth differs for {}",
                proto.name(),
            );
        }
        if let (Some(r), Some(f)) = (states_of(&reduced), states_of(&full)) {
            assert!(
                r <= f,
                "seed {seed}: reduction grew the state count for {} ({r} > {f})",
                proto.name(),
            );
        }
    });
}
