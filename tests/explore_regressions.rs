//! Regression pins for the exploration engines.
//!
//! The shortest-counterexample depths below are ground truth for the known
//! victims (they match the E11 table in `EXPERIMENTS.md`); a change in any
//! of them means the search order, the action semantics, or a protocol
//! changed behaviour. Both engines are pinned so a regression in either is
//! attributed directly.

use nonfifo::adversary::{
    explore, shrink, Discipline, ExploreConfig, ExploreOutcome, Explorer, ParallelExplorer,
    VisitedSpec,
};
use nonfifo::protocols::{
    AlternatingBit, DataLink, GoBackN, NaiveCycle, Outnumber, SequenceNumber, SlidingWindow,
};

fn small() -> ExploreConfig {
    ExploreConfig {
        max_messages: 3,
        max_depth: 12,
        max_pool: 5,
        max_states: 500_000,
        ..ExploreConfig::default()
    }
}

fn cycle_scope() -> ExploreConfig {
    ExploreConfig {
        max_messages: 4,
        max_depth: 16,
        max_pool: 6,
        max_states: 500_000,
        ..ExploreConfig::default()
    }
}

fn pinned_depth(proto: &dyn DataLink, cfg: &ExploreConfig, expected: usize) {
    for (engine, outcome) in [
        ("sequential", explore(proto, cfg)),
        ("parallel", ParallelExplorer::new(0).explore(proto, cfg)),
    ] {
        let ExploreOutcome::Counterexample { depth, .. } = outcome else {
            panic!("{engine}: expected counterexample for {}", proto.name());
        };
        assert_eq!(
            depth,
            expected,
            "{engine}: minimal counterexample depth moved for {}",
            proto.name()
        );
    }
}

#[test]
fn alternating_bit_falls_in_exactly_six_actions() {
    pinned_depth(&AlternatingBit::new(), &small(), 6);
}

#[test]
fn go_back_n_w1_falls_in_exactly_six_actions() {
    pinned_depth(&GoBackN::new(1), &cycle_scope(), 6);
}

#[test]
fn naive_cycle3_falls_in_exactly_eight_actions() {
    pinned_depth(&NaiveCycle::new(3), &cycle_scope(), 8);
}

#[test]
fn sequence_number_certificate_pins_its_state_count() {
    // The certificate's coverage is part of the regression surface: fewer
    // states means the search got weaker, more means the state key or the
    // action set changed.
    for outcome in [
        explore(&SequenceNumber::new(), &small()),
        ParallelExplorer::new(0).explore(&SequenceNumber::new(), &small()),
    ] {
        let ExploreOutcome::Exhausted { states } = outcome else {
            panic!("expected certificate, got {outcome:?}");
        };
        assert_eq!(states, 111, "certified state count moved");
    }
}

#[test]
fn visited_tiers_preserve_the_pinned_certificate() {
    // The same 111-state pin through the facade, on every tier: the
    // disk-spilling tier under a budget small enough to force several
    // compactions, and the probabilistic tier with an ample filter.
    // Identical counts mean tier choice cannot move the certified surface.
    for spec in [
        VisitedSpec::Ram,
        VisitedSpec::tiered(256),
        VisitedSpec::Probabilistic {
            memory_budget: 1 << 20,
        },
    ] {
        for threads in [None, Some(0)] {
            let mut facade = Explorer::new(small()).visited(spec);
            if let Some(t) = threads {
                facade = facade.parallel(t);
            }
            let outcome = facade.explore(&SequenceNumber::new());
            let ExploreOutcome::Exhausted { states } = outcome else {
                panic!("expected certificate on {spec}, got {outcome:?}");
            };
            assert_eq!(states, 111, "certified state count moved on {spec}");
        }
    }
}

#[test]
fn alternating_bit_survives_fifo_and_lossy_but_not_reorder() {
    for discipline in [Discipline::BoundedReorder(0), Discipline::LossyFifo] {
        let cfg = ExploreConfig {
            discipline,
            ..small()
        };
        let outcome = ParallelExplorer::new(0).explore(&AlternatingBit::new(), &cfg);
        assert!(
            outcome.is_certificate(),
            "expected certificate under {discipline}, got {outcome:?}"
        );
    }
    let cfg = ExploreConfig {
        discipline: Discipline::BoundedReorder(8),
        ..small()
    };
    let outcome = ParallelExplorer::new(0).explore(&AlternatingBit::new(), &cfg);
    assert!(outcome.is_counterexample(), "got {outcome:?}");
}

fn with_por(cfg: &ExploreConfig) -> ExploreConfig {
    ExploreConfig { por: true, ..*cfg }
}

#[test]
fn por_reduction_pins_its_state_counts() {
    // The reduced certificate coverage is a regression surface of its own:
    // the exact quotient sizes pin both the retirement oracle and the
    // quotient key. Fewer states means the quotient got coarser (soundness
    // risk — the differential pins below would trip), more means the
    // reduction got weaker. The full-engine counts for the same scopes are
    // 111 and 419, so these pins also lock the reduction ratios (~2.2x and
    // ~4.5x) the E13 experiment reports.
    for (cfg, expected) in [(small(), 51), (cycle_scope(), 94)] {
        for outcome in [
            explore(&SequenceNumber::new(), &with_por(&cfg)),
            ParallelExplorer::new(0).explore(&SequenceNumber::new(), &with_por(&cfg)),
        ] {
            let ExploreOutcome::Exhausted { states } = outcome else {
                panic!("expected reduced certificate, got {outcome:?}");
            };
            assert_eq!(states, expected, "reduced state count moved");
        }
    }
}

#[test]
fn por_agrees_with_full_explorer_across_catalog() {
    // The differential oracle as a pinned test: for every protocol in the
    // small-instance catalog, the reduced engine and the full engine must
    // reach the same verdict kind — and for the victims, the same shortest
    // depth and the same schedule after shrinking.
    let catalog: Vec<Box<dyn DataLink>> = vec![
        Box::new(AlternatingBit::new()),
        Box::new(NaiveCycle::new(3)),
        Box::new(SequenceNumber::new()),
        Box::new(GoBackN::new(1)),
        Box::new(GoBackN::new(2)),
        Box::new(SlidingWindow::new(2)),
        Box::new(Outnumber::new(3)),
    ];
    for proto in &catalog {
        let cfg = small();
        let reduced = ParallelExplorer::new(0).explore(proto.as_ref(), &with_por(&cfg));
        let full = ParallelExplorer::new(0).explore(proto.as_ref(), &cfg);
        match (&reduced, &full) {
            (
                ExploreOutcome::Counterexample {
                    depth: dr,
                    schedule: sr,
                    ..
                },
                ExploreOutcome::Counterexample {
                    depth: df,
                    schedule: sf,
                    ..
                },
            ) => {
                assert_eq!(
                    dr,
                    df,
                    "{}: cex depth differs reduced vs full",
                    proto.name()
                );
                let shrunk_r = shrink(proto.as_ref(), sr).expect("reduced cex shrinks");
                let shrunk_f = shrink(proto.as_ref(), sf).expect("full cex shrinks");
                assert_eq!(
                    shrunk_r.schedule,
                    shrunk_f.schedule,
                    "{}: shrunk attack scripts differ reduced vs full",
                    proto.name()
                );
            }
            (ExploreOutcome::Exhausted { .. }, ExploreOutcome::Exhausted { .. }) => {}
            _ => panic!(
                "{}: verdicts differ (reduced {reduced:?}, full {full:?})",
                proto.name()
            ),
        }
    }
}

#[test]
fn por_keeps_corrupted_start_phantoms_reachable() {
    // A corrupted start parks junk the receiver will happily accept: the
    // phantom delivery sits at the very front of the search (depth 3 for
    // seeds 0 and 4), exactly where an over-eager reduction would prune
    // it — the junk is stale-looking but NOT retired (its header is still
    // in expectation), so the sleep rule and the quotient must both leave
    // it alone. Seed 42 pins a deeper corrupted victim, seed 1 a corrupted
    // scope that still certifies.
    for (seed, expected_depth) in [(0, Some(3)), (4, Some(3)), (42, Some(7)), (1, None)] {
        let cfg = ExploreConfig {
            corrupt_start: Some(seed),
            ..small()
        };
        let reduced = ParallelExplorer::new(0).explore(&SequenceNumber::new(), &with_por(&cfg));
        let full = ParallelExplorer::new(0).explore(&SequenceNumber::new(), &cfg);
        match expected_depth {
            Some(d) => {
                for (engine, outcome) in [("reduced", &reduced), ("full", &full)] {
                    let ExploreOutcome::Counterexample { depth, .. } = outcome else {
                        panic!("{engine}: expected phantom cex at corrupt seed {seed}");
                    };
                    assert_eq!(
                        *depth, d,
                        "{engine}: phantom depth moved at corrupt seed {seed}"
                    );
                }
            }
            None => {
                assert!(reduced.is_certificate(), "seed {seed}: {reduced:?}");
                assert!(full.is_certificate(), "seed {seed}: {full:?}");
            }
        }
    }
}

/// Large-scope certification: slow, run by the large-scope CI job via
/// `cargo test --release -- --ignored` (half a minute in release, minutes
/// in debug).
#[test]
#[ignore = "large scope; run with --release -- --ignored"]
fn sequence_number_certified_at_large_scope() {
    let cfg = ExploreConfig {
        max_messages: 10,
        max_depth: 30,
        max_pool: 12,
        max_states: 20_000_000,
        ..ExploreConfig::default()
    };
    let outcome = ParallelExplorer::new(0).explore(&SequenceNumber::new(), &cfg);
    let ExploreOutcome::Exhausted { states } = outcome else {
        panic!("expected exhaustive certificate, got {outcome:?}");
    };
    // The exact coverage doubles as a determinism pin at scale.
    assert_eq!(states, 1_125_331);
}

#[test]
fn por_certifies_the_large_scope_in_tier_one() {
    // The scope the ignored release-only test above spends ~30 seconds
    // covering (1,125,331 full states) certifies in 834 quotient states —
    // a 1349x reduction, fast enough to pin in every tier-1 run, on both
    // engines. This is the reduction's headline: the budget that bought
    // one large certificate now buys three orders of magnitude of scope.
    let cfg = ExploreConfig {
        max_messages: 10,
        max_depth: 30,
        max_pool: 12,
        max_states: 20_000_000,
        por: true,
        ..ExploreConfig::default()
    };
    for outcome in [
        explore(&SequenceNumber::new(), &cfg),
        ParallelExplorer::new(0).explore(&SequenceNumber::new(), &cfg),
    ] {
        let ExploreOutcome::Exhausted { states } = outcome else {
            panic!("expected reduced certificate, got {outcome:?}");
        };
        assert_eq!(states, 834, "large-scope quotient coverage moved");
    }
}
