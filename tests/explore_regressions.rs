//! Regression pins for the exploration engines.
//!
//! The shortest-counterexample depths below are ground truth for the known
//! victims (they match the E11 table in `EXPERIMENTS.md`); a change in any
//! of them means the search order, the action semantics, or a protocol
//! changed behaviour. Both engines are pinned so a regression in either is
//! attributed directly.

use nonfifo::adversary::{explore, Discipline, ExploreConfig, ExploreOutcome, ParallelExplorer};
use nonfifo::protocols::{AlternatingBit, DataLink, GoBackN, NaiveCycle, SequenceNumber};

fn small() -> ExploreConfig {
    ExploreConfig {
        max_messages: 3,
        max_depth: 12,
        max_pool: 5,
        max_states: 500_000,
        ..ExploreConfig::default()
    }
}

fn cycle_scope() -> ExploreConfig {
    ExploreConfig {
        max_messages: 4,
        max_depth: 16,
        max_pool: 6,
        max_states: 500_000,
        ..ExploreConfig::default()
    }
}

fn pinned_depth(proto: &dyn DataLink, cfg: &ExploreConfig, expected: usize) {
    for (engine, outcome) in [
        ("sequential", explore(proto, cfg)),
        ("parallel", ParallelExplorer::new(0).explore(proto, cfg)),
    ] {
        let ExploreOutcome::Counterexample { depth, .. } = outcome else {
            panic!("{engine}: expected counterexample for {}", proto.name());
        };
        assert_eq!(
            depth,
            expected,
            "{engine}: minimal counterexample depth moved for {}",
            proto.name()
        );
    }
}

#[test]
fn alternating_bit_falls_in_exactly_six_actions() {
    pinned_depth(&AlternatingBit::new(), &small(), 6);
}

#[test]
fn go_back_n_w1_falls_in_exactly_six_actions() {
    pinned_depth(&GoBackN::new(1), &cycle_scope(), 6);
}

#[test]
fn naive_cycle3_falls_in_exactly_eight_actions() {
    pinned_depth(&NaiveCycle::new(3), &cycle_scope(), 8);
}

#[test]
fn sequence_number_certificate_pins_its_state_count() {
    // The certificate's coverage is part of the regression surface: fewer
    // states means the search got weaker, more means the state key or the
    // action set changed.
    for outcome in [
        explore(&SequenceNumber::new(), &small()),
        ParallelExplorer::new(0).explore(&SequenceNumber::new(), &small()),
    ] {
        let ExploreOutcome::Exhausted { states } = outcome else {
            panic!("expected certificate, got {outcome:?}");
        };
        assert_eq!(states, 111, "certified state count moved");
    }
}

#[test]
fn alternating_bit_survives_fifo_and_lossy_but_not_reorder() {
    for discipline in [Discipline::BoundedReorder(0), Discipline::LossyFifo] {
        let cfg = ExploreConfig {
            discipline,
            ..small()
        };
        let outcome = ParallelExplorer::new(0).explore(&AlternatingBit::new(), &cfg);
        assert!(
            outcome.is_certificate(),
            "expected certificate under {discipline}, got {outcome:?}"
        );
    }
    let cfg = ExploreConfig {
        discipline: Discipline::BoundedReorder(8),
        ..small()
    };
    let outcome = ParallelExplorer::new(0).explore(&AlternatingBit::new(), &cfg);
    assert!(outcome.is_counterexample(), "got {outcome:?}");
}

/// Large-scope certification: slow, run by the large-scope CI job via
/// `cargo test --release -- --ignored` (half a minute in release, minutes
/// in debug).
#[test]
#[ignore = "large scope; run with --release -- --ignored"]
fn sequence_number_certified_at_large_scope() {
    let cfg = ExploreConfig {
        max_messages: 10,
        max_depth: 30,
        max_pool: 12,
        max_states: 20_000_000,
        ..ExploreConfig::default()
    };
    let outcome = ParallelExplorer::new(0).explore(&SequenceNumber::new(), &cfg);
    let ExploreOutcome::Exhausted { states } = outcome else {
        panic!("expected exhaustive certificate, got {outcome:?}");
    };
    // The exact coverage doubles as a determinism pin at scale.
    assert_eq!(states, 1_125_331);
}
