//! Point-in-time metric snapshots with a stable JSON schema.
//!
//! The schema is versioned and pinned ([`SCHEMA_VERSION`]): CI artifacts
//! and `BENCH_baseline.json` are compared across commits, so any change to
//! the document shape must bump the version and keep
//! [`MetricsSnapshot::from_json`] accepting what it wrote before.

use crate::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::fmt;

/// The pinned schema version emitted in every snapshot document.
pub const SCHEMA_VERSION: u64 = 1;

/// A gauge's exported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The value at snapshot time.
    pub value: u64,
    /// The largest value ever set.
    pub high_water: u64,
}

/// A histogram's exported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty power-of-two buckets as `(inclusive upper bound, count)`,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything a [`Registry`](crate::Registry) knows, frozen.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The schema version of the document ([`SCHEMA_VERSION`] when written
    /// by this crate).
    pub schema_version: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge states by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Derived scalar values (rates, ratios) by name.
    pub values: BTreeMap<String, f64>,
}

/// Why a snapshot document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is JSON but not a snapshot of a supported schema.
    Schema(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "{e}"),
            SnapshotError::Schema(msg) => write!(f, "snapshot schema error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        SnapshotError::Json(e)
    }
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Schema(msg.into()))
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a compact, key-sorted JSON document.
    pub fn to_json(&self) -> String {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Uint(v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, g)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("value".into(), Json::Uint(g.value)),
                            ("high_water".into(), Json::Uint(g.high_water)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::Uint(h.count)),
                            ("sum".into(), Json::Uint(h.sum)),
                            ("min".into(), Json::Uint(h.min)),
                            ("max".into(), Json::Uint(h.max)),
                            (
                                "buckets".into(),
                                Json::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|&(le, n)| {
                                            Json::Arr(vec![Json::Uint(le), Json::Uint(n)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let values = Json::Obj(
            self.values
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Float(v)))
                .collect(),
        );
        Json::Obj(vec![
            ("schema_version".into(), Json::Uint(self.schema_version)),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
            ("values".into(), values),
        ])
        .to_string()
    }

    /// Parses a snapshot document written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, documents without a `schema_version`, and
    /// versions newer than this crate understands.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, SnapshotError> {
        let doc = Json::parse(text)?;
        let version = match doc.get("schema_version").and_then(Json::as_u64) {
            Some(v) => v,
            None => return schema_err("missing schema_version"),
        };
        if version == 0 || version > SCHEMA_VERSION {
            return schema_err(format!(
                "unsupported schema_version {version} (this build reads ≤ {SCHEMA_VERSION})"
            ));
        }
        let mut snap = MetricsSnapshot {
            schema_version: version,
            ..MetricsSnapshot::default()
        };
        if let Some(fields) = doc.get("counters").and_then(Json::as_obj) {
            for (k, v) in fields {
                match v.as_u64() {
                    Some(n) => snap.counters.insert(k.clone(), n),
                    None => return schema_err(format!("counter '{k}' is not a u64")),
                };
            }
        }
        if let Some(fields) = doc.get("gauges").and_then(Json::as_obj) {
            for (k, v) in fields {
                let (value, high_water) = match (
                    v.get("value").and_then(Json::as_u64),
                    v.get("high_water").and_then(Json::as_u64),
                ) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return schema_err(format!("gauge '{k}' is malformed")),
                };
                snap.gauges
                    .insert(k.clone(), GaugeSnapshot { value, high_water });
            }
        }
        if let Some(fields) = doc.get("histograms").and_then(Json::as_obj) {
            for (k, v) in fields {
                snap.histograms.insert(k.clone(), parse_histogram(k, v)?);
            }
        }
        if let Some(fields) = doc.get("values").and_then(Json::as_obj) {
            for (k, v) in fields {
                match v.as_f64() {
                    Some(x) => snap.values.insert(k.clone(), x),
                    None => return schema_err(format!("value '{k}' is not a number")),
                };
            }
        }
        Ok(snap)
    }

    /// Renders the snapshot as a human-readable summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .chain(self.values.keys())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max("metric".len());
        out.push_str(&format!("{:<width$}  value\n", "metric"));
        out.push_str(&format!("{:-<width$}  {:-<24}\n", "", ""));
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, g) in &self.gauges {
            out.push_str(&format!(
                "{k:<width$}  {} (high water {})\n",
                g.value, g.high_water
            ));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  n={} mean={:.2} min={} max={}\n",
                h.count,
                h.mean(),
                h.min,
                h.max
            ));
        }
        for (k, v) in &self.values {
            out.push_str(&format!("{k:<width$}  {v:.2}\n"));
        }
        out
    }
}

fn parse_histogram(name: &str, v: &Json) -> Result<HistogramSnapshot, SnapshotError> {
    let field = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| SnapshotError::Schema(format!("histogram '{name}' missing {key}")))
    };
    let mut buckets = Vec::new();
    if let Some(items) = v.get("buckets").and_then(Json::as_arr) {
        for item in items {
            match item.as_arr() {
                Some([le, n]) => match (le.as_u64(), n.as_u64()) {
                    (Some(le), Some(n)) => buckets.push((le, n)),
                    _ => return schema_err(format!("histogram '{name}' has a bad bucket")),
                },
                _ => return schema_err(format!("histogram '{name}' has a bad bucket")),
            }
        }
    }
    Ok(HistogramSnapshot {
        count: field("count")?,
        sum: field("sum")?,
        min: field("min")?,
        max: field("max")?,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn populated() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("chan.fwd.sends").add(12);
        reg.counter("chan.fwd.drops").add(3);
        let g = reg.gauge("sim.fwd.in_transit");
        g.set(9);
        g.set(4);
        let h = reg.histogram("sim.packets_per_message");
        for v in [1, 2, 2, 5] {
            h.record(v);
        }
        reg.set_value("explore.states_per_sec", 123456.75);
        reg.snapshot()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = populated();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // And the re-serialization is byte-identical (stable schema).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn schema_version_is_pinned_and_checked() {
        let snap = populated();
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        assert!(snap.to_json().contains("\"schema_version\":1"));
        let future = snap
            .to_json()
            .replacen("\"schema_version\":1", "\"schema_version\":999", 1);
        assert!(matches!(
            MetricsSnapshot::from_json(&future),
            Err(SnapshotError::Schema(_))
        ));
        assert!(matches!(
            MetricsSnapshot::from_json("{}"),
            Err(SnapshotError::Schema(_))
        ));
        assert!(matches!(
            MetricsSnapshot::from_json("not json"),
            Err(SnapshotError::Json(_))
        ));
    }

    #[test]
    fn summary_mentions_every_metric() {
        let snap = populated();
        let table = snap.summary();
        for name in [
            "chan.fwd.sends",
            "sim.fwd.in_transit",
            "sim.packets_per_message",
            "explore.states_per_sec",
        ] {
            assert!(table.contains(name), "summary missing {name}:\n{table}");
        }
        assert!(table.contains("high water 9"));
    }
}
