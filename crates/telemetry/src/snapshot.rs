//! Point-in-time metric snapshots with a stable JSON schema.
//!
//! The schema is versioned and pinned ([`SCHEMA_VERSION`]): CI artifacts
//! and `BENCH_baseline.json` are compared across commits, so any change to
//! the document shape must bump the version and keep
//! [`MetricsSnapshot::from_json`] accepting what it wrote before.

use crate::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::fmt;

/// The pinned schema version emitted in every snapshot document.
pub const SCHEMA_VERSION: u64 = 1;

/// A gauge's exported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The value at snapshot time.
    pub value: u64,
    /// The largest value ever set.
    pub high_water: u64,
}

/// A histogram's exported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty power-of-two buckets as `(inclusive upper bound, count)`,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything a [`Registry`](crate::Registry) knows, frozen.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The schema version of the document ([`SCHEMA_VERSION`] when written
    /// by this crate).
    pub schema_version: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge states by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Derived scalar values (rates, ratios) by name.
    pub values: BTreeMap<String, f64>,
}

/// Why a snapshot document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is JSON but not a snapshot of a supported schema.
    Schema(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "{e}"),
            SnapshotError::Schema(msg) => write!(f, "snapshot schema error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        SnapshotError::Json(e)
    }
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Schema(msg.into()))
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a compact, key-sorted JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The snapshot as a [`Json`] value — for callers that embed snapshots
    /// inside a larger document (the campaign result cache) rather than
    /// writing a standalone file.
    pub fn to_json_value(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Uint(v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, g)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("value".into(), Json::Uint(g.value)),
                            ("high_water".into(), Json::Uint(g.high_water)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::Uint(h.count)),
                            ("sum".into(), Json::Uint(h.sum)),
                            ("min".into(), Json::Uint(h.min)),
                            ("max".into(), Json::Uint(h.max)),
                            (
                                "buckets".into(),
                                Json::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|&(le, n)| {
                                            Json::Arr(vec![Json::Uint(le), Json::Uint(n)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let values = Json::Obj(
            self.values
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Float(v)))
                .collect(),
        );
        Json::Obj(vec![
            ("schema_version".into(), Json::Uint(self.schema_version)),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
            ("values".into(), values),
        ])
    }

    /// Parses a snapshot document written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, documents without a `schema_version`, and
    /// versions newer than this crate understands.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, SnapshotError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Parses a snapshot from an already-parsed [`Json`] value (the inverse
    /// of [`to_json_value`](Self::to_json_value)).
    ///
    /// # Errors
    ///
    /// Rejects documents without a `schema_version` and versions newer than
    /// this crate understands.
    pub fn from_json_value(doc: &Json) -> Result<MetricsSnapshot, SnapshotError> {
        let version = match doc.get("schema_version").and_then(Json::as_u64) {
            Some(v) => v,
            None => return schema_err("missing schema_version"),
        };
        if version == 0 || version > SCHEMA_VERSION {
            return schema_err(format!(
                "unsupported schema_version {version} (this build reads ≤ {SCHEMA_VERSION})"
            ));
        }
        let mut snap = MetricsSnapshot {
            schema_version: version,
            ..MetricsSnapshot::default()
        };
        if let Some(fields) = doc.get("counters").and_then(Json::as_obj) {
            for (k, v) in fields {
                match v.as_u64() {
                    Some(n) => snap.counters.insert(k.clone(), n),
                    None => return schema_err(format!("counter '{k}' is not a u64")),
                };
            }
        }
        if let Some(fields) = doc.get("gauges").and_then(Json::as_obj) {
            for (k, v) in fields {
                let (value, high_water) = match (
                    v.get("value").and_then(Json::as_u64),
                    v.get("high_water").and_then(Json::as_u64),
                ) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return schema_err(format!("gauge '{k}' is malformed")),
                };
                snap.gauges
                    .insert(k.clone(), GaugeSnapshot { value, high_water });
            }
        }
        if let Some(fields) = doc.get("histograms").and_then(Json::as_obj) {
            for (k, v) in fields {
                snap.histograms.insert(k.clone(), parse_histogram(k, v)?);
            }
        }
        if let Some(fields) = doc.get("values").and_then(Json::as_obj) {
            for (k, v) in fields {
                match v.as_f64() {
                    Some(x) => snap.values.insert(k.clone(), x),
                    None => return schema_err(format!("value '{k}' is not a number")),
                };
            }
        }
        Ok(snap)
    }

    /// Renders the snapshot as a human-readable summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .chain(self.values.keys())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max("metric".len());
        out.push_str(&format!("{:<width$}  value\n", "metric"));
        out.push_str(&format!("{:-<width$}  {:-<24}\n", "", ""));
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, g) in &self.gauges {
            out.push_str(&format!(
                "{k:<width$}  {} (high water {})\n",
                g.value, g.high_water
            ));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  n={} mean={:.2} min={} max={}\n",
                h.count,
                h.mean(),
                h.min,
                h.max
            ));
        }
        for (k, v) in &self.values {
            out.push_str(&format!("{k:<width$}  {v:.2}\n"));
        }
        out
    }

    /// Folds `other` into `self`, metric by metric, as if both snapshots
    /// had been recorded into one registry:
    ///
    /// - counters add;
    /// - gauges keep the maximum of both `value`s and `high_water`s (the
    ///   only merge that is commutative and still means "high water");
    /// - histograms add `count`/`sum`, widen `min`/`max`, and merge buckets
    ///   by upper bound;
    /// - derived `values` are overwritten by `other`'s (last write wins —
    ///   merge in a deterministic order).
    ///
    /// Every rule except `values` is commutative and associative, so
    /// folding per-run snapshots in run order yields the same aggregate on
    /// any thread count.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(GaugeSnapshot {
                value: 0,
                high_water: 0,
            });
            slot.value = slot.value.max(g.value);
            slot.high_water = slot.high_water.max(g.high_water);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
                Some(slot) => {
                    slot.min = if slot.count == 0 {
                        h.min
                    } else if h.count == 0 {
                        slot.min
                    } else {
                        slot.min.min(h.min)
                    };
                    slot.max = slot.max.max(h.max);
                    slot.count += h.count;
                    slot.sum += h.sum;
                    let mut buckets: BTreeMap<u64, u64> = slot.buckets.iter().copied().collect();
                    for &(le, n) in &h.buckets {
                        *buckets.entry(le).or_insert(0) += n;
                    }
                    slot.buckets = buckets.into_iter().collect();
                }
            }
        }
        for (k, &v) in &other.values {
            self.values.insert(k.clone(), v);
        }
    }
}

fn parse_histogram(name: &str, v: &Json) -> Result<HistogramSnapshot, SnapshotError> {
    let field = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| SnapshotError::Schema(format!("histogram '{name}' missing {key}")))
    };
    let mut buckets = Vec::new();
    if let Some(items) = v.get("buckets").and_then(Json::as_arr) {
        for item in items {
            match item.as_arr() {
                Some([le, n]) => match (le.as_u64(), n.as_u64()) {
                    (Some(le), Some(n)) => buckets.push((le, n)),
                    _ => return schema_err(format!("histogram '{name}' has a bad bucket")),
                },
                _ => return schema_err(format!("histogram '{name}' has a bad bucket")),
            }
        }
    }
    Ok(HistogramSnapshot {
        count: field("count")?,
        sum: field("sum")?,
        min: field("min")?,
        max: field("max")?,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn populated() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("chan.fwd.sends").add(12);
        reg.counter("chan.fwd.drops").add(3);
        let g = reg.gauge("sim.fwd.in_transit");
        g.set(9);
        g.set(4);
        let h = reg.histogram("sim.packets_per_message");
        for v in [1, 2, 2, 5] {
            h.record(v);
        }
        reg.set_value("explore.states_per_sec", 123456.75);
        reg.snapshot()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = populated();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // And the re-serialization is byte-identical (stable schema).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn schema_version_is_pinned_and_checked() {
        let snap = populated();
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        assert!(snap.to_json().contains("\"schema_version\":1"));
        let future = snap
            .to_json()
            .replacen("\"schema_version\":1", "\"schema_version\":999", 1);
        assert!(matches!(
            MetricsSnapshot::from_json(&future),
            Err(SnapshotError::Schema(_))
        ));
        assert!(matches!(
            MetricsSnapshot::from_json("{}"),
            Err(SnapshotError::Schema(_))
        ));
        assert!(matches!(
            MetricsSnapshot::from_json("not json"),
            Err(SnapshotError::Json(_))
        ));
    }

    #[test]
    fn json_value_round_trip_matches_text_round_trip() {
        let snap = populated();
        let value = snap.to_json_value();
        assert_eq!(value.to_string(), snap.to_json());
        assert_eq!(MetricsSnapshot::from_json_value(&value).unwrap(), snap);
    }

    #[test]
    fn merge_adds_counters_and_widens_gauges_and_histograms() {
        let mut a = populated();
        let b = populated();
        a.merge_from(&b);
        assert_eq!(a.counters["chan.fwd.sends"], 24);
        // Gauges take the max, not the sum.
        assert_eq!(a.gauges["sim.fwd.in_transit"].value, 4);
        assert_eq!(a.gauges["sim.fwd.in_transit"].high_water, 9);
        let h = &a.histograms["sim.packets_per_message"];
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 20);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 5);
        // Buckets merged by upper bound: each count doubled.
        for &(le, n) in &h.buckets {
            let orig = b.histograms["sim.packets_per_message"]
                .buckets
                .iter()
                .find(|&&(l, _)| l == le)
                .unwrap()
                .1;
            assert_eq!(n, 2 * orig);
        }
        // Derived values: last write wins.
        assert_eq!(a.values["explore.states_per_sec"], 123456.75);
    }

    #[test]
    fn merge_into_empty_is_identity_and_order_independent() {
        let b = populated();
        let mut empty = MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            ..MetricsSnapshot::default()
        };
        empty.merge_from(&b);
        assert_eq!(empty, b);

        // Commutativity on the structural metrics (values excluded by
        // construction: both sides carry the same derived values here).
        let reg = Registry::new();
        reg.counter("chan.fwd.sends").add(5);
        reg.gauge("sim.fwd.in_transit").set(30);
        reg.histogram("sim.packets_per_message").record(64);
        let c = reg.snapshot();
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut cb = c.clone();
        cb.merge_from(&b);
        cb.values = bc.values.clone();
        assert_eq!(bc, cb);
    }

    #[test]
    fn summary_mentions_every_metric() {
        let snap = populated();
        let table = snap.summary();
        for name in [
            "chan.fwd.sends",
            "sim.fwd.in_transit",
            "sim.packets_per_message",
            "explore.states_per_sec",
        ] {
            assert!(table.contains(name), "summary missing {name}:\n{table}");
        }
        assert!(table.contains("high water 9"));
    }
}
