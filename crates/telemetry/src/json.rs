//! A minimal JSON value, writer, and parser.
//!
//! The workspace is dependency-free by policy, so the telemetry layer
//! carries its own JSON support: enough of RFC 8259 to round-trip metrics
//! snapshots and emit Chrome `trace_events` files. Integers are kept exact
//! (`u64`/`i64` variants) rather than coerced through `f64`, so counter
//! values survive a round-trip bit-for-bit.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (they are association lists, not maps)
/// so emitted documents are stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    Uint(u64),
    /// A negative integer, kept exact.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(n) => Some(n),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Uint(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object's fields, in document order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

/// Serializes the value as compact JSON.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_json(&mut out, self);
        f.write_str(&out)
    }
}

fn write_json(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Uint(n) => out.push_str(&n.to_string()),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Float(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip formatting; force a decimal
                // point so the value parses back as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_json(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs (rare in metric names, but
                            // round-trips must not corrupt them).
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            at: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for doc in ["null", "true", "false", "0", "18446744073709551615", "-7"] {
            let v = Json::parse(doc).unwrap();
            assert_eq!(v.to_string(), doc);
        }
    }

    #[test]
    fn large_u64_survives_exactly() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let v = Json::Float(2.0);
        assert_eq!(v.to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn objects_preserve_order() {
        let doc = r#"{"z":1,"a":[2,3],"m":{"k":"v"}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.to_string(), doc);
        assert_eq!(v.get("z").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{1}π".to_string());
        let parsed = Json::parse(&original.to_string()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
