//! The lock-free metrics registry.
//!
//! Registration (name → cell) takes a mutex once per metric; recording is a
//! relaxed atomic op on a shared cell, so the parallel explorer's worker
//! threads update counters without contending on anything but the cache
//! line. Cells are never removed: a handle stays valid for the life of the
//! registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, SCHEMA_VERSION};

/// Number of power-of-two histogram buckets: bucket `i` holds values whose
/// bit length is `i` (bucket 0 holds exactly the value 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotone counter handle. Cheap to clone; clones share the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
    high_water: AtomicU64,
}

/// A gauge handle: a current value plus the high-water mark it has reached.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Sets the current value, advancing the high-water mark if exceeded.
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The largest value ever set.
    pub fn high_water(&self) -> u64 {
        self.0.high_water.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram handle with power-of-two buckets plus exact count/sum/min/max.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCell>);

/// The bucket index for a recorded value: its bit length.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (`0` for bucket 0, else `2^i − 1`).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        let cell = &*self.0;
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.min.fetch_min(v, Ordering::Relaxed);
        cell.max.fetch_max(v, Ordering::Relaxed);
        cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let cell = &*self.0;
        let count = cell.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: cell.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                cell.min.load(Ordering::Relaxed)
            },
            max: cell.max.load(Ordering::Relaxed),
            buckets: cell
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper(i), n))
                })
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    /// Derived scalar measurements (rates, ratios) set at export time.
    values: BTreeMap<String, f64>,
}

/// The metrics registry: named counters, gauges, histograms, and derived
/// values, snapshot-able to a stable-schema JSON document.
///
/// Share one registry across threads with `Arc<Registry>`; handles returned
/// by [`counter`](Registry::counter) & co. record lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(GaugeCell::default())))
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(HistogramCell::default())))
            .clone()
    }

    /// Sets the derived value named `name` (rates, ratios — quantities
    /// computed at export time rather than accumulated).
    pub fn set_value(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.values.insert(name.to_string(), value);
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| {
                    (
                        k.clone(),
                        GaugeSnapshot {
                            value: g.get(),
                            high_water: g.high_water(),
                        },
                    )
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            values: inner.values.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x").get(), 5, "handles share the cell");
    }

    #[test]
    fn gauge_tracks_high_water() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(3);
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 9);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(2), 3);
        let reg = Registry::new();
        let h = reg.histogram("sizes");
        for v in [0, 1, 2, 3, 7] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms["sizes"];
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 13);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 7);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1)]);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = reg.counter("n");
                let h = reg.histogram("h");
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i % 16);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("n").get(), 8000);
        assert_eq!(reg.histogram("h").count(), 8000);
    }
}
