//! A structured trace-event sink with Chrome `trace_events` export.
//!
//! Spans bracket the simulator's rounds and deliveries and the explorer's
//! per-depth levels; instants mark point events (violations, faults). The
//! output loads directly into `chrome://tracing` / Perfetto as a
//! JSON-array-format trace.
//!
//! Timestamps come from a monotonic clock relative to sink creation, so
//! traces are for *looking at*, never part of any deterministic artifact
//! (reports and fingerprints must not read them).

use crate::json::Json;
use std::sync::Mutex;
use std::time::Instant;

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (e.g. `round`, `level 3`).
    pub name: String,
    /// Category (e.g. `sim`, `explore`).
    pub cat: String,
    /// Chrome phase: `X` for complete spans, `i` for instants.
    pub phase: char,
    /// Microseconds since the sink was created.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Logical thread lane the event renders on.
    pub tid: u64,
    /// Numeric arguments attached to the event.
    pub args: Vec<(String, u64)>,
}

/// A thread-safe trace sink.
#[derive(Debug)]
pub struct TraceSink {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// Creates an empty sink; all timestamps are relative to this moment.
    pub fn new() -> Self {
        TraceSink {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Opens a span; the span is recorded when the guard drops.
    pub fn span(&self, cat: &str, name: &str) -> SpanGuard<'_> {
        self.span_with_args(cat, name, Vec::new())
    }

    /// Opens a span carrying numeric arguments.
    pub fn span_with_args(&self, cat: &str, name: &str, args: Vec<(String, u64)>) -> SpanGuard<'_> {
        SpanGuard {
            sink: self,
            name: name.to_string(),
            cat: cat.to_string(),
            args,
            began_us: self.now_us(),
        }
    }

    /// Records a point event.
    pub fn instant(&self, cat: &str, name: &str, args: Vec<(String, u64)>) {
        let ts_us = self.now_us();
        self.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            phase: 'i',
            ts_us,
            dur_us: 0,
            tid: 0,
            args,
        });
    }

    fn push(&self, event: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the sink as a Chrome `trace_events` JSON document
    /// (object format: `{"traceEvents": [...]}`).
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock().expect("trace sink poisoned");
        let items: Vec<Json> = events
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".into(), Json::Str(e.name.clone())),
                    ("cat".into(), Json::Str(e.cat.clone())),
                    ("ph".into(), Json::Str(e.phase.to_string())),
                    ("ts".into(), Json::Uint(e.ts_us)),
                    ("pid".into(), Json::Uint(1)),
                    ("tid".into(), Json::Uint(e.tid)),
                ];
                if e.phase == 'X' {
                    fields.push(("dur".into(), Json::Uint(e.dur_us)));
                }
                if !e.args.is_empty() {
                    fields.push((
                        "args".into(),
                        Json::Obj(
                            e.args
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Uint(*v)))
                                .collect(),
                        ),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![("traceEvents".into(), Json::Arr(items))]).to_string()
    }
}

/// An open span; records a complete (`ph: "X"`) event when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: &'a TraceSink,
    name: String,
    cat: String,
    args: Vec<(String, u64)>,
    began_us: u64,
}

impl SpanGuard<'_> {
    /// Attaches a numeric argument to the span before it closes.
    pub fn arg(&mut self, key: &str, value: u64) {
        self.args.push((key.to_string(), value));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let ended_us = self.sink.now_us();
        self.sink.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: std::mem::take(&mut self.cat),
            phase: 'X',
            ts_us: self.began_us,
            dur_us: ended_us.saturating_sub(self.began_us),
            tid: 0,
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_export_as_chrome_trace() {
        let sink = TraceSink::new();
        {
            let mut span = sink.span("sim", "round");
            span.arg("deliveries", 4);
            sink.instant("sim", "violation", vec![("rm".into(), 2)]);
        }
        assert_eq!(sink.len(), 2);
        let doc = Json::parse(&sink.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        // The instant was recorded first (spans record on drop).
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("round"));
        assert!(events[1].get("dur").and_then(Json::as_u64).is_some());
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("deliveries"))
                .and_then(Json::as_u64),
            Some(4)
        );
    }
}
