//! Telemetry for the nonfifo reproduction: metrics + structured tracing.
//!
//! The paper's theorems are statements about measured quantities — headers
//! used, packets in transit, packets-sent-per-message. This crate gives
//! every simulation and exploration run a first-class way to record those
//! quantities and export them as stable artifacts:
//!
//! * [`Registry`] — named counters, gauges (with high-water marks), and
//!   power-of-two histograms. Registration takes a lock once per metric;
//!   recording is relaxed atomics, so the parallel explorer's workers
//!   record without synchronizing.
//! * [`MetricsSnapshot`] — a frozen registry with a pinned, versioned JSON
//!   schema ([`SCHEMA_VERSION`]) and a human summary table. What
//!   `--metrics-out` writes and the CI bench-smoke guard reads.
//! * [`TraceSink`] — spans (rounds, deliveries, explorer levels) and
//!   instants, exported as a Chrome `trace_events` document for
//!   `chrome://tracing` / Perfetto. What `--trace-out` writes.
//! * [`Json`] — the zero-dependency JSON value/parser both artifacts are
//!   built on (the workspace has no serde by policy).
//!
//! Telemetry is always optional at the call site and never feeds back into
//! simulation state: fingerprints, explorer reports, and experiment tables
//! are byte-identical with telemetry on or off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod snapshot;
mod trace;

pub use json::{Json, JsonError};
pub use metrics::{
    bucket_of, bucket_upper, Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS,
};
pub use snapshot::{
    GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, SnapshotError, SCHEMA_VERSION,
};
pub use trace::{SpanGuard, TraceEvent, TraceSink};
