//! Benchmark harness for the `nonfifo` reproduction of Mansour & Schieber
//! (PODC 1989).
//!
//! Two entry points:
//!
//! - `cargo run -p nonfifo-bench --bin report [-- --exp eN]` regenerates the
//!   experiment tables of `EXPERIMENTS.md` (E1–E9 per `DESIGN.md` §4).
//! - `cargo bench -p nonfifo-bench` runs the micro-benchmarks: the
//!   falsifier constructions (`falsify_mf`, `falsify_pf`), the
//!   probabilistic growth runs (`probabilistic`), boundness probing
//!   (`boundness`), raw channel throughput (`channels`), the
//!   window-vs-reorder ablation (`ablation_window`), exploration
//!   throughput, sequential vs parallel (`explore_par`), and the campaign
//!   matrix runner with its fingerprint cache (`campaign`).
//!
//! The benches run on the self-contained [`harness`] (median-of-samples
//! wall-clock timing) so the workspace needs no external benchmarking
//! crate; absolute numbers are indicative, cross-run deltas on one machine
//! are the signal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness {
    //! A minimal wall-clock micro-benchmark harness.
    //!
    //! Each benchmark runs `samples` times after one warm-up iteration; the
    //! harness reports the median, minimum, and maximum sample. No statistics
    //! beyond that — the benches here compare orders of magnitude (linear vs
    //! exponential cost curves), not nanosecond deltas.

    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Number of timed samples per benchmark.
    pub const DEFAULT_SAMPLES: u32 = 5;

    fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns >= 1_000_000_000 {
            format!("{:.3} s", d.as_secs_f64())
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} µs", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    }

    /// A named group of benchmarks (mirrors the criterion group concept so
    /// bench sources read the same way).
    pub struct Group {
        title: String,
        samples: u32,
    }

    impl Group {
        /// Starts a group with [`DEFAULT_SAMPLES`] samples per bench.
        pub fn new(title: &str) -> Self {
            println!("\n== {title}");
            Group {
                title: title.to_string(),
                samples: DEFAULT_SAMPLES,
            }
        }

        /// Overrides the per-bench sample count (for slow workloads).
        pub fn samples(mut self, samples: u32) -> Self {
            self.samples = samples.max(1);
            self
        }

        /// Times `f` and prints one result line; the closure's return value
        /// is black-boxed so the workload is not optimised away.
        pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
            black_box(f()); // warm-up, also surfaces panics with a clean line
            let mut times: Vec<Duration> = (0..self.samples)
                .map(|_| {
                    let start = Instant::now();
                    black_box(f());
                    start.elapsed()
                })
                .collect();
            times.sort();
            let median = times[times.len() / 2];
            println!(
                "{}/{name}: median {} (min {}, max {}, n={})",
                self.title,
                fmt_duration(median),
                fmt_duration(times[0]),
                fmt_duration(times[times.len() - 1]),
                self.samples
            );
        }
    }
}
