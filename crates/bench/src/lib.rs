//! Benchmark harness for the `nonfifo` reproduction of Mansour & Schieber
//! (PODC 1989).
//!
//! Two entry points:
//!
//! - `cargo run -p nonfifo-bench --bin report [-- --exp eN]` regenerates the
//!   experiment tables of `EXPERIMENTS.md` (E1–E9 per `DESIGN.md` §4).
//! - `cargo bench -p nonfifo-bench` runs the criterion benches: the
//!   falsifier constructions (`falsify_mf`, `falsify_pf`), the
//!   probabilistic growth runs (`probabilistic`), boundness probing
//!   (`boundness`), raw channel throughput (`channels`), and the
//!   window-vs-reorder ablation (`ablation_window`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
