//! `bench_guard` — the CI throughput-regression tripwire.
//!
//! Compares `explore.states_per_sec` between a freshly exported metrics
//! snapshot (`nonfifo explore … --metrics-out current.json`) and the
//! checked-in `BENCH_baseline.json`. Exits nonzero when the current rate
//! has regressed more than the allowed fraction (default 30% — generous,
//! because CI machines are noisy; the guard catches order-of-magnitude
//! mistakes like an accidentally quadratic merge, not percent-level
//! drift).
//!
//! ```text
//! bench_guard <current.json> <baseline.json> [--max-regression 0.30]
//!             [--metric explore.states_per_sec]
//! ```
//!
//! `--metric` names any entry in the snapshots' `values` map, so one guard
//! binary watches every throughput series the workspace exports
//! (`explore.states_per_sec`, `campaign.runs_per_sec`, …).
//!
//! Exit codes: 0 within budget, 1 regression, 2 usage or unreadable input.

use nonfifo_telemetry::MetricsSnapshot;
use std::process::ExitCode;

const DEFAULT_RATE_METRIC: &str = "explore.states_per_sec";
const DEFAULT_MAX_REGRESSION: f64 = 0.30;

fn load_rate(path: &str, metric: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snapshot = MetricsSnapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    snapshot
        .values
        .get(metric)
        .copied()
        .filter(|rate| *rate > 0.0)
        .ok_or_else(|| format!("{path}: no positive {metric} value"))
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut metric = DEFAULT_RATE_METRIC.to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--max-regression" {
            let value = iter
                .next()
                .ok_or_else(|| "--max-regression needs a value".to_string())?;
            max_regression = value
                .parse()
                .map_err(|_| format!("bad --max-regression {value:?}"))?;
            if !(0.0..1.0).contains(&max_regression) {
                return Err(format!(
                    "--max-regression must be in [0, 1), got {max_regression}"
                ));
            }
        } else if arg == "--metric" {
            metric = iter
                .next()
                .ok_or_else(|| "--metric needs a value name".to_string())?
                .clone();
        } else {
            paths.push(arg.clone());
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        return Err("usage: bench_guard <current.json> <baseline.json> \
                    [--max-regression 0.30] [--metric explore.states_per_sec]"
            .to_string());
    };

    let current = load_rate(current_path, &metric)?;
    let baseline = load_rate(baseline_path, &metric)?;
    let ratio = current / baseline;
    let floor = 1.0 - max_regression;
    println!("{metric}:");
    println!("  baseline : {baseline:>12.0}  ({baseline_path})");
    println!("  current  : {current:>12.0}  ({current_path})");
    println!("  ratio    : {ratio:>12.2}  (must stay >= {floor:.2})");
    Ok(ratio >= floor)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => {
            println!("ok: within the regression budget");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("REGRESSION: throughput fell below the allowed floor");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
