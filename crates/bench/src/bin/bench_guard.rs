//! `bench_guard` — the CI throughput- and memory-regression tripwire.
//!
//! Compares one metric between a freshly exported metrics snapshot
//! (`nonfifo explore … --metrics-out current.json`) and the checked-in
//! `BENCH_baseline.json`, in whichever direction is "worse" for that
//! metric:
//!
//! - **Rates** (the default `explore.states_per_sec`, or any `values`
//!   entry named with `--metric`): regression means *falling*. The guard
//!   fails when current drops more than `--max-regression` (default 30% —
//!   generous, because CI machines are noisy; it catches
//!   order-of-magnitude mistakes like an accidentally quadratic merge,
//!   not percent-level drift).
//! - **Footprints** (`--max-growth`, e.g. for `explore.peak_frontier_bytes`):
//!   regression means *growing*. The guard fails when current exceeds the
//!   baseline by more than the given fraction — the tripwire for someone
//!   quietly re-attaching owned paths or event logs to frontier states.
//!
//! ```text
//! bench_guard <current.json> <baseline.json> [--max-regression 0.30]
//!             [--max-growth 0.50] [--metric explore.states_per_sec]
//!             [--record BENCH_history.jsonl]
//! ```
//!
//! `--record <path>` appends one JSON line per invocation —
//! `{"t": unix_seconds, "metric": …, "baseline": …, "current": …,
//! "ratio": …, "ok": …}` — so the perf trajectory accumulates across
//! PRs in `BENCH_history.jsonl` instead of each baseline refresh
//! overwriting the last. The line is written whether or not the guard
//! passes (a recorded regression is more useful than a missing point);
//! only usage/parse errors skip it.
//!
//! `--metric` names an entry in the snapshots' `values` map or, failing
//! that, a gauge — compared at its **high-water mark**, because gauges
//! that track live occupancy (`service.active_workers`) legitimately
//! read 0 at export time while their peak is the interesting series; for
//! gauges exported at their peak (`explore.peak_frontier_bytes`) value
//! and high water coincide. One guard binary thus watches every series
//! the workspace exports (`explore.states_per_sec`,
//! `campaign.runs_per_sec`, `explore.peak_frontier_bytes`,
//! `service.active_workers`, …).
//!
//! Exit codes: 0 within budget, 1 regression, 2 usage or unreadable input.

use nonfifo_telemetry::MetricsSnapshot;
use std::process::ExitCode;

const DEFAULT_RATE_METRIC: &str = "explore.states_per_sec";
const DEFAULT_MAX_REGRESSION: f64 = 0.30;

fn load_metric(path: &str, metric: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snapshot = MetricsSnapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    snapshot
        .values
        .get(metric)
        .copied()
        .or_else(|| snapshot.gauges.get(metric).map(|g| g.high_water as f64))
        .filter(|v| *v > 0.0)
        .ok_or_else(|| format!("{path}: no positive {metric} value or gauge"))
}

/// Appends the comparison to `path` as one self-describing JSON line.
/// Hand-rolled serialization, like the snapshot codec: two numbers, two
/// floats, a bool, and an escaped metric name need no dependency.
fn record_history(
    path: &str,
    metric: &str,
    baseline: f64,
    current: f64,
    ok: bool,
) -> Result<(), String> {
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let escaped: String = metric
        .chars()
        .filter(|c| c.is_ascii_graphic() && *c != '"' && *c != '\\')
        .collect();
    let line = format!(
        "{{\"t\":{stamp},\"metric\":\"{escaped}\",\"baseline\":{baseline:.3},\
         \"current\":{current:.3},\"ratio\":{:.4},\"ok\":{ok}}}\n",
        current / baseline
    );
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()))
        .map_err(|e| format!("cannot append to {path}: {e}"))
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut max_growth: Option<f64> = None;
    let mut metric = DEFAULT_RATE_METRIC.to_string();
    let mut record: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--max-regression" {
            let value = iter
                .next()
                .ok_or_else(|| "--max-regression needs a value".to_string())?;
            max_regression = value
                .parse()
                .map_err(|_| format!("bad --max-regression {value:?}"))?;
            if !(0.0..1.0).contains(&max_regression) {
                return Err(format!(
                    "--max-regression must be in [0, 1), got {max_regression}"
                ));
            }
        } else if arg == "--max-growth" {
            let value = iter
                .next()
                .ok_or_else(|| "--max-growth needs a value".to_string())?;
            let growth: f64 = value
                .parse()
                .map_err(|_| format!("bad --max-growth {value:?}"))?;
            if growth < 0.0 {
                return Err(format!("--max-growth must be >= 0, got {growth}"));
            }
            max_growth = Some(growth);
        } else if arg == "--metric" {
            metric = iter
                .next()
                .ok_or_else(|| "--metric needs a value name".to_string())?
                .clone();
        } else if arg == "--record" {
            record = Some(
                iter.next()
                    .ok_or_else(|| "--record needs a history path".to_string())?
                    .clone(),
            );
        } else {
            paths.push(arg.clone());
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        return Err("usage: bench_guard <current.json> <baseline.json> \
                    [--max-regression 0.30] [--max-growth 0.50] \
                    [--metric explore.states_per_sec] \
                    [--record BENCH_history.jsonl]"
            .to_string());
    };

    let current = load_metric(current_path, &metric)?;
    let baseline = load_metric(baseline_path, &metric)?;
    let ratio = current / baseline;
    println!("{metric}:");
    println!("  baseline : {baseline:>12.0}  ({baseline_path})");
    println!("  current  : {current:>12.0}  ({current_path})");
    let ok = match max_growth {
        // Footprint guard: bigger is worse.
        Some(growth) => {
            let ceiling = 1.0 + growth;
            println!("  ratio    : {ratio:>12.2}  (must stay <= {ceiling:.2})");
            ratio <= ceiling
        }
        // Rate guard: smaller is worse.
        None => {
            let floor = 1.0 - max_regression;
            println!("  ratio    : {ratio:>12.2}  (must stay >= {floor:.2})");
            ratio >= floor
        }
    };
    if let Some(path) = &record {
        record_history(path, &metric, baseline, current, ok)?;
        println!("  recorded : {path}");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => {
            println!("ok: within the regression budget");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("REGRESSION: the metric crossed its allowed bound");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::run;

    fn snapshot_file(dir: &std::path::Path, name: &str, rate: f64) -> String {
        let path = dir.join(name);
        let text = format!(
            "{{\"schema_version\":1,\"counters\":{{}},\"gauges\":{{}},\
             \"histograms\":{{}},\"values\":{{\"explore.states_per_sec\":{rate}}}}}"
        );
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn record_appends_one_json_line_per_comparison() {
        let dir = std::env::temp_dir().join("bench_guard_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = snapshot_file(&dir, "current.json", 150.0);
        let baseline = snapshot_file(&dir, "baseline.json", 100.0);
        let history = dir.join("history.jsonl");
        let _ = std::fs::remove_file(&history);
        let history_arg = history.to_string_lossy().into_owned();

        // A pass and a (recorded) regression both land in the history.
        let args: Vec<String> = [&current, &baseline, "--record", &history_arg]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args), Ok(true));
        let args: Vec<String> = [&baseline, &current, "--record", &history_arg]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args), Ok(false), "100/150 is below the 0.70 floor");

        let text = std::fs::read_to_string(&history).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one line per invocation:\n{text}");
        assert!(
            lines[0].contains("\"ratio\":1.5000") && lines[0].contains("\"ok\":true"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"ratio\":0.6667") && lines[1].contains("\"ok\":false"),
            "{}",
            lines[1]
        );
        for line in lines {
            assert!(
                line.starts_with("{\"t\":") && line.ends_with('}'),
                "self-describing JSON object per line: {line}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn guard_still_judges_without_recording() {
        let dir = std::env::temp_dir().join("bench_guard_plain_test");
        std::fs::create_dir_all(&dir).unwrap();
        let current = snapshot_file(&dir, "current.json", 80.0);
        let baseline = snapshot_file(&dir, "baseline.json", 100.0);
        let args: Vec<String> = [current.as_str(), baseline.as_str()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(run(&args), Ok(true), "a 20% dip is inside the 30% budget");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
