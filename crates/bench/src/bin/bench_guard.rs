//! `bench_guard` — the CI throughput- and memory-regression tripwire.
//!
//! Compares one metric between a freshly exported metrics snapshot
//! (`nonfifo explore … --metrics-out current.json`) and the checked-in
//! `BENCH_baseline.json`, in whichever direction is "worse" for that
//! metric:
//!
//! - **Rates** (the default `explore.states_per_sec`, or any `values`
//!   entry named with `--metric`): regression means *falling*. The guard
//!   fails when current drops more than `--max-regression` (default 30% —
//!   generous, because CI machines are noisy; it catches
//!   order-of-magnitude mistakes like an accidentally quadratic merge,
//!   not percent-level drift).
//! - **Footprints** (`--max-growth`, e.g. for `explore.peak_frontier_bytes`):
//!   regression means *growing*. The guard fails when current exceeds the
//!   baseline by more than the given fraction — the tripwire for someone
//!   quietly re-attaching owned paths or event logs to frontier states.
//!
//! ```text
//! bench_guard <current.json> <baseline.json> [--max-regression 0.30]
//!             [--max-growth 0.50] [--metric explore.states_per_sec]
//! ```
//!
//! `--metric` names an entry in the snapshots' `values` map or, failing
//! that, a gauge — compared at its **high-water mark**, because gauges
//! that track live occupancy (`service.active_workers`) legitimately
//! read 0 at export time while their peak is the interesting series; for
//! gauges exported at their peak (`explore.peak_frontier_bytes`) value
//! and high water coincide. One guard binary thus watches every series
//! the workspace exports (`explore.states_per_sec`,
//! `campaign.runs_per_sec`, `explore.peak_frontier_bytes`,
//! `service.active_workers`, …).
//!
//! Exit codes: 0 within budget, 1 regression, 2 usage or unreadable input.

use nonfifo_telemetry::MetricsSnapshot;
use std::process::ExitCode;

const DEFAULT_RATE_METRIC: &str = "explore.states_per_sec";
const DEFAULT_MAX_REGRESSION: f64 = 0.30;

fn load_metric(path: &str, metric: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snapshot = MetricsSnapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    snapshot
        .values
        .get(metric)
        .copied()
        .or_else(|| snapshot.gauges.get(metric).map(|g| g.high_water as f64))
        .filter(|v| *v > 0.0)
        .ok_or_else(|| format!("{path}: no positive {metric} value or gauge"))
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut max_growth: Option<f64> = None;
    let mut metric = DEFAULT_RATE_METRIC.to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--max-regression" {
            let value = iter
                .next()
                .ok_or_else(|| "--max-regression needs a value".to_string())?;
            max_regression = value
                .parse()
                .map_err(|_| format!("bad --max-regression {value:?}"))?;
            if !(0.0..1.0).contains(&max_regression) {
                return Err(format!(
                    "--max-regression must be in [0, 1), got {max_regression}"
                ));
            }
        } else if arg == "--max-growth" {
            let value = iter
                .next()
                .ok_or_else(|| "--max-growth needs a value".to_string())?;
            let growth: f64 = value
                .parse()
                .map_err(|_| format!("bad --max-growth {value:?}"))?;
            if growth < 0.0 {
                return Err(format!("--max-growth must be >= 0, got {growth}"));
            }
            max_growth = Some(growth);
        } else if arg == "--metric" {
            metric = iter
                .next()
                .ok_or_else(|| "--metric needs a value name".to_string())?
                .clone();
        } else {
            paths.push(arg.clone());
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        return Err("usage: bench_guard <current.json> <baseline.json> \
                    [--max-regression 0.30] [--max-growth 0.50] \
                    [--metric explore.states_per_sec]"
            .to_string());
    };

    let current = load_metric(current_path, &metric)?;
    let baseline = load_metric(baseline_path, &metric)?;
    let ratio = current / baseline;
    println!("{metric}:");
    println!("  baseline : {baseline:>12.0}  ({baseline_path})");
    println!("  current  : {current:>12.0}  ({current_path})");
    match max_growth {
        // Footprint guard: bigger is worse.
        Some(growth) => {
            let ceiling = 1.0 + growth;
            println!("  ratio    : {ratio:>12.2}  (must stay <= {ceiling:.2})");
            Ok(ratio <= ceiling)
        }
        // Rate guard: smaller is worse.
        None => {
            let floor = 1.0 - max_regression;
            println!("  ratio    : {ratio:>12.2}  (must stay >= {floor:.2})");
            Ok(ratio >= floor)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => {
            println!("ok: within the regression budget");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("REGRESSION: the metric crossed its allowed bound");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
