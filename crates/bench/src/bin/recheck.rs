//! Re-validates a dumped execution trace against the layer specifications.
//!
//! ```text
//! cargo run --example falsify -- cycle3 mf --dump trace.txt
//! cargo run -p nonfifo-bench --bin recheck -- trace.txt
//! ```
//!
//! Prints the Definition 2 counters, the PL1 verdict per channel, and the
//! DL1/DL2/validity classification — so a violation artifact can be checked
//! independently of the adversary that produced it. Pass `--diagram` to
//! also render the trace as an ASCII sequence diagram.

use nonfifo_ioa::spec::{check_dl1, check_dl1_dl2, check_pl1, Validity};
use nonfifo_ioa::text::parse_text;
use nonfifo_ioa::Dir;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let diagram = if let Some(i) = args.iter().position(|a| a == "--diagram") {
        args.remove(i);
        true
    } else {
        false
    };
    let Some(path) = args.first().cloned() else {
        eprintln!("usage: recheck <trace-file> [--diagram]");
        return ExitCode::FAILURE;
    };
    let input = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exec = match parse_text(&input) {
        Ok(exec) => exec,
        Err(e) => {
            eprintln!("parse error in {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let c = exec.counts();
    println!("events: {}", exec.len());
    println!("counters: {c}");

    for dir in Dir::BOTH {
        match check_pl1(&exec, dir) {
            Ok(()) => println!("PL1 [{dir}]: ok (the physical layer behaved legally)"),
            Err(v) => println!("PL1 [{dir}]: VIOLATED — {v}"),
        }
    }
    match check_dl1(&exec) {
        Ok(_) => println!("DL1: ok"),
        Err(v) => println!("DL1: VIOLATED — {v}"),
    }
    match check_dl1_dl2(&exec) {
        Ok(_) => println!("DL1+DL2: ok"),
        Err(v) => println!("DL1+DL2: VIOLATED — {v}"),
    }
    println!("classification: {}", Validity::classify(&exec));
    if diagram {
        println!("\n{}", nonfifo_ioa::diagram::render(&exec));
    }
    ExitCode::SUCCESS
}
