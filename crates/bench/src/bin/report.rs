//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p nonfifo-bench --bin report            # all
//! cargo run --release -p nonfifo-bench --bin report -- --exp e5
//! ```

use nonfifo_core::experiments::{
    e10_transport, e11_exhaustive, e1_boundness, e2_mf_falsifier, e3_naive_protocol, e4_pf_cost,
    e5_probabilistic_growth, e6_seeding_lemma, e7_hoeffding, e8_classic_break, e9_window_ablation,
};
use std::process::ExitCode;

const SEED: u64 = 20260705;

fn run(exp: &str) -> bool {
    match exp {
        "e1" => {
            println!("## E1 — Theorem 2.1: boundness ≤ kₜ·kᵣ\n");
            println!("{}", e1_boundness(SEED));
        }
        "e2" => {
            println!("## E2 — Theorem 3.1: the inductive falsifier\n");
            println!("{}", e2_mf_falsifier());
        }
        "e3" => {
            println!("## E3 — Theorem 3.1 contrapositive: the naive n-header protocol\n");
            println!("{}", e3_naive_protocol());
        }
        "e4" => {
            println!("## E4 — Theorem 4.1: cost ≥ in-transit/k; [Afe88] is tight\n");
            println!("{}", e4_pf_cost(120));
        }
        "e5" => {
            println!("## E5 — Theorem 5.1: exponential vs linear over PL2p\n");
            println!("{}", e5_probabilistic_growth(SEED));
        }
        "e6" => {
            println!("## E6 — Lemma 5.2: seeding the dominant packet\n");
            println!("{}", e6_seeding_lemma(12, 0.3, 50));
        }
        "e7" => {
            println!("## E7 — Theorem 5.4 [Hoe63]: the Hoeffding bound\n");
            println!("{}", e7_hoeffding(20_000, SEED));
        }
        "e8" => {
            println!("## E8 — the alternating bit: correct on lossy FIFO, falls on non-FIFO\n");
            println!("{}", e8_classic_break(SEED));
        }
        "e9" => {
            println!("## E9 — ablation: sliding window vs bounded reorder\n");
            println!("{}", e9_window_ablation(150, SEED));
        }
        "e10" => {
            println!("## E10 — transport protocols over non-FIFO virtual links\n");
            println!("{}", e10_transport(100));
        }
        "e11" => {
            println!("## E11 — exhaustive small-scope verification\n");
            println!("{}", e11_exhaustive());
        }
        _ => return false,
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
    ];
    let selected: Vec<&str> = match args.as_slice() {
        [] => all.to_vec(),
        [flag, exp] if flag == "--exp" => vec![exp.as_str()],
        _ => {
            eprintln!("usage: report [--exp e1..e11]");
            return ExitCode::FAILURE;
        }
    };
    println!("# nonfifo experiment report\n");
    println!("Reproduction of Mansour & Schieber, *The Intractability of Bounded");
    println!("Protocols for Non-FIFO Channels*, PODC 1989. Seed {SEED}.\n");
    for exp in selected {
        if !run(exp) {
            eprintln!("unknown experiment {exp:?} (expected e1..e11)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
