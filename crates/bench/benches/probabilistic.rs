//! Bench E5: probabilistic-channel runs — the exponential bounded-header
//! witness versus the linear naive protocol, across `q` and `n`.

use nonfifo_adversary::{DominantTracker, ProbRunConfig};
use nonfifo_bench::harness::Group;
use nonfifo_channel::Discipline;
use nonfifo_core::{SimConfig, Simulation};
use nonfifo_protocols::{Outnumber, SequenceNumber};

fn bench_outnumber_growth() {
    let group = Group::new("prob_outnumber_n").samples(3);
    for n in [6u64, 9, 12] {
        group.bench(&n.to_string(), || {
            let report = DominantTracker::new(ProbRunConfig {
                messages: n,
                q: 0.3,
                seed: 1,
                max_steps_per_message: 5_000_000,
            })
            .run(&Outnumber::factory());
            assert!(report.completed && report.violation.is_none());
            report.total_forward_sent
        });
    }
}

fn bench_seqnum_linear() {
    let group = Group::new("prob_seqnum_q");
    for q in [0.1f64, 0.3, 0.5] {
        group.bench(&q.to_string(), || {
            let mut sim = Simulation::builder(SequenceNumber::new())
                .channel(Discipline::Probabilistic { q })
                .seed(2)
                .build();
            let stats = sim.deliver(200, &SimConfig::default()).expect("live");
            stats.packets_sent_forward
        });
    }
}

fn main() {
    bench_outnumber_growth();
    bench_seqnum_linear();
}
