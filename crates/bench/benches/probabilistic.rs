//! Bench E5: probabilistic-channel runs — the exponential bounded-header
//! witness versus the linear naive protocol, across `q` and `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonfifo_adversary::{DominantTracker, ProbRunConfig};
use nonfifo_core::{SimConfig, Simulation};
use nonfifo_protocols::{Outnumber, SequenceNumber};
use std::hint::black_box;

fn bench_outnumber_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("prob_outnumber_n");
    group.sample_size(10);
    for n in [6u64, 9, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let report = DominantTracker::new(ProbRunConfig {
                    messages: n,
                    q: 0.3,
                    seed: 1,
                    max_steps_per_message: 5_000_000,
                })
                .run(&Outnumber::factory());
                assert!(report.completed && report.violation.is_none());
                black_box(report.total_forward_sent)
            })
        });
    }
    group.finish();
}

fn bench_seqnum_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("prob_seqnum_q");
    for q in [0.1f64, 0.3, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let mut sim = Simulation::probabilistic(SequenceNumber::new(), q, 2);
                let stats = sim.deliver(200, &SimConfig::default()).expect("live");
                black_box(stats.packets_sent_forward)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_outnumber_growth, bench_seqnum_linear);
criterion_main!(benches);
