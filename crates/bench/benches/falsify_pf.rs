//! Bench E4: the Theorem 4.1 falsifier — scaling of the per-message cost
//! probe with the in-transit pool, for the tight 3-header reconstruction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonfifo_adversary::{FalsifyOutcome, PfConfig, PfFalsifier};
use nonfifo_protocols::{AfekFlush, SequenceNumber};
use std::hint::black_box;

fn prober(messages: u64) -> PfFalsifier {
    PfFalsifier::new(PfConfig {
        messages,
        max_steps_per_message: 50_000,
        oracle_steps: 100_000,
    })
}

fn bench_afek_cost_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("pf_afek_cost_curve");
    group.sample_size(10);
    for messages in [30u64, 60, 120] {
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &messages,
            |b, &messages| {
                b.iter(|| {
                    let (outcome, costs) = prober(messages).run(&AfekFlush::new());
                    assert!(matches!(outcome, FalsifyOutcome::Survived(_)));
                    // The curve is the point: assert T4.1's bound inline so
                    // a regression fails the bench.
                    for c in &costs {
                        assert!(c.extension_sends >= c.in_transit_before / 3);
                    }
                    black_box(costs)
                })
            },
        );
    }
    group.finish();
}

fn bench_seqnum_flat_curve(c: &mut Criterion) {
    c.bench_function("pf_seqnum_flat_curve", |b| {
        b.iter(|| {
            let (outcome, costs) = prober(60).run(&SequenceNumber::new());
            assert!(matches!(outcome, FalsifyOutcome::Survived(_)));
            black_box(costs)
        })
    });
}

criterion_group!(benches, bench_afek_cost_curve, bench_seqnum_flat_curve);
criterion_main!(benches);
