//! Bench E4: the Theorem 4.1 falsifier — scaling of the per-message cost
//! probe with the in-transit pool, for the tight 3-header reconstruction.

use nonfifo_adversary::{FalsifyOutcome, PfConfig, PfFalsifier};
use nonfifo_bench::harness::Group;
use nonfifo_protocols::{AfekFlush, SequenceNumber};

fn prober(messages: u64) -> PfFalsifier {
    PfFalsifier::new(PfConfig {
        messages,
        max_steps_per_message: 50_000,
        oracle_steps: 100_000,
    })
}

fn bench_afek_cost_curve() {
    let group = Group::new("pf_afek_cost_curve").samples(3);
    for messages in [30u64, 60, 120] {
        group.bench(&messages.to_string(), || {
            let (outcome, costs) = prober(messages).run(&AfekFlush::new());
            assert!(matches!(outcome, FalsifyOutcome::Survived(_)));
            // The curve is the point: assert T4.1's bound inline so a
            // regression fails the bench.
            for c in &costs {
                assert!(c.extension_sends >= c.in_transit_before / 3);
            }
            costs
        });
    }
}

fn bench_seqnum_flat_curve() {
    let group = Group::new("pf");
    group.bench("seqnum_flat_curve", || {
        let (outcome, costs) = prober(60).run(&SequenceNumber::new());
        assert!(matches!(outcome, FalsifyOutcome::Survived(_)));
        costs
    });
}

fn main() {
    bench_afek_cost_curve();
    bench_seqnum_flat_curve();
}
