//! Bench E9: sliding-window delivery throughput versus channel reorder
//! bound — the practical ablation of the paper's assumptions.

use nonfifo_bench::harness::Group;
use nonfifo_channel::Discipline;
use nonfifo_core::{SimConfig, Simulation};
use nonfifo_protocols::SlidingWindow;

fn bench_window_vs_bound() {
    let group = Group::new("window8_over_reorder");
    for bound in [1u64, 2, 4] {
        group.bench(&bound.to_string(), || {
            let mut sim = Simulation::builder(SlidingWindow::new(8))
                .channel(Discipline::BoundedReorder { bound })
                .seed(3)
                .build();
            let stats = sim
                .deliver(200, &SimConfig::default())
                .expect("within the window's tolerance");
            stats.packets_sent_forward
        });
    }
}

fn bench_window_sizes_on_fifo() {
    let group = Group::new("window_size_fifo_pipeline");
    for w in [1u32, 4, 16] {
        group.bench(&w.to_string(), || {
            let mut sim = Simulation::builder(SlidingWindow::new(w)).build();
            let stats = sim.deliver(500, &SimConfig::default()).expect("fifo");
            stats.steps
        });
    }
}

fn main() {
    bench_window_vs_bound();
    bench_window_sizes_on_fifo();
}
