//! Bench E9: sliding-window delivery throughput versus channel reorder
//! bound — the practical ablation of the paper's assumptions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonfifo_core::{SimConfig, Simulation};
use nonfifo_protocols::SlidingWindow;
use std::hint::black_box;

fn bench_window_vs_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("window8_over_reorder");
    for bound in [1u64, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                let mut sim = Simulation::bounded_reorder(SlidingWindow::new(8), bound, 3);
                let stats = sim
                    .deliver(200, &SimConfig::default())
                    .expect("within the window's tolerance");
                black_box(stats.packets_sent_forward)
            })
        });
    }
    group.finish();
}

fn bench_window_sizes_on_fifo(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_size_fifo_pipeline");
    for w in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let mut sim = Simulation::fifo(SlidingWindow::new(w));
                let stats = sim.deliver(500, &SimConfig::default()).expect("fifo");
                black_box(stats.steps)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_vs_bound, bench_window_sizes_on_fifo);
criterion_main!(benches);
