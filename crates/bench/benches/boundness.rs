//! Bench E1: boundness probing (Theorem 2.1) — forward-simulation oracle
//! cost and randomized schedule exploration per protocol.

use nonfifo_adversary::boundness::{probe, BoundnessProbeConfig};
use nonfifo_adversary::{explore, BoundnessOracle, ExploreConfig, System};
use nonfifo_bench::harness::Group;
use nonfifo_protocols::{AlternatingBit, DataLink, NaiveCycle, SequenceNumber};

fn bench_probe() {
    let protocols: Vec<Box<dyn DataLink>> = vec![
        Box::new(AlternatingBit::new()),
        Box::new(NaiveCycle::new(5)),
        Box::new(SequenceNumber::new()),
    ];
    let group = Group::new("boundness_probe");
    for proto in &protocols {
        let cfg = BoundnessProbeConfig::default();
        group.bench(&proto.name(), || probe(proto.as_ref(), &cfg));
    }
}

fn bench_oracle_fork() {
    // The oracle (clone + forward simulate) is the inner loop of every
    // falsifier; measure it in isolation on a loaded system.
    let mut sys = System::new(&SequenceNumber::new());
    for _ in 0..32 {
        sys.send_msg();
        for _ in 0..4 {
            sys.step_park_all();
        }
        assert!(sys.run_to_quiescence(64));
    }
    let oracle = BoundnessOracle::default();
    let group = Group::new("oracle");
    group.bench("extension_on_loaded_system", || {
        oracle.extension_with_new_message(&sys)
    });
}

fn bench_exhaustive_explore() {
    let group = Group::new("exhaustive_explore").samples(3);
    group.bench("abp_counterexample", || {
        let outcome = explore(&AlternatingBit::new(), &ExploreConfig::default());
        assert!(outcome.is_counterexample());
        outcome
    });
    let cfg = ExploreConfig {
        max_messages: 3,
        max_depth: 12,
        max_pool: 5,
        max_states: 500_000,
        ..ExploreConfig::default()
    };
    group.bench("seqnum_certificate", || {
        explore(&SequenceNumber::new(), &cfg)
    });
}

fn main() {
    bench_probe();
    bench_oracle_fork();
    bench_exhaustive_explore();
}
