//! Bench E1: boundness probing (Theorem 2.1) — forward-simulation oracle
//! cost and randomized schedule exploration per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonfifo_adversary::boundness::{probe, BoundnessProbeConfig};
use nonfifo_adversary::{explore, BoundnessOracle, ExploreConfig, System};
use nonfifo_protocols::{AlternatingBit, DataLink, NaiveCycle, SequenceNumber};
use std::hint::black_box;

fn bench_probe(c: &mut Criterion) {
    let protocols: Vec<Box<dyn DataLink>> = vec![
        Box::new(AlternatingBit::new()),
        Box::new(NaiveCycle::new(5)),
        Box::new(SequenceNumber::new()),
    ];
    let mut group = c.benchmark_group("boundness_probe");
    for proto in &protocols {
        group.bench_with_input(
            BenchmarkId::from_parameter(proto.name()),
            proto,
            |b, proto| {
                let cfg = BoundnessProbeConfig::default();
                b.iter(|| black_box(probe(proto.as_ref(), &cfg)))
            },
        );
    }
    group.finish();
}

fn bench_oracle_fork(c: &mut Criterion) {
    // The oracle (clone + forward simulate) is the inner loop of every
    // falsifier; measure it in isolation on a loaded system.
    let mut sys = System::new(&SequenceNumber::new());
    for _ in 0..32 {
        sys.send_msg();
        for _ in 0..4 {
            sys.step_park_all();
        }
        assert!(sys.run_to_quiescence(64));
    }
    let oracle = BoundnessOracle::default();
    c.bench_function("oracle_extension_on_loaded_system", |b| {
        b.iter(|| black_box(oracle.extension_with_new_message(&sys)))
    });
}

fn bench_exhaustive_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_explore");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("abp_counterexample"), |b| {
        b.iter(|| {
            let outcome = explore(&AlternatingBit::new(), &ExploreConfig::default());
            assert!(outcome.is_counterexample());
            black_box(outcome)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("seqnum_certificate"), |b| {
        let cfg = ExploreConfig {
            max_messages: 3,
            max_depth: 12,
            max_pool: 5,
            max_states: 500_000,
        };
        b.iter(|| black_box(explore(&SequenceNumber::new(), &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_probe, bench_oracle_fork, bench_exhaustive_explore);
criterion_main!(benches);
