//! Bench E2: the Theorem 3.1 falsifier — time to construct the invalid
//! execution for naive bounded-header protocols (per k), and per-message
//! growth cost against the surviving reconstruction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonfifo_adversary::{MfConfig, MfFalsifier};
use nonfifo_protocols::{AfekFlush, AlternatingBit, NaiveCycle};
use std::hint::black_box;

fn quick(max_messages: u64) -> MfFalsifier {
    MfFalsifier::new(MfConfig {
        max_messages,
        max_steps_per_phase: 50_000,
        oracle_steps: 100_000,
    })
}

fn bench_break_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("mf_break_naive_cycle");
    for k in [2u32, 3, 5, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let outcome = quick(4 * u64::from(k)).run(&NaiveCycle::new(k));
                assert!(outcome.is_violation());
                black_box(outcome)
            })
        });
    }
    group.finish();
}

fn bench_break_alternating_bit(c: &mut Criterion) {
    c.bench_function("mf_break_alternating_bit", |b| {
        b.iter(|| {
            let outcome = quick(8).run(&AlternatingBit::new());
            assert!(outcome.is_violation());
            black_box(outcome)
        })
    });
}

fn bench_growth_against_survivor(c: &mut Criterion) {
    let mut group = c.benchmark_group("mf_growth_afek");
    for messages in [10u64, 20, 40] {
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &messages,
            |b, &messages| {
                b.iter(|| {
                    let (outcome, stages) = quick(messages).run_with_trace(&AfekFlush::new());
                    assert!(!outcome.is_violation());
                    black_box(stages)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_break_cycles,
    bench_break_alternating_bit,
    bench_growth_against_survivor
);
criterion_main!(benches);
