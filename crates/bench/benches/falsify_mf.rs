//! Bench E2: the Theorem 3.1 falsifier — time to construct the invalid
//! execution for naive bounded-header protocols (per k), and per-message
//! growth cost against the surviving reconstruction.

use nonfifo_adversary::{MfConfig, MfFalsifier};
use nonfifo_bench::harness::Group;
use nonfifo_protocols::{AfekFlush, AlternatingBit, NaiveCycle};

fn quick(max_messages: u64) -> MfFalsifier {
    MfFalsifier::new(MfConfig {
        max_messages,
        max_steps_per_phase: 50_000,
        oracle_steps: 100_000,
    })
}

fn bench_break_cycles() {
    let group = Group::new("mf_break_naive_cycle");
    for k in [2u32, 3, 5, 8] {
        group.bench(&k.to_string(), || {
            let outcome = quick(4 * u64::from(k)).run(&NaiveCycle::new(k));
            assert!(outcome.is_violation());
            outcome
        });
    }
}

fn bench_break_alternating_bit() {
    let group = Group::new("mf");
    group.bench("break_alternating_bit", || {
        let outcome = quick(8).run(&AlternatingBit::new());
        assert!(outcome.is_violation());
        outcome
    });
}

fn bench_growth_against_survivor() {
    let group = Group::new("mf_growth_afek");
    for messages in [10u64, 20, 40] {
        group.bench(&messages.to_string(), || {
            let (outcome, stages) = quick(messages).run_with_trace(&AfekFlush::new());
            assert!(!outcome.is_violation());
            stages
        });
    }
}

fn main() {
    bench_break_cycles();
    bench_break_alternating_bit();
    bench_growth_against_survivor();
}
