//! Bench: campaign engine throughput — the work-stealing matrix runner at
//! growing worker counts, plus the fingerprint cache's replay rate.
//!
//! The workload is a 512-run matrix of short FIFO/probabilistic deliveries:
//! large enough that claim-cursor overhead is amortised and `runs/sec` is a
//! meaningful rate, small enough to finish in CI. On a single-core machine
//! the thread sweep measures invariance overhead, not speedup — the
//! determinism contract (byte-identical reports at any worker count) is
//! what the integration tests assert; here we only watch the rate.
//!
//! With `--out <path>` the single-thread rate is exported as the
//! `campaign.runs_per_sec` value of a metrics snapshot, the series
//! `bench_guard --metric campaign.runs_per_sec` compares against
//! `BENCH_baseline.json`.

use nonfifo_bench::harness::Group;
use nonfifo_campaign::{CampaignCache, CampaignRunner, ScenarioSpec};
use nonfifo_channel::Discipline;
use nonfifo_telemetry::Registry;
use std::time::Instant;

const THREADS: [usize; 3] = [1, 2, 8];

/// 2 protocols × 2 disciplines × 2 scopes × 32 seeds = 256 runs per
/// scenario, 512 total.
fn matrix() -> Vec<nonfifo_campaign::RunSpec> {
    let mut runs = ScenarioSpec::new("bench-fifo")
        .protocol("seqnum")
        .protocol("window4")
        .discipline(Discipline::Fifo)
        .discipline(Discipline::BoundedReorder { bound: 4 })
        .message_counts(&[5, 10])
        .seeds(0..32)
        .expand();
    runs.extend(
        ScenarioSpec::new("bench-prob")
            .protocol("seqnum")
            .protocol("abp")
            .discipline(Discipline::Fifo)
            .discipline(Discipline::LossyFifo { loss: 0.2 })
            .message_counts(&[5, 10])
            .seeds(0..32)
            .expand(),
    );
    runs
}

fn median_rate(runs: &[nonfifo_campaign::RunSpec], threads: usize) -> f64 {
    let mut rates: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            let report = CampaignRunner::new(threads).run(runs).expect("campaign");
            report.records.len() as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[1]
}

fn main() {
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let runs = matrix();
    assert!(runs.len() >= 500, "workload shrank below a meaningful size");

    let group = Group::new("campaign_matrix").samples(3);
    for threads in THREADS {
        group.bench(&format!("fresh_t{threads}"), || {
            CampaignRunner::new(threads).run(&runs).expect("campaign")
        });
    }
    let mut cache = CampaignCache::new();
    CampaignRunner::new(1)
        .run_with_cache(&runs, &mut cache)
        .expect("warm the cache");
    group.bench("cached_replay", || {
        CampaignRunner::new(1)
            .run_with_cache(&runs, &mut cache)
            .expect("replay")
    });

    println!("\n== runs_per_sec (median of 3, {} runs)", runs.len());
    let mut single = 0.0;
    for threads in THREADS {
        let rate = median_rate(&runs, threads);
        if threads == 1 {
            single = rate;
        }
        println!("threads={threads:<2} : {rate:>10.0} runs/sec");
    }

    if let Some(path) = out {
        let registry = Registry::new();
        registry.set_value("campaign.runs_per_sec", single);
        std::fs::write(&path, registry.snapshot().to_json()).expect("write --out snapshot");
        println!("wrote campaign.runs_per_sec to {path}");
    }
}
