//! Bench: stabilization-harness throughput — corrupted starts certified
//! per second, across the three scramble severities.
//!
//! Each "run" is a full `stabilize_run`: scramble the automata and
//! channel multisets, settle the poison out, drive a real workload, and
//! judge the retained execution against the convergence spec. The 256-seed
//! sweep matches the shape of the `nonfifo stabilize` CLI sweep (seeds are
//! embarrassingly parallel in principle, but the harness is single-threaded
//! by design — determinism is the product), so `runs/sec` here is the rate
//! a user sees per core.
//!
//! With `--out <path>` the default-severity rate is exported as the
//! `stabilize.runs_per_sec` value of a metrics snapshot, the series
//! `bench_guard --metric stabilize.runs_per_sec` compares against
//! `BENCH_baseline.json`.

use nonfifo_bench::harness::Group;
use nonfifo_channel::CorruptionSeverity;
use nonfifo_core::{certify, StabilizeConfig};
use nonfifo_protocols::StabilizingDl;
use nonfifo_telemetry::Registry;
use std::time::Instant;

const SEEDS: u64 = 256;

fn cfg_for(severity: CorruptionSeverity) -> StabilizeConfig {
    StabilizeConfig {
        severity,
        ..StabilizeConfig::default()
    }
}

fn median_rate(cfg: &StabilizeConfig) -> f64 {
    let mut rates: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            let report = certify(StabilizingDl::new, SEEDS, cfg);
            assert!(report.certified(), "bench workload must certify: {report}");
            SEEDS as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[1]
}

fn main() {
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let group = Group::new("stabilize_certify").samples(3);
    for severity in CorruptionSeverity::ALL {
        group.bench(&format!("certify_{severity}"), || {
            certify(StabilizingDl::new, SEEDS, &cfg_for(severity))
        });
    }

    println!("\n== runs_per_sec (median of 3, {SEEDS} corrupted starts)");
    let mut default_rate = 0.0;
    for severity in CorruptionSeverity::ALL {
        let rate = median_rate(&cfg_for(severity));
        if severity == StabilizeConfig::default().severity {
            default_rate = rate;
        }
        println!("{severity:<7}: {rate:>10.0} runs/sec");
    }

    if let Some(path) = out {
        let registry = Registry::new();
        registry.set_value("stabilize.runs_per_sec", default_rate);
        std::fs::write(&path, registry.snapshot().to_json()).expect("write --out snapshot");
        println!("wrote stabilize.runs_per_sec to {path}");
    }
}
