//! Bench: raw channel-substrate throughput — send/deliver cycles per
//! channel implementation, and the adversarial replay primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonfifo_channel::{
    AdversarialChannel, BoundedReorderChannel, Channel, FifoChannel, LossyFifoChannel,
    ProbabilisticChannel,
};
use nonfifo_ioa::{Dir, Header, Packet};
use nonfifo_transport::VirtualLinkBuilder;
use std::hint::black_box;

const BATCH: u32 = 1024;

fn pump(ch: &mut dyn Channel) -> u64 {
    let mut delivered = 0;
    for i in 0..BATCH {
        ch.send(Packet::header_only(Header::new(i % 8)));
        while let Some(hit) = ch.poll_deliver() {
            black_box(hit);
            delivered += 1;
        }
        ch.tick();
    }
    delivered
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_send_deliver_1k");
    group.bench_function(BenchmarkId::from_parameter("fifo"), |b| {
        b.iter(|| pump(&mut FifoChannel::new(Dir::Forward)))
    });
    group.bench_function(BenchmarkId::from_parameter("lossy_fifo"), |b| {
        b.iter(|| pump(&mut LossyFifoChannel::new(Dir::Forward, 0.3, 1)))
    });
    group.bench_function(BenchmarkId::from_parameter("probabilistic"), |b| {
        b.iter(|| pump(&mut ProbabilisticChannel::new(Dir::Forward, 0.3, 1)))
    });
    group.bench_function(BenchmarkId::from_parameter("bounded_reorder"), |b| {
        b.iter(|| pump(&mut BoundedReorderChannel::new(Dir::Forward, 8, 1)))
    });
    group.bench_function(BenchmarkId::from_parameter("adversarial_immediate"), |b| {
        b.iter(|| pump(&mut AdversarialChannel::immediate(Dir::Forward)))
    });
    group.bench_function(BenchmarkId::from_parameter("virtual_link_3routes"), |b| {
        b.iter(|| {
            let mut link = VirtualLinkBuilder::new(Dir::Forward)
                .route(0)
                .route(2)
                .route(5)
                .build();
            pump(&mut link)
        })
    });
    group.finish();
}

fn bench_replay_primitive(c: &mut Criterion) {
    c.bench_function("adversarial_replay_oldest_of_packet", |b| {
        b.iter_batched(
            || {
                let mut ch = AdversarialChannel::parked(Dir::Forward);
                for i in 0..BATCH {
                    ch.send(Packet::header_only(Header::new(i % 8)));
                }
                ch
            },
            |mut ch| {
                for i in 0..BATCH {
                    let p = Packet::header_only(Header::new(i % 8));
                    ch.release_oldest_of_packet(p);
                    black_box(ch.poll_deliver());
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_throughput, bench_replay_primitive);
criterion_main!(benches);
