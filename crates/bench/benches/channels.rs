//! Bench: raw channel-substrate throughput — send/deliver cycles per
//! channel implementation, and the adversarial replay primitive.

use nonfifo_bench::harness::Group;
use nonfifo_channel::{
    AdversarialChannel, BoundedReorderChannel, Channel, FifoChannel, LossyFifoChannel,
    ProbabilisticChannel,
};
use nonfifo_ioa::{Dir, Header, Packet};
use nonfifo_transport::VirtualLinkBuilder;
use std::hint::black_box;

const BATCH: u32 = 1024;

fn pump(ch: &mut dyn Channel) -> u64 {
    let mut delivered = 0;
    for i in 0..BATCH {
        ch.send(Packet::header_only(Header::new(i % 8)));
        while let Some(hit) = ch.poll_deliver() {
            black_box(hit);
            delivered += 1;
        }
        ch.tick();
    }
    delivered
}

fn bench_throughput() {
    let group = Group::new("channel_send_deliver_1k");
    group.bench("fifo", || pump(&mut FifoChannel::new(Dir::Forward)));
    group.bench("lossy_fifo", || {
        pump(&mut LossyFifoChannel::new(Dir::Forward, 0.3, 1))
    });
    group.bench("probabilistic", || {
        pump(&mut ProbabilisticChannel::new(Dir::Forward, 0.3, 1))
    });
    group.bench("bounded_reorder", || {
        pump(&mut BoundedReorderChannel::new(Dir::Forward, 8, 1))
    });
    group.bench("adversarial_immediate", || {
        pump(&mut AdversarialChannel::immediate(Dir::Forward))
    });
    group.bench("virtual_link_3routes", || {
        let mut link = VirtualLinkBuilder::new(Dir::Forward)
            .route(0)
            .route(2)
            .route(5)
            .build();
        pump(&mut link)
    });
}

fn bench_replay_primitive() {
    let group = Group::new("adversarial_replay");
    group.bench("release_oldest_of_packet", || {
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        for i in 0..BATCH {
            ch.send(Packet::header_only(Header::new(i % 8)));
        }
        for i in 0..BATCH {
            let p = Packet::header_only(Header::new(i % 8));
            ch.release_oldest_of_packet(p);
            black_box(ch.poll_deliver());
        }
    });
}

fn main() {
    bench_throughput();
    bench_replay_primitive();
}
