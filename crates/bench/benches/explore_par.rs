//! Bench: exploration throughput — the sequential oracle vs the
//! level-synchronized parallel explorer at growing thread counts.
//!
//! The workload is the sequence-number certificate scope (no counterexample
//! short-circuits the search, so every run covers the same state set and
//! states/sec is a meaningful rate). The headline number is the 8-thread
//! speedup over the sequential baseline.
//!
//! The partial-order-reduction section runs the same scope with `--por`
//! semantics on and off and reports the certified-states ratio. The ratio
//! is structural — a pure function of the protocol and the scope, not of
//! the machine — so with `--out <path>` it is exported as the
//! `explore.reduction_ratio` value of a metrics snapshot for
//! `bench_guard --metric explore.reduction_ratio` to hold against
//! `BENCH_baseline.json`.

use nonfifo_adversary::{explore, ExploreConfig, ExploreOutcome, ParallelExplorer};
use nonfifo_bench::harness::Group;
use nonfifo_protocols::SequenceNumber;
use nonfifo_telemetry::Registry;
use std::sync::Arc;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn states(outcome: &ExploreOutcome) -> usize {
    match outcome {
        ExploreOutcome::Exhausted { states } | ExploreOutcome::Truncated { states } => *states,
        ExploreOutcome::Counterexample { .. } => 0,
    }
}

fn median_rate(mut f: impl FnMut() -> ExploreOutcome) -> f64 {
    let mut rates: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            let outcome = f();
            states(&outcome) as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[1]
}

fn main() {
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };

    // Large enough that every BFS level carries a wide frontier (87k+
    // states total), so the parallel engine has real work to distribute.
    let cfg = ExploreConfig {
        max_messages: 8,
        max_depth: 26,
        max_pool: 10,
        max_states: 20_000_000,
        ..ExploreConfig::default()
    };
    let proto = SequenceNumber::new();

    let group = Group::new("explore_throughput").samples(3);
    group.bench("sequential", || explore(&proto, &cfg));
    for threads in THREADS {
        let explorer = ParallelExplorer::new(threads);
        group.bench(&format!("parallel_t{threads}"), || {
            explorer.explore(&proto, &cfg)
        });
    }

    println!("\n== states_per_sec (median of 3)");
    let seq = median_rate(|| explore(&proto, &cfg));
    println!("sequential    : {seq:>10.0} states/sec  (1.00x)");
    for threads in THREADS {
        let explorer = ParallelExplorer::new(threads);
        let rate = median_rate(|| explorer.explore(&proto, &cfg));
        println!(
            "parallel t={threads:<2} : {rate:>10.0} states/sec  ({:.2}x)",
            rate / seq
        );
    }

    // Telemetry overhead: the same workload with every counter, histogram,
    // and span hook live. The recording path is relaxed atomics, so the
    // target is <= 5% throughput loss (the PR's acceptance criterion).
    println!("\n== telemetry overhead (parallel t=8, median of 3)");
    let plain = median_rate(|| ParallelExplorer::new(8).explore(&proto, &cfg));
    let watched = median_rate(|| {
        ParallelExplorer::new(8)
            .with_telemetry(Arc::new(Registry::new()), None)
            .explore(&proto, &cfg)
    });
    let overhead = (plain - watched) / plain * 100.0;
    println!("telemetry off : {plain:>10.0} states/sec");
    println!("telemetry on  : {watched:>10.0} states/sec");
    println!(
        "overhead      : {overhead:>9.1}%  (target <= 5%) {}",
        if overhead <= 5.0 { "ok" } else { "EXCEEDED" }
    );

    // Partial-order reduction: the same certificate scope with the
    // retired-copy quotient on. Both runs certify (the reduction preserves
    // verdicts), so the states ratio is the quotient's compression — a
    // structural number, identical on every machine.
    println!("\n== partial-order reduction (parallel t=8)");
    let por_cfg = ExploreConfig { por: true, ..cfg };
    let full_states = states(&ParallelExplorer::new(8).explore(&proto, &cfg));
    let por_start = Instant::now();
    let por_outcome = ParallelExplorer::new(8).explore(&proto, &por_cfg);
    let por_elapsed = por_start.elapsed().as_secs_f64();
    let por_states = states(&por_outcome);
    assert!(por_states > 0, "reduced run must still certify");
    let ratio = full_states as f64 / por_states as f64;
    println!("por off       : {full_states:>10} states");
    println!(
        "por on        : {por_states:>10} states  ({:.0} states/sec)",
        por_states as f64 / por_elapsed
    );
    println!("reduction     : {ratio:>10.2}x");

    if let Some(path) = out {
        let registry = Registry::new();
        registry.set_value("explore.reduction_ratio", ratio);
        std::fs::write(&path, registry.snapshot().to_json()).expect("write --out snapshot");
        println!("wrote explore.reduction_ratio to {path}");
    }
}
