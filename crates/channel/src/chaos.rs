//! Deterministic chaos: a fault-injecting decorator over any channel.
//!
//! The paper's adversary only *delays and deletes* packets; real non-FIFO
//! physical layers also duplicate, corrupt, partition, and burst-lose.
//! [`ChaosChannel`] layers exactly those faults over any inner [`Channel`],
//! driven by a seeded [`FaultPlan`], so every protocol × channel pairing can
//! be pushed through a storm and either survive or fail with a replayable
//! diagnosis:
//!
//! - **Determinism.** All randomness comes from one [`nonfifo_rng::StdRng`]
//!   seeded at construction; the same `(seed, plan)` against the same
//!   workload replays the identical fault sequence, bit for bit.
//! - **Soundness.** The PL1 monitor distinguishes chaos from protocol bugs
//!   because every injected copy is *declared*: duplicates and corrupted
//!   replacements surface through
//!   [`drain_injected_sends`](Channel::drain_injected_sends) as legitimate
//!   sends, drops surface through [`drain_drops`](Channel::drain_drops), and
//!   chaos-minted copy ids live in a disjoint id range
//!   ([`CHAOS_COPY_BASE`]) so they can never collide with the inner
//!   channel's.
//! - **Accountability.** Every fault is appended to a [`FaultRecord`] log,
//!   which the stall watchdog folds into its diagnostic and its
//!   reproduction schedule.
//!
//! # Fault model
//!
//! | fault | plan line | mechanics |
//! |---|---|---|
//! | duplicate | `dup P` | forwarded copy plus an injected twin with a chaos id |
//! | drop | `drop P` | copy never reaches the inner channel; reported dropped |
//! | corrupt | `corrupt P` | original dropped, bit-flipped replacement injected |
//! | burst loss | `burst P N` | with probability `P` per send, the next `N` sends are dropped |
//! | partition | `partition S E` | every send in tick window `[S, E)` is dropped; healing is implicit at `E` |
//! | reorder storm | `storm P N` | with probability `P` per tick, deliveries buffer for `N` ticks and release in reverse |

use crate::channel::{BoxedChannel, Channel, ChannelIntrospect, FaultObserver};
use crate::corrupting::corrupt_packet;
use crate::multiset::PacketMultiset;
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use nonfifo_rng::StdRng;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// First copy id the chaos layer mints for injected copies. Inner channels
/// mint ids sequentially from 0; `2⁴⁸` sends would take centuries at
/// simulation speeds, so the ranges never meet.
pub const CHAOS_COPY_BASE: u64 = 1 << 48;

/// A seeded description of which faults to inject at what rates.
///
/// Parsed from the plan text format (see [`FaultPlan::parse`]); the
/// `Default` plan injects nothing, making [`ChaosChannel`] a transparent
/// wrapper.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability that a successfully forwarded send is duplicated.
    pub dup: f64,
    /// Probability that a send is dropped outright.
    pub drop: f64,
    /// Probability that a send is replaced by a bit-corrupted copy.
    pub corrupt: f64,
    /// `(start probability per send, burst length in sends)`.
    pub burst: Option<(f64, u32)>,
    /// Tick windows `[start, end)` during which every send is lost.
    pub partitions: Vec<(u64, u64)>,
    /// `(start probability per tick, storm length in ticks)`.
    pub storm: Option<(f64, u32)>,
}

impl FaultPlan {
    /// Parses the plan text format: one directive per line, `#` comments
    /// and blank lines ignored.
    ///
    /// ```text
    /// dup 0.15          # duplicate forwarded packets
    /// drop 0.10         # drop sends outright
    /// corrupt 0.05      # replace sends with bit-flipped copies
    /// burst 0.02 5      # 2% chance per send to lose the next 5 sends
    /// partition 40 80   # sends during ticks [40, 80) are lost
    /// storm 0.01 6      # 1% chance per tick of a 6-tick reorder storm
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the offending line and what was
    /// wrong with it.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut words = content.split_whitespace();
            let verb = words.next().expect("non-empty line has a first word");
            let args: Vec<&str> = words.collect();
            match verb {
                "dup" => plan.dup = parse_prob(line, verb, &args)?,
                "drop" => plan.drop = parse_prob(line, verb, &args)?,
                "corrupt" => plan.corrupt = parse_prob(line, verb, &args)?,
                "burst" => plan.burst = Some(parse_prob_len(line, verb, &args)?),
                "storm" => plan.storm = Some(parse_prob_len(line, verb, &args)?),
                "partition" => {
                    let (start, end) = parse_window(line, verb, &args)?;
                    plan.partitions.push((start, end));
                }
                other => {
                    return Err(PlanError {
                        line,
                        message: format!(
                            "unknown directive `{other}` (expected dup, drop, corrupt, \
                             burst, partition, or storm)"
                        ),
                    })
                }
            }
        }
        plan.partitions.sort_unstable();
        Ok(plan)
    }

    /// True if the plan injects nothing.
    pub fn is_quiet(&self) -> bool {
        *self == FaultPlan::default()
    }

    fn partitioned_at(&self, tick: u64) -> bool {
        self.partitions.iter().any(|&(s, e)| (s..e).contains(&tick))
    }
}

impl fmt::Display for FaultPlan {
    /// Canonical plan text; `parse` of the output reproduces the plan.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dup > 0.0 {
            writeln!(f, "dup {}", self.dup)?;
        }
        if self.drop > 0.0 {
            writeln!(f, "drop {}", self.drop)?;
        }
        if self.corrupt > 0.0 {
            writeln!(f, "corrupt {}", self.corrupt)?;
        }
        if let Some((p, n)) = self.burst {
            writeln!(f, "burst {p} {n}")?;
        }
        for &(s, e) in &self.partitions {
            writeln!(f, "partition {s} {e}")?;
        }
        if let Some((p, n)) = self.storm {
            writeln!(f, "storm {p} {n}")?;
        }
        Ok(())
    }
}

/// A fault-plan parse failure: the line it happened on and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// 1-based line number in the plan text.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl Error for PlanError {}

fn parse_prob(line: usize, verb: &str, args: &[&str]) -> Result<f64, PlanError> {
    let [arg] = args else {
        return Err(PlanError {
            line,
            message: format!("`{verb}` takes exactly one probability, got {}", args.len()),
        });
    };
    let p: f64 = arg.parse().map_err(|_| PlanError {
        line,
        message: format!("`{verb}`: `{arg}` is not a number"),
    })?;
    if !(0.0..=1.0).contains(&p) {
        return Err(PlanError {
            line,
            message: format!("`{verb}`: probability {p} is outside [0, 1]"),
        });
    }
    Ok(p)
}

fn parse_prob_len(line: usize, verb: &str, args: &[&str]) -> Result<(f64, u32), PlanError> {
    let [prob, len] = args else {
        return Err(PlanError {
            line,
            message: format!(
                "`{verb}` takes a probability and a length, got {} arguments",
                args.len()
            ),
        });
    };
    let p = parse_prob(line, verb, &[prob])?;
    let n: u32 = len.parse().map_err(|_| PlanError {
        line,
        message: format!("`{verb}`: length `{len}` is not a positive integer"),
    })?;
    if n == 0 {
        return Err(PlanError {
            line,
            message: format!("`{verb}`: length must be at least 1"),
        });
    }
    Ok((p, n))
}

fn parse_window(line: usize, verb: &str, args: &[&str]) -> Result<(u64, u64), PlanError> {
    let [start, end] = args else {
        return Err(PlanError {
            line,
            message: format!(
                "`{verb}` takes a start and an end tick, got {} arguments",
                args.len()
            ),
        });
    };
    let s: u64 = start.parse().map_err(|_| PlanError {
        line,
        message: format!("`{verb}`: start tick `{start}` is not an integer"),
    })?;
    let e: u64 = end.parse().map_err(|_| PlanError {
        line,
        message: format!("`{verb}`: end tick `{end}` is not an integer"),
    })?;
    if s >= e {
        return Err(PlanError {
            line,
            message: format!("`{verb}`: window [{s}, {e}) is empty"),
        });
    }
    Ok((s, e))
}

/// What kind of fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A forwarded copy was duplicated; the twin carries a chaos id.
    Duplicate {
        /// The duplicated packet value.
        packet: Packet,
        /// Chaos id of the injected twin.
        twin: CopyId,
    },
    /// A send was dropped outright (rate- or burst-driven).
    Drop {
        /// The lost packet value.
        packet: Packet,
        /// Chaos id minted for the lost copy.
        copy: CopyId,
    },
    /// A send was replaced by a bit-corrupted copy.
    Corrupt {
        /// What the protocol sent.
        original: Packet,
        /// What will be delivered instead.
        corrupted: Packet,
        /// Chaos id of the dropped original.
        dropped: CopyId,
        /// Chaos id of the injected replacement.
        injected: CopyId,
    },
    /// A loss burst began; the next `len` sends are dropped.
    BurstStart {
        /// Sends the burst will consume.
        len: u32,
    },
    /// A send was lost to an active partition window.
    PartitionDrop {
        /// The lost packet value.
        packet: Packet,
        /// Chaos id minted for the lost copy.
        copy: CopyId,
    },
    /// A partition window opened.
    PartitionStart,
    /// A partition window closed (the link healed).
    Heal,
    /// A reorder storm began; deliveries buffer for `len` ticks.
    StormStart {
        /// Ticks the storm will last.
        len: u32,
    },
    /// A reorder storm ended; `buffered` copies release in reverse order.
    StormEnd {
        /// Copies that were buffered and now release LIFO.
        buffered: usize,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Duplicate { packet, twin } => write!(f, "dup {packet} as {twin}"),
            FaultKind::Drop { packet, copy } => write!(f, "drop {packet} {copy}"),
            FaultKind::Corrupt {
                original,
                corrupted,
                ..
            } => write!(f, "corrupt {original} -> {corrupted}"),
            FaultKind::BurstStart { len } => write!(f, "burst start ({len} sends)"),
            FaultKind::PartitionDrop { packet, copy } => {
                write!(f, "partition drop {packet} {copy}")
            }
            FaultKind::PartitionStart => write!(f, "partition start"),
            FaultKind::Heal => write!(f, "heal"),
            FaultKind::StormStart { len } => write!(f, "storm start ({len} ticks)"),
            FaultKind::StormEnd { buffered } => write!(f, "storm end ({buffered} reversed)"),
        }
    }
}

/// One injected fault: when (channel tick) and what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The channel's tick counter when the fault was injected.
    pub at_tick: u64,
    /// What happened.
    pub kind: FaultKind,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}: {}", self.at_tick, self.kind)
    }
}

/// A fault-injecting decorator over any [`Channel`].
///
/// See the [module docs](self) for the fault model and the soundness
/// contract. Cloning forks the complete state — inner channel, RNG
/// position, fault log — so a forked chaos channel replays identically.
///
/// # Example
///
/// ```
/// use nonfifo_channel::{ChaosChannel, Channel, FaultObserver, FaultPlan, FifoChannel};
/// use nonfifo_ioa::{Dir, Header, Packet};
///
/// let plan = FaultPlan::parse("dup 1.0").unwrap();
/// let mut ch = ChaosChannel::new(Box::new(FifoChannel::new(Dir::Forward)), plan, 7);
/// ch.send(Packet::header_only(Header::new(0)));
/// // The duplicate is declared as a send before it can deliver.
/// assert_eq!(ch.drain_injected_sends().len(), 1);
/// assert!(ch.poll_deliver().is_some());
/// assert!(ch.poll_deliver().is_some(), "the twin also delivers");
/// ```
#[derive(Debug, Clone)]
pub struct ChaosChannel {
    inner: BoxedChannel,
    plan: FaultPlan,
    seed: u64,
    rng: StdRng,
    now: u64,
    was_partitioned: bool,
    burst_remaining: u32,
    storm_remaining: u32,
    /// LIFO buffer of deliveries captured during a storm.
    storm_buffer: Vec<(Packet, CopyId)>,
    /// Injected copies (duplicates, corruptions) awaiting delivery.
    ready: VecDeque<(Packet, CopyId)>,
    /// Injected copies not yet declared to the harness.
    injected_sends: Vec<(Packet, CopyId)>,
    /// Chaos-dropped copies not yet drained.
    pending_drops: Vec<(Packet, CopyId)>,
    log: Vec<FaultRecord>,
    next_chaos_copy: u64,
    sent: u64,
    injected: u64,
    delivered: u64,
}

impl ChaosChannel {
    /// Wraps `inner` with the given fault plan and seed.
    pub fn new(inner: BoxedChannel, plan: FaultPlan, seed: u64) -> Self {
        ChaosChannel {
            inner,
            plan,
            seed,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            was_partitioned: false,
            burst_remaining: 0,
            storm_remaining: 0,
            storm_buffer: Vec::new(),
            ready: VecDeque::new(),
            injected_sends: Vec::new(),
            pending_drops: Vec::new(),
            log: Vec::new(),
            next_chaos_copy: CHAOS_COPY_BASE,
            sent: 0,
            injected: 0,
            delivered: 0,
        }
    }

    /// The fault plan driving this channel.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The seed the fault stream was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault log so far, in injection order.
    pub fn faults(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Copies injected on top of the protocol's own sends.
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    /// The wrapped channel.
    pub fn inner(&self) -> &dyn Channel {
        self.inner.as_ref()
    }

    fn mint(&mut self) -> CopyId {
        let id = CopyId::from_raw(self.next_chaos_copy);
        self.next_chaos_copy += 1;
        id
    }

    fn record(&mut self, kind: FaultKind) {
        self.log.push(FaultRecord {
            at_tick: self.now,
            kind,
        });
    }

    /// Draws the gate only for positive rates, so a quiet plan never
    /// consumes randomness and the stream stays stable as plans grow.
    fn gate(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p)
    }

    fn drop_at_send(&mut self, packet: Packet, partition: bool) -> CopyId {
        let copy = self.mint();
        self.pending_drops.push((packet, copy));
        if partition {
            self.record(FaultKind::PartitionDrop { packet, copy });
        } else {
            self.record(FaultKind::Drop { packet, copy });
        }
        copy
    }

    fn inject(&mut self, packet: Packet) -> CopyId {
        let copy = self.mint();
        self.injected += 1;
        self.injected_sends.push((packet, copy));
        if self.storm_remaining > 0 {
            self.storm_buffer.push((packet, copy));
        } else {
            self.ready.push_back((packet, copy));
        }
        copy
    }

    /// The copies held by the chaos layer itself (injected twins awaiting
    /// delivery plus storm captures), as a multiset — the single source all
    /// introspection counts read from. Chaos copy ids never collide with the
    /// inner channel's, so the two buffers always merge cleanly.
    fn overlay(&self) -> PacketMultiset {
        let mut ms = PacketMultiset::new();
        for &(p, c) in self.ready.iter().chain(self.storm_buffer.iter()) {
            ms.insert(p, c);
        }
        ms
    }
}

impl Channel for ChaosChannel {
    fn dir(&self) -> Dir {
        self.inner.dir()
    }

    fn send(&mut self, packet: Packet) -> CopyId {
        self.sent += 1;
        if self.plan.partitioned_at(self.now) {
            return self.drop_at_send(packet, true);
        }
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            return self.drop_at_send(packet, false);
        }
        if let Some((p, len)) = self.plan.burst {
            if self.gate(p) {
                self.record(FaultKind::BurstStart { len });
                // This send is the burst's first victim.
                self.burst_remaining = len - 1;
                return self.drop_at_send(packet, false);
            }
        }
        if self.gate(self.plan.drop) {
            return self.drop_at_send(packet, false);
        }
        if self.gate(self.plan.corrupt) {
            let corrupted = corrupt_packet(packet);
            let dropped = self.mint();
            self.pending_drops.push((packet, dropped));
            let injected = self.inject(corrupted);
            self.record(FaultKind::Corrupt {
                original: packet,
                corrupted,
                dropped,
                injected,
            });
            return dropped;
        }
        let copy = self.inner.send(packet);
        if self.gate(self.plan.dup) {
            let twin = self.inject(packet);
            self.record(FaultKind::Duplicate { packet, twin });
        }
        copy
    }

    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)> {
        if self.storm_remaining > 0 {
            // Capture everything the inner channel wants to deliver; it
            // releases in reverse once the storm passes.
            while let Some(hit) = self.inner.poll_deliver() {
                self.storm_buffer.push(hit);
            }
            while let Some(hit) = self.ready.pop_front() {
                self.storm_buffer.push(hit);
            }
            return None;
        }
        let hit = self
            .storm_buffer
            .pop()
            .or_else(|| self.ready.pop_front())
            .or_else(|| self.inner.poll_deliver());
        if hit.is_some() {
            self.delivered += 1;
        }
        hit
    }

    fn tick(&mut self) {
        self.inner.tick();
        self.now += 1;
        let partitioned = self.plan.partitioned_at(self.now);
        if partitioned && !self.was_partitioned {
            self.record(FaultKind::PartitionStart);
        } else if !partitioned && self.was_partitioned {
            self.record(FaultKind::Heal);
        }
        self.was_partitioned = partitioned;
        if self.storm_remaining > 0 {
            self.storm_remaining -= 1;
            if self.storm_remaining == 0 {
                let buffered = self.storm_buffer.len();
                self.record(FaultKind::StormEnd { buffered });
            }
        } else if let Some((p, len)) = self.plan.storm {
            if self.gate(p) {
                self.storm_remaining = len;
                self.record(FaultKind::StormStart { len });
            }
        }
    }

    fn in_transit_len(&self) -> usize {
        self.inner.in_transit_len() + self.ready.len() + self.storm_buffer.len()
    }

    fn total_sent(&self) -> u64 {
        self.sent + self.injected
    }

    fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl ChannelIntrospect for ChaosChannel {
    fn header_copies(&self, h: Header) -> usize {
        self.inner.header_copies(h) + self.overlay().header_copies(h)
    }

    fn packet_copies(&self, p: Packet) -> usize {
        self.inner.packet_copies(p) + self.overlay().packet_copies(p)
    }

    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        // Chaos ids are all ≥ CHAOS_COPY_BASE, far above any send-count
        // watermark, so injected copies count as fresh — the staleness
        // estimate can only overcount via the inner channel, which is the
        // safe direction for ghost consumers (they flush more, not less).
        self.inner.header_copies_older_than(h, watermark)
            + self.overlay().header_copies_older_than(h, watermark)
    }

    fn transit_census(&self) -> Vec<(Packet, usize)> {
        self.overlay().census_with(
            self.inner
                .transit_census()
                .into_iter()
                .flat_map(|(p, n)| std::iter::repeat_n(p, n)),
        )
    }
}

impl FaultObserver for ChaosChannel {
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)> {
        let mut drops = self.inner.drain_drops();
        drops.append(&mut self.pending_drops);
        drops
    }

    fn drain_injected_sends(&mut self) -> Vec<(Packet, CopyId)> {
        std::mem::take(&mut self.injected_sends)
    }

    fn active_faults(&self) -> Vec<String> {
        let mut active = self.inner.active_faults();
        if self.plan.partitioned_at(self.now) {
            let window = self
                .plan
                .partitions
                .iter()
                .find(|&&(s, e)| (s..e).contains(&self.now))
                .expect("partitioned_at found a window");
            active.push(format!(
                "partitioned (window [{}, {}), now {})",
                window.0, window.1, self.now
            ));
        }
        if self.burst_remaining > 0 {
            active.push(format!("loss burst ({} sends left)", self.burst_remaining));
        }
        if self.storm_remaining > 0 {
            active.push(format!(
                "reorder storm ({} ticks left, {} buffered)",
                self.storm_remaining,
                self.storm_buffer.len()
            ));
        }
        active
    }

    fn fault_log(&self) -> Vec<FaultRecord> {
        self.log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FifoChannel;
    use nonfifo_ioa::{Event, SpecMonitor};

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    fn chaos(plan: &str, seed: u64) -> ChaosChannel {
        ChaosChannel::new(
            Box::new(FifoChannel::new(Dir::Forward)),
            FaultPlan::parse(plan).unwrap(),
            seed,
        )
    }

    /// Feeds a send/poll/tick workload, declaring everything to a fresh
    /// monitor the way the simulation harness does; returns the delivered
    /// sequence and asserts PL1 stayed clean.
    fn observe_round(
        ch: &mut ChaosChannel,
        monitor: &mut SpecMonitor,
        got: &mut Vec<(Packet, CopyId)>,
    ) {
        let dir = ch.dir();
        for (packet, copy) in ch.drain_injected_sends() {
            monitor
                .observe(&Event::SendPkt { dir, packet, copy })
                .unwrap();
        }
        for (packet, copy) in ch.drain_drops() {
            monitor
                .observe(&Event::DropPkt { dir, packet, copy })
                .unwrap();
        }
        while let Some((packet, copy)) = ch.poll_deliver() {
            monitor
                .observe(&Event::ReceivePkt { dir, packet, copy })
                .unwrap();
            got.push((packet, copy));
        }
        ch.tick();
    }

    fn run_monitored(ch: &mut ChaosChannel, sends: u32) -> Vec<(Packet, CopyId)> {
        let mut monitor = SpecMonitor::new();
        let dir = ch.dir();
        let mut got = Vec::new();
        for i in 0..sends {
            let pkt = p(i % 4);
            let copy = ch.send(pkt);
            monitor
                .observe(&Event::SendPkt {
                    dir,
                    packet: pkt,
                    copy,
                })
                .unwrap();
            observe_round(ch, &mut monitor, &mut got);
        }
        // Drain any storm tail.
        for _ in 0..64 {
            observe_round(ch, &mut monitor, &mut got);
        }
        got
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut ch = chaos("", 1);
        assert!(ch.plan().is_quiet());
        let copies: Vec<CopyId> = (0..10).map(|i| ch.send(p(i))).collect();
        let mut seen = Vec::new();
        while let Some((_, c)) = ch.poll_deliver() {
            seen.push(c);
        }
        assert_eq!(seen, copies, "quiet chaos must be FIFO-faithful");
        assert!(ch.faults().is_empty());
        assert_eq!(ch.injected_count(), 0);
    }

    #[test]
    fn duplicates_are_declared_and_pl1_clean() {
        let mut ch = chaos("dup 1.0", 3);
        let got = run_monitored(&mut ch, 10);
        assert_eq!(got.len(), 20, "every send delivers itself and a twin");
        assert_eq!(ch.injected_count(), 10);
        assert!(ch
            .faults()
            .iter()
            .all(|r| matches!(r.kind, FaultKind::Duplicate { .. })));
    }

    #[test]
    fn corruption_is_declared_and_pl1_clean() {
        let mut ch = chaos("corrupt 1.0", 3);
        let got = run_monitored(&mut ch, 8);
        assert_eq!(got.len(), 8);
        for (packet, copy) in got {
            assert!(
                packet.header().index() & 0x8000_0000 != 0,
                "every delivery is the corrupted replacement"
            );
            assert!(copy.raw() >= CHAOS_COPY_BASE);
        }
    }

    #[test]
    fn drops_are_reported() {
        let mut ch = chaos("drop 1.0", 5);
        let a = ch.send(p(0));
        assert!(a.raw() >= CHAOS_COPY_BASE, "dropped copy gets a chaos id");
        assert_eq!(ch.poll_deliver(), None);
        assert_eq!(ch.drain_drops(), vec![(p(0), a)]);
        assert_eq!(
            ch.inner().total_sent(),
            0,
            "never reached the inner channel"
        );
    }

    #[test]
    fn burst_drops_consecutive_sends() {
        let mut ch = chaos("burst 1.0 3", 5);
        for i in 0..3 {
            ch.send(p(i));
        }
        assert_eq!(ch.drain_drops().len(), 3);
        assert_eq!(
            ch.faults()
                .iter()
                .filter(|r| matches!(r.kind, FaultKind::BurstStart { .. }))
                .count(),
            1,
            "one burst covers all three sends"
        );
    }

    #[test]
    fn partition_window_loses_sends_then_heals() {
        let mut ch = chaos("partition 2 4", 1);
        assert!(ch.send(p(0)).raw() < CHAOS_COPY_BASE); // tick 0: before window
        ch.tick(); // now 1
        ch.tick(); // now 2: window opens
        let lost = ch.send(p(1));
        assert!(lost.raw() >= CHAOS_COPY_BASE);
        ch.tick(); // now 3
        ch.tick(); // now 4: healed
        assert!(ch.send(p(2)).raw() < CHAOS_COPY_BASE);
        let kinds: Vec<_> = ch.faults().iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&FaultKind::PartitionStart));
        assert!(kinds.contains(&FaultKind::Heal));
        assert_eq!(ch.drain_drops().len(), 1);
    }

    #[test]
    fn storm_reverses_deliveries() {
        let mut ch = chaos("storm 1.0 2", 1);
        ch.tick(); // storm starts (prob 1.0)
        let a = ch.send(p(0));
        let b = ch.send(p(1));
        assert_eq!(ch.poll_deliver(), None, "storm buffers deliveries");
        ch.tick();
        ch.tick(); // storm over (2 ticks elapsed)... may restart; drain first
        let first = ch.storm_buffer.is_empty();
        assert!(!first, "copies were buffered");
        // Pull everything buffered; LIFO means b before a.
        let mut out = Vec::new();
        while let Some((_, c)) = ch.poll_deliver() {
            out.push(c);
        }
        assert_eq!(out, vec![b, a]);
    }

    #[test]
    fn same_seed_and_plan_replays_identically() {
        let run = |seed| {
            let mut ch = chaos("dup 0.3\ndrop 0.2\ncorrupt 0.1\nstorm 0.2 3", seed);
            let got = run_monitored(&mut ch, 200);
            (got, ch.faults().to_vec())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1, "different seeds diverge");
    }

    #[test]
    fn clone_forks_the_fault_stream() {
        let mut a = chaos("drop 0.5", 9);
        for i in 0..10 {
            a.send(p(i));
        }
        let mut b = a.clone();
        let fate_a: Vec<u64> = (0..20).map(|i| a.send(p(i)).raw()).collect();
        let fate_b: Vec<u64> = (0..20).map(|i| b.send(p(i)).raw()).collect();
        assert_eq!(fate_a, fate_b);
    }

    #[test]
    fn census_sees_all_buffers() {
        let mut ch = chaos("dup 1.0", 2);
        ch.send(p(0)); // inner queue has one, ready has the twin
        let census = ch.transit_census();
        assert_eq!(census, vec![(p(0), 2)]);
    }

    #[test]
    fn active_faults_describe_state() {
        let ch = chaos("partition 0 100", 1);
        assert!(ch.active_faults()[0].contains("partitioned"));
        let mut ch = chaos("burst 1.0 5", 1);
        ch.send(p(0));
        assert!(ch.active_faults()[0].contains("burst"));
    }

    mod plan_parsing {
        use super::*;

        #[test]
        fn full_plan_round_trips() {
            let text =
                "dup 0.15\ndrop 0.1\ncorrupt 0.05\nburst 0.02 5\npartition 40 80\nstorm 0.01 6\n";
            let plan = FaultPlan::parse(text).unwrap();
            assert_eq!(plan.dup, 0.15);
            assert_eq!(plan.burst, Some((0.02, 5)));
            assert_eq!(plan.partitions, vec![(40, 80)]);
            assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        }

        #[test]
        fn comments_and_blanks_ignored() {
            let plan = FaultPlan::parse("# nothing\n\n  dup 0.5 # half\n").unwrap();
            assert_eq!(plan.dup, 0.5);
        }

        #[test]
        fn errors_name_the_line() {
            let err = FaultPlan::parse("dup 0.1\nflood 3\n").unwrap_err();
            assert_eq!(err.line, 2);
            assert!(err.to_string().contains("flood"));
            let err = FaultPlan::parse("drop 1.5").unwrap_err();
            assert!(err.message.contains("outside [0, 1]"));
            let err = FaultPlan::parse("partition 9 3").unwrap_err();
            assert!(err.message.contains("empty"));
            let err = FaultPlan::parse("burst 0.1").unwrap_err();
            assert!(err.message.contains("length"));
        }
    }
}
