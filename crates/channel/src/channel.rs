//! The physical-layer channel abstraction.
//!
//! The channel API is split into three traits along the lines a caller
//! actually needs:
//!
//! * [`Channel`] — the minimal core: the paper's two actions plus the
//!   simulation clock. Everything a protocol harness needs to *run*.
//! * [`ChannelIntrospect`] — read-only views of the in-transit multiset
//!   (per-header counts, stale populations, the census). Everything an
//!   adversary or a telemetry layer needs to *measure*.
//! * [`FaultObserver`] — the fault-side ledger (drops, injected sends,
//!   active fault windows, the fault log). Everything a monitor needs to
//!   stay *sound* under chaos.
//!
//! Concrete channels implement all three; [`InstrumentedChannel`] bundles
//! them back together behind one object-safe trait (with a blanket impl) so
//! downstream code that holds a [`BoxedChannel`] keeps the full surface
//! without naming three traits.

use crate::chaos::FaultRecord;
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use std::fmt;

/// A unidirectional physical channel (one `PLᵗ→ʳ` or `PLʳ→ᵗ` of the paper).
///
/// The interface mirrors the paper's two actions — `send_pkt` is
/// [`send`](Channel::send), `receive_pkt` is one successful
/// [`poll_deliver`](Channel::poll_deliver) — plus a
/// [`tick`](Channel::tick) clock and the aggregate counters.
///
/// Implementations guarantee PL1 by construction: every copy id is minted by
/// exactly one `send` and yielded by at most one `poll_deliver` (or one
/// drained drop).
pub trait Channel: fmt::Debug {
    /// Which direction this channel carries.
    fn dir(&self) -> Dir;

    /// `send_pkt(p)`: puts a fresh copy of `packet` on the channel and
    /// returns its minted identity.
    fn send(&mut self, packet: Packet) -> CopyId;

    /// Delivers the next packet the channel chooses to deliver, if any.
    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)>;

    /// Advances the channel's internal clock one step (latency, trickle
    /// release, …). Default: no-op.
    fn tick(&mut self) {}

    /// Number of copies currently in transit (sent, not yet delivered or
    /// dropped, and not yet queued for delivery).
    fn in_transit_len(&self) -> usize;

    /// Total `send_pkt` actions so far.
    fn total_sent(&self) -> u64;

    /// Total `receive_pkt` actions so far.
    fn total_delivered(&self) -> u64;
}

/// Read-only introspection of the in-transit multiset.
///
/// The adversaries steer by these counts (stale populations, dominant
/// packets) and the telemetry layer reads them as the single source of
/// truth for its gauges — they are views, never mutations.
pub trait ChannelIntrospect: Channel {
    /// Copies in transit with header `h`.
    fn header_copies(&self, h: Header) -> usize;

    /// Copies in transit of the exact packet value `p`.
    fn packet_copies(&self, p: Packet) -> usize;

    /// Copies in transit with header `h` that were minted before `watermark`
    /// — the "stale population" relative to a round boundary. Used by the
    /// simulation harness to compute ghost staleness bounds for
    /// oracle-assisted protocol reconstructions.
    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize;

    /// Per-packet-value counts of copies currently inside the channel
    /// (delayed *or* queued for delivery), for stall diagnostics. Unlike
    /// [`in_transit_len`](Channel::in_transit_len) this sweeps every
    /// internal buffer. Default: empty (opaque channel).
    fn transit_census(&self) -> Vec<(Packet, usize)> {
        Vec::new()
    }
}

/// The fault-side ledger of a channel.
///
/// Lossy and chaotic channels decide to drop or inject copies on their own;
/// the harness drains those decisions each step so every fault becomes a
/// logged event (`DropPkt` / declared `SendPkt`) and the PL1 monitor stays
/// sound. Fault-free channels take every default.
pub trait FaultObserver: Channel {
    /// Copies the channel has decided to drop since the last call; the
    /// harness logs these as `DropPkt` events.
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)>;

    /// Copies a fault layer has *injected* (duplicates, corrupted
    /// replacements) since the last call. The harness observes each as a
    /// `SendPkt` before the copy can be delivered, which keeps the PL1
    /// monitor sound under chaos: an injected fault is a declared send,
    /// distinguishable from a protocol bug. Default: none.
    fn drain_injected_sends(&mut self) -> Vec<(Packet, CopyId)> {
        Vec::new()
    }

    /// Human-readable descriptions of fault conditions active right now
    /// (partition windows, loss bursts, reorder storms). Default: none.
    fn active_faults(&self) -> Vec<String> {
        Vec::new()
    }

    /// The record of faults injected so far, in injection order.
    /// Default: empty (fault-free channel).
    fn fault_log(&self) -> Vec<FaultRecord> {
        Vec::new()
    }
}

/// The full channel surface behind one object-safe trait.
///
/// The simulation engine holds channels as trait objects and forks them for
/// the boundness oracle, so the bundle adds [`clone_box`] on top of the
/// three capability traits. The blanket impl covers every `Clone` channel —
/// concrete implementations never write `clone_box` by hand.
///
/// [`clone_box`]: InstrumentedChannel::clone_box
pub trait InstrumentedChannel: ChannelIntrospect + FaultObserver {
    /// Clones the channel behind a box.
    fn clone_box(&self) -> BoxedChannel;
}

impl<T> InstrumentedChannel for T
where
    T: ChannelIntrospect + FaultObserver + Clone + 'static,
{
    fn clone_box(&self) -> BoxedChannel {
        Box::new(self.clone())
    }
}

/// Folds an iterator of in-transit packet values into the deterministic
/// per-value histogram that [`ChannelIntrospect::transit_census`] returns.
pub(crate) fn census_from_iter(packets: impl Iterator<Item = Packet>) -> Vec<(Packet, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for p in packets {
        *counts.entry(p).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// A boxed channel trait object carrying the full (core + introspect +
/// fault) surface.
pub type BoxedChannel = Box<dyn InstrumentedChannel>;

impl Clone for BoxedChannel {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FifoChannel;

    #[test]
    fn boxed_channel_is_cloneable() {
        let mut ch: BoxedChannel = Box::new(FifoChannel::new(Dir::Forward));
        ch.send(Packet::header_only(Header::new(0)));
        let mut forked = ch.clone();
        // The fork sees the in-flight packet but evolves independently.
        assert_eq!(forked.in_transit_len(), 1);
        forked.poll_deliver().expect("delivery in fork");
        assert_eq!(forked.in_transit_len(), 0);
        assert_eq!(ch.in_transit_len(), 1);
    }
}
