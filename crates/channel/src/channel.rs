//! The physical-layer channel abstraction.

use crate::chaos::FaultRecord;
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use std::fmt;

/// A unidirectional physical channel (one `PLᵗ→ʳ` or `PLʳ→ᵗ` of the paper).
///
/// The interface mirrors the paper's two actions — `send_pkt` is
/// [`send`](Channel::send), `receive_pkt` is one successful
/// [`poll_deliver`](Channel::poll_deliver) — plus simulation plumbing:
/// a [`tick`](Channel::tick) clock, introspection of the in-transit
/// multiset, and drop draining so the harness can log `DropPkt` events.
///
/// Implementations guarantee PL1 by construction: every copy id is minted by
/// exactly one `send` and yielded by at most one `poll_deliver` (or one
/// drained drop).
pub trait Channel: fmt::Debug {
    /// Which direction this channel carries.
    fn dir(&self) -> Dir;

    /// `send_pkt(p)`: puts a fresh copy of `packet` on the channel and
    /// returns its minted identity.
    fn send(&mut self, packet: Packet) -> CopyId;

    /// Delivers the next packet the channel chooses to deliver, if any.
    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)>;

    /// Advances the channel's internal clock one step (latency, trickle
    /// release, …). Default: no-op.
    fn tick(&mut self) {}

    /// Number of copies currently in transit (sent, not yet delivered or
    /// dropped, and not yet queued for delivery).
    fn in_transit_len(&self) -> usize;

    /// Copies in transit with header `h`.
    fn header_copies(&self, h: Header) -> usize;

    /// Copies in transit of the exact packet value `p`.
    fn packet_copies(&self, p: Packet) -> usize;

    /// Copies in transit with header `h` that were minted before `watermark`
    /// — the "stale population" relative to a round boundary. Used by the
    /// simulation harness to compute ghost staleness bounds for
    /// oracle-assisted protocol reconstructions.
    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize;

    /// Copies the channel has decided to drop since the last call; the
    /// harness logs these as `DropPkt` events.
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)>;

    /// Copies a fault layer has *injected* (duplicates, corrupted
    /// replacements) since the last call. The harness observes each as a
    /// `SendPkt` before the copy can be delivered, which keeps the PL1
    /// monitor sound under chaos: an injected fault is a declared send,
    /// distinguishable from a protocol bug. Default: none.
    fn drain_injected_sends(&mut self) -> Vec<(Packet, CopyId)> {
        Vec::new()
    }

    /// Per-packet-value counts of copies currently inside the channel
    /// (delayed *or* queued for delivery), for stall diagnostics. Unlike
    /// [`in_transit_len`](Channel::in_transit_len) this sweeps every
    /// internal buffer. Default: empty (opaque channel).
    fn transit_census(&self) -> Vec<(Packet, usize)> {
        Vec::new()
    }

    /// Human-readable descriptions of fault conditions active right now
    /// (partition windows, loss bursts, reorder storms). Default: none.
    fn active_faults(&self) -> Vec<String> {
        Vec::new()
    }

    /// The record of faults injected so far, in injection order.
    /// Default: empty (fault-free channel).
    fn fault_log(&self) -> Vec<FaultRecord> {
        Vec::new()
    }

    /// Total `send_pkt` actions so far.
    fn total_sent(&self) -> u64;

    /// Total `receive_pkt` actions so far.
    fn total_delivered(&self) -> u64;

    /// Clones the channel behind a box (channels are held as trait objects
    /// by the simulation engine and must be forkable for the boundness
    /// oracle).
    fn clone_box(&self) -> BoxedChannel;
}

/// Folds an iterator of in-transit packet values into the deterministic
/// per-value histogram that [`Channel::transit_census`] returns.
pub(crate) fn census_from_iter(packets: impl Iterator<Item = Packet>) -> Vec<(Packet, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for p in packets {
        *counts.entry(p).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// A boxed channel trait object.
pub type BoxedChannel = Box<dyn Channel>;

impl Clone for BoxedChannel {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FifoChannel;

    #[test]
    fn boxed_channel_is_cloneable() {
        let mut ch: BoxedChannel = Box::new(FifoChannel::new(Dir::Forward));
        ch.send(Packet::header_only(Header::new(0)));
        let mut forked = ch.clone();
        // The fork sees the in-flight packet but evolves independently.
        assert_eq!(forked.in_transit_len(), 1);
        forked.poll_deliver().expect("delivery in fork");
        assert_eq!(forked.in_transit_len(), 0);
        assert_eq!(ch.in_transit_len(), 1);
    }
}
