//! A reliable FIFO channel — the service the data-link layer provides,
//! used here as a reference substrate and for latency modelling.

use crate::channel::{census_from_iter, Channel, ChannelIntrospect, FaultObserver};
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use std::collections::VecDeque;

/// A reliable, order-preserving channel with optional fixed latency.
///
/// Useful as a control: every protocol in the workspace must be trivially
/// correct over it.
///
/// # Example
///
/// ```
/// use nonfifo_channel::{Channel, FifoChannel};
/// use nonfifo_ioa::{Dir, Header, Packet};
///
/// let mut ch = FifoChannel::with_latency(Dir::Forward, 2);
/// ch.send(Packet::header_only(Header::new(0)));
/// assert!(ch.poll_deliver().is_none()); // not ready yet
/// ch.tick();
/// ch.tick();
/// assert!(ch.poll_deliver().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct FifoChannel {
    dir: Dir,
    latency: u64,
    now: u64,
    queue: VecDeque<(Packet, CopyId, u64)>,
    next_copy: u64,
    sent: u64,
    delivered: u64,
}

impl FifoChannel {
    /// Creates a zero-latency FIFO channel.
    pub fn new(dir: Dir) -> Self {
        FifoChannel::with_latency(dir, 0)
    }

    /// Creates a FIFO channel whose packets become deliverable `latency`
    /// ticks after being sent.
    pub fn with_latency(dir: Dir, latency: u64) -> Self {
        FifoChannel {
            dir,
            latency,
            now: 0,
            queue: VecDeque::new(),
            next_copy: 0,
            sent: 0,
            delivered: 0,
        }
    }
}

impl Channel for FifoChannel {
    fn dir(&self) -> Dir {
        self.dir
    }

    fn send(&mut self, packet: Packet) -> CopyId {
        let copy = CopyId::from_raw(self.next_copy);
        self.next_copy += 1;
        self.sent += 1;
        self.queue
            .push_back((packet, copy, self.now + self.latency));
        copy
    }

    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)> {
        match self.queue.front() {
            Some(&(_, _, ready_at)) if ready_at <= self.now => {
                let (packet, copy, _) = self.queue.pop_front().expect("front exists");
                self.delivered += 1;
                Some((packet, copy))
            }
            _ => None,
        }
    }

    fn tick(&mut self) {
        self.now += 1;
    }

    fn in_transit_len(&self) -> usize {
        self.queue.len()
    }

    fn total_sent(&self) -> u64 {
        self.sent
    }

    fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl ChannelIntrospect for FifoChannel {
    fn header_copies(&self, h: Header) -> usize {
        self.queue
            .iter()
            .filter(|(p, _, _)| p.header() == h)
            .count()
    }

    fn packet_copies(&self, p: Packet) -> usize {
        self.queue.iter().filter(|(q, _, _)| *q == p).count()
    }

    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        self.queue
            .iter()
            .filter(|(p, c, _)| p.header() == h && *c < watermark)
            .count()
    }

    fn transit_census(&self) -> Vec<(Packet, usize)> {
        census_from_iter(self.queue.iter().map(|&(p, _, _)| p))
    }
}

impl FaultObserver for FifoChannel {
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    #[test]
    fn preserves_order() {
        let mut ch = FifoChannel::new(Dir::Forward);
        ch.send(p(0));
        ch.send(p(1));
        ch.send(p(2));
        let mut seen = Vec::new();
        while let Some((pkt, _)) = ch.poll_deliver() {
            seen.push(pkt.header().index());
        }
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(ch.total_delivered(), 3);
    }

    #[test]
    fn latency_gates_delivery() {
        let mut ch = FifoChannel::with_latency(Dir::Backward, 3);
        ch.send(p(0));
        for _ in 0..2 {
            ch.tick();
            assert!(ch.poll_deliver().is_none());
        }
        ch.tick();
        assert!(ch.poll_deliver().is_some());
    }

    #[test]
    fn counts() {
        let mut ch = FifoChannel::new(Dir::Forward);
        ch.send(p(0));
        ch.send(p(0));
        ch.send(p(1));
        assert_eq!(ch.in_transit_len(), 3);
        assert_eq!(ch.packet_copies(p(0)), 2);
        assert_eq!(ch.header_copies(Header::new(1)), 1);
    }
}
