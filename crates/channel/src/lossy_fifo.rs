//! A FIFO channel with i.i.d. packet loss — the classic domain of the
//! alternating-bit protocol [BSW69].

use crate::channel::{census_from_iter, Channel, ChannelIntrospect, FaultObserver};
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use nonfifo_rng::StdRng;
use std::collections::VecDeque;

/// An order-preserving channel that loses each packet with probability
/// `loss`, decided at send time. Never reorders or duplicates.
///
/// The alternating-bit protocol is correct over a pair of these; it is *not*
/// correct over [`AdversarialChannel`](crate::AdversarialChannel) — that
/// contrast is experiment E8.
///
/// # Example
///
/// ```
/// use nonfifo_channel::{Channel, LossyFifoChannel};
/// use nonfifo_ioa::{Dir, Header, Packet};
///
/// let mut ch = LossyFifoChannel::new(Dir::Forward, 0.5, 11);
/// let mut got = 0;
/// for _ in 0..100 {
///     ch.send(Packet::header_only(Header::new(0)));
///     if ch.poll_deliver().is_some() { got += 1; }
/// }
/// assert!(got > 25 && got < 75, "got = {got}");
/// ```
#[derive(Debug, Clone)]
pub struct LossyFifoChannel {
    dir: Dir,
    loss: f64,
    rng: StdRng,
    queue: VecDeque<(Packet, CopyId)>,
    drops: Vec<(Packet, CopyId)>,
    next_copy: u64,
    sent: u64,
    delivered: u64,
}

impl LossyFifoChannel {
    /// Creates a lossy FIFO channel with loss probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not in `[0, 1]`.
    pub fn new(dir: Dir, loss: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss),
            "loss must be a probability, got {loss}"
        );
        LossyFifoChannel {
            dir,
            loss,
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            drops: Vec::new(),
            next_copy: 0,
            sent: 0,
            delivered: 0,
        }
    }

    /// The loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }
}

impl Channel for LossyFifoChannel {
    fn dir(&self) -> Dir {
        self.dir
    }

    fn send(&mut self, packet: Packet) -> CopyId {
        let copy = CopyId::from_raw(self.next_copy);
        self.next_copy += 1;
        self.sent += 1;
        if self.rng.gen_bool(self.loss) {
            self.drops.push((packet, copy));
        } else {
            self.queue.push_back((packet, copy));
        }
        copy
    }

    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)> {
        let hit = self.queue.pop_front();
        if hit.is_some() {
            self.delivered += 1;
        }
        hit
    }

    fn in_transit_len(&self) -> usize {
        self.queue.len()
    }

    fn total_sent(&self) -> u64 {
        self.sent
    }

    fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl ChannelIntrospect for LossyFifoChannel {
    fn header_copies(&self, h: Header) -> usize {
        self.queue.iter().filter(|(p, _)| p.header() == h).count()
    }

    fn packet_copies(&self, p: Packet) -> usize {
        self.queue.iter().filter(|(q, _)| *q == p).count()
    }

    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        self.queue
            .iter()
            .filter(|(p, c)| p.header() == h && *c < watermark)
            .count()
    }

    fn transit_census(&self) -> Vec<(Packet, usize)> {
        census_from_iter(self.queue.iter().map(|&(p, _)| p))
    }
}

impl FaultObserver for LossyFifoChannel {
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)> {
        std::mem::take(&mut self.drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    #[test]
    fn zero_loss_is_fifo() {
        let mut ch = LossyFifoChannel::new(Dir::Forward, 0.0, 1);
        ch.send(p(0));
        ch.send(p(1));
        assert_eq!(ch.poll_deliver().unwrap().0.header().index(), 0);
        assert_eq!(ch.poll_deliver().unwrap().0.header().index(), 1);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut ch = LossyFifoChannel::new(Dir::Forward, 1.0, 1);
        ch.send(p(0));
        assert_eq!(ch.poll_deliver(), None);
        assert_eq!(ch.drain_drops().len(), 1);
        assert_eq!(ch.in_transit_len(), 0);
    }

    #[test]
    fn survivors_keep_send_order() {
        let mut ch = LossyFifoChannel::new(Dir::Forward, 0.5, 42);
        for i in 0..200 {
            ch.send(p(i));
        }
        let mut last = None;
        while let Some((pkt, _)) = ch.poll_deliver() {
            if let Some(prev) = last {
                assert!(pkt.header().index() > prev);
            }
            last = Some(pkt.header().index());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_loss() {
        let _ = LossyFifoChannel::new(Dir::Forward, -0.1, 0);
    }
}
