//! A non-FIFO channel with *bounded* overtaking distance.
//!
//! The paper's lower bounds need arbitrary reordering; real networks mostly
//! reorder within a bounded horizon. This channel quantifies the gap: a
//! packet can be overtaken by at most `bound − 1` packets sent after it.
//! Sliding-window protocols with modular headers become correct again once
//! the reorder bound is small enough relative to their header space —
//! experiment E9 maps that crossover.

use crate::channel::{census_from_iter, Channel, ChannelIntrospect, FaultObserver};
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use nonfifo_rng::StdRng;
use std::collections::VecDeque;

/// Fraction of packets the channel holds back.
const HOLD_PROBABILITY: f64 = 0.25;

/// A reordering channel with overtaking distance `< bound`.
///
/// Each sent packet is either queued FIFO, or (with probability ¼) *held*
/// and re-enqueued after exactly `bound` further sends (or `bound` ticks,
/// whichever comes first — so a quiescent sender still drains the channel).
/// A held packet sent at index `s` re-enters the queue before any packet
/// sent later than `s` could have been held until, so it is overtaken by at
/// most `bound − 1` later sends. `bound = 1` degenerates to FIFO.
///
/// # Example
///
/// ```
/// use nonfifo_channel::{BoundedReorderChannel, Channel};
/// use nonfifo_ioa::{Dir, Header, Packet};
///
/// let mut ch = BoundedReorderChannel::new(Dir::Forward, 1, 3);
/// ch.send(Packet::header_only(Header::new(0)));
/// ch.send(Packet::header_only(Header::new(1)));
/// // bound = 1 ⇒ FIFO.
/// assert_eq!(ch.poll_deliver().unwrap().0.header().index(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct BoundedReorderChannel {
    dir: Dir,
    bound: u64,
    rng: StdRng,
    queue: VecDeque<(Packet, CopyId)>,
    // (release at send index, release at tick, packet, copy)
    held: Vec<(u64, u64, Packet, CopyId)>,
    sends: u64,
    ticks: u64,
    next_copy: u64,
    delivered: u64,
}

impl BoundedReorderChannel {
    /// Creates a channel with overtaking distance `< bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` (a packet must at least be allowed to deliver
    /// itself).
    pub fn new(dir: Dir, bound: u64, seed: u64) -> Self {
        assert!(bound >= 1, "reorder bound must be at least 1");
        BoundedReorderChannel {
            dir,
            bound,
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            held: Vec::new(),
            sends: 0,
            ticks: 0,
            next_copy: 0,
            delivered: 0,
        }
    }

    /// The reorder bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    fn release_due(&mut self) {
        let sends = self.sends;
        let ticks = self.ticks;
        // Stable order: held is kept in send order, and releases preserve it.
        let mut i = 0;
        while i < self.held.len() {
            let (rs, rt, packet, copy) = self.held[i];
            if sends >= rs || ticks >= rt {
                self.queue.push_back((packet, copy));
                self.held.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

impl Channel for BoundedReorderChannel {
    fn dir(&self) -> Dir {
        self.dir
    }

    fn send(&mut self, packet: Packet) -> CopyId {
        let copy = CopyId::from_raw(self.next_copy);
        self.next_copy += 1;
        self.sends += 1;
        // Release due holds *before* enqueueing this send, so a packet held
        // at send index s re-enters the queue ahead of the (s + bound)-th
        // send: at most bound − 1 later sends overtake it.
        self.release_due();
        // bound = 1 means a release threshold equal to the very next send:
        // indistinguishable from FIFO, so skip the hold entirely.
        if self.bound > 1 && self.rng.gen_bool(HOLD_PROBABILITY) {
            self.held.push((
                self.sends + self.bound,
                self.ticks + self.bound,
                packet,
                copy,
            ));
        } else {
            self.queue.push_back((packet, copy));
        }
        copy
    }

    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)> {
        let hit = self.queue.pop_front();
        if hit.is_some() {
            self.delivered += 1;
        }
        hit
    }

    fn tick(&mut self) {
        self.ticks += 1;
        self.release_due();
    }

    fn in_transit_len(&self) -> usize {
        self.queue.len() + self.held.len()
    }

    fn total_sent(&self) -> u64 {
        self.sends
    }

    fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl ChannelIntrospect for BoundedReorderChannel {
    fn header_copies(&self, h: Header) -> usize {
        self.queue.iter().filter(|(p, _)| p.header() == h).count()
            + self
                .held
                .iter()
                .filter(|(_, _, p, _)| p.header() == h)
                .count()
    }

    fn packet_copies(&self, p: Packet) -> usize {
        self.queue.iter().filter(|(q, _)| *q == p).count()
            + self.held.iter().filter(|(_, _, q, _)| *q == p).count()
    }

    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        self.queue
            .iter()
            .filter(|(p, c)| p.header() == h && *c < watermark)
            .count()
            + self
                .held
                .iter()
                .filter(|(_, _, p, c)| p.header() == h && *c < watermark)
                .count()
    }

    fn transit_census(&self) -> Vec<(Packet, usize)> {
        census_from_iter(
            self.queue
                .iter()
                .map(|&(p, _)| p)
                .chain(self.held.iter().map(|&(_, _, p, _)| p)),
        )
    }
}

impl FaultObserver for BoundedReorderChannel {
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    fn drain(ch: &mut BoundedReorderChannel) -> Vec<u32> {
        let mut out = Vec::new();
        loop {
            while let Some((pkt, _)) = ch.poll_deliver() {
                out.push(pkt.header().index());
            }
            if ch.in_transit_len() == 0 {
                return out;
            }
            ch.tick();
        }
    }

    #[test]
    fn bound_one_is_fifo() {
        let mut ch = BoundedReorderChannel::new(Dir::Forward, 1, 99);
        for i in 0..50 {
            ch.send(p(i));
        }
        assert_eq!(drain(&mut ch), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn overtaking_distance_is_bounded() {
        let bound = 8u64;
        let mut ch = BoundedReorderChannel::new(Dir::Forward, bound, 7);
        let mut delivered: Vec<u32> = Vec::new();
        for i in 0..500 {
            ch.send(p(i));
            while let Some((pkt, _)) = ch.poll_deliver() {
                delivered.push(pkt.header().index());
            }
        }
        delivered.extend(drain(&mut ch));
        assert_eq!(delivered.len(), 500, "everything must deliver");
        for (pos, &s) in delivered.iter().enumerate() {
            let overtakers = delivered[..pos].iter().filter(|&&x| x > s).count() as u64;
            assert!(
                overtakers < bound,
                "packet {s} overtaken by {overtakers} ≥ bound {bound}"
            );
        }
    }

    #[test]
    fn actually_reorders_for_large_bound() {
        let mut ch = BoundedReorderChannel::new(Dir::Forward, 16, 3);
        let mut order = Vec::new();
        for i in 0..200 {
            ch.send(p(i));
            while let Some((pkt, _)) = ch.poll_deliver() {
                order.push(pkt.header().index());
            }
        }
        order.extend(drain(&mut ch));
        let sorted: Vec<u32> = (0..200).collect();
        assert_ne!(order, sorted, "bound-16 channel never reordered");
    }

    #[test]
    fn quiescent_sender_still_drains_via_ticks() {
        let mut ch = BoundedReorderChannel::new(Dir::Forward, 64, 5);
        for i in 0..20 {
            ch.send(p(i));
        }
        // No more sends: ticks must flush the held packets.
        let got = drain(&mut ch);
        assert_eq!(got.len(), 20);
        assert_eq!(ch.in_transit_len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_bound() {
        let _ = BoundedReorderChannel::new(Dir::Forward, 0, 0);
    }
}
