//! The fully adversarial non-FIFO channel of the lower-bound proofs.

use crate::channel::{Channel, ChannelIntrospect, FaultObserver};
use crate::multiset::PacketMultiset;
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use std::collections::VecDeque;

/// What the channel does with freshly sent copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Park every fresh copy in the in-transit multiset; nothing is
    /// delivered unless the adversary explicitly releases it. This is the
    /// default, matching the proofs where the channel "delays the packets
    /// arbitrarily".
    Park,
    /// Deliver every fresh copy immediately, FIFO. Parked copies stay
    /// parked.
    Immediate,
    /// The "optimal behaviour from this point on" of Theorem 2.1's proof:
    /// copies minted after the watermark are delivered immediately, while
    /// copies sent earlier (the delayed pool) remain parked.
    OptimalSince(
        /// Copies with id `≥` this watermark are fresh.
        CopyId,
    ),
}

/// A non-FIFO physical channel under full adversary control.
///
/// Fresh sends are routed according to the current [`DeliveryMode`];
/// delayed copies are individually addressable, which is exactly the power
/// the paper grants the physical layer ("at each point in time there is a
/// set of packets which are in transition… the extension β can be
/// *simulated* by the physical layer, simply by replacing each packet which
/// is sent by `Aᵗ` in β by the respective packet in transition").
///
/// PL1 holds by construction; PL2 is the *caller's* obligation — an
/// adversary that parks forever is only legal against the finite
/// experiments we run, never as a claim about infinite executions.
///
/// # Example
///
/// ```
/// use nonfifo_channel::{AdversarialChannel, Channel, DeliveryMode};
/// use nonfifo_ioa::{Dir, Header, Packet};
///
/// let mut ch = AdversarialChannel::parked(Dir::Forward);
/// let p = Packet::header_only(Header::new(0));
/// let old = ch.send(p);           // parked
/// ch.set_mode(DeliveryMode::Immediate);
/// let fresh = ch.send(p);         // queued for delivery
/// assert_eq!(ch.poll_deliver(), Some((p, fresh)));
/// // Replay the stale copy whenever the adversary chooses:
/// ch.release_copy(old).unwrap();
/// assert_eq!(ch.poll_deliver(), Some((p, old)));
/// ```
#[derive(Debug)]
pub struct AdversarialChannel {
    dir: Dir,
    mode: DeliveryMode,
    parked: PacketMultiset,
    queue: VecDeque<(Packet, CopyId)>,
    drops: Vec<(Packet, CopyId)>,
    next_copy: u64,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

impl Clone for AdversarialChannel {
    fn clone(&self) -> Self {
        AdversarialChannel {
            dir: self.dir,
            mode: self.mode,
            parked: self.parked.clone(),
            queue: self.queue.clone(),
            drops: self.drops.clone(),
            next_copy: self.next_copy,
            sent: self.sent,
            delivered: self.delivered,
            dropped: self.dropped,
        }
    }

    /// Fieldwise `clone_from` so the explorer's system pool can refill a
    /// recycled channel without reallocating its buffers.
    fn clone_from(&mut self, source: &Self) {
        self.dir = source.dir;
        self.mode = source.mode;
        self.parked.clone_from(&source.parked);
        self.queue.clone_from(&source.queue);
        self.drops.clone_from(&source.drops);
        self.next_copy = source.next_copy;
        self.sent = source.sent;
        self.delivered = source.delivered;
        self.dropped = source.dropped;
    }
}

impl AdversarialChannel {
    /// Creates a channel in [`DeliveryMode::Park`].
    pub fn parked(dir: Dir) -> Self {
        AdversarialChannel::with_mode(dir, DeliveryMode::Park)
    }

    /// Creates a channel in [`DeliveryMode::Immediate`].
    pub fn immediate(dir: Dir) -> Self {
        AdversarialChannel::with_mode(dir, DeliveryMode::Immediate)
    }

    /// Creates a channel with the given mode.
    pub fn with_mode(dir: Dir, mode: DeliveryMode) -> Self {
        AdversarialChannel {
            dir,
            mode,
            parked: PacketMultiset::new(),
            queue: VecDeque::new(),
            drops: Vec::new(),
            next_copy: 0,
            sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// The current delivery mode.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// Switches delivery mode. Parked copies are unaffected.
    pub fn set_mode(&mut self, mode: DeliveryMode) {
        self.mode = mode;
    }

    /// The watermark that [`DeliveryMode::OptimalSince`] should use to mean
    /// "everything sent from now on is fresh".
    pub fn watermark(&self) -> CopyId {
        CopyId::from_raw(self.next_copy)
    }

    /// Switches to optimal-from-now behaviour (Theorem 2.1's extension γ):
    /// future sends delivered immediately, the current delayed pool frozen.
    pub fn optimal_from_now(&mut self) {
        self.mode = DeliveryMode::OptimalSince(self.watermark());
    }

    /// The delayed pool.
    pub fn parked_multiset(&self) -> &PacketMultiset {
        &self.parked
    }

    /// Releases a specific delayed copy for delivery.
    ///
    /// # Errors
    ///
    /// Returns `Err(copy)` if the copy is not currently delayed.
    pub fn release_copy(&mut self, copy: CopyId) -> Result<(), CopyId> {
        match self.parked.take_copy(copy) {
            Some(packet) => {
                self.queue.push_back((packet, copy));
                Ok(())
            }
            None => Err(copy),
        }
    }

    /// Releases the oldest delayed copy of the exact packet value `p`
    /// (the replay primitive). Returns the released copy.
    pub fn release_oldest_of_packet(&mut self, p: Packet) -> Option<(Packet, CopyId)> {
        let hit = self.parked.take_oldest_of_packet(p)?;
        self.queue.push_back(hit);
        Some(hit)
    }

    /// Releases the oldest delayed copy of `p` *minted before* `watermark`,
    /// if one exists. This is the lockstep-replay primitive of the
    /// Theorem 3.1 falsifier: substitute a genuinely stale copy for a fresh
    /// one, never the fresh copy itself.
    pub fn release_oldest_of_packet_before(
        &mut self,
        p: Packet,
        watermark: CopyId,
    ) -> Option<(Packet, CopyId)> {
        match self.parked.oldest_of_packet(p) {
            Some(copy) if copy < watermark => {
                self.release_copy(copy).expect("peeked copy is parked");
                Some((p, copy))
            }
            _ => None,
        }
    }

    /// Releases the oldest delayed copy with header `h`.
    pub fn release_oldest_of_header(&mut self, h: Header) -> Option<(Packet, CopyId)> {
        let hit = self.parked.take_oldest_of_header(h)?;
        self.queue.push_back(hit);
        Some(hit)
    }

    /// Releases every delayed copy, oldest first.
    pub fn release_all(&mut self) -> usize {
        let all = self.parked.drain_all();
        let n = all.len();
        self.queue.extend(all);
        n
    }

    /// Drops a specific delayed copy (deletes it forever).
    ///
    /// # Errors
    ///
    /// Returns `Err(copy)` if the copy is not currently delayed.
    pub fn drop_copy(&mut self, copy: CopyId) -> Result<(), CopyId> {
        match self.parked.take_copy(copy) {
            Some(packet) => {
                self.drops.push((packet, copy));
                self.dropped += 1;
                Ok(())
            }
            None => Err(copy),
        }
    }

    /// Drops the oldest delayed copy of `p`.
    pub fn drop_oldest_of_packet(&mut self, p: Packet) -> Option<CopyId> {
        let (packet, copy) = self.parked.take_oldest_of_packet(p)?;
        self.drops.push((packet, copy));
        self.dropped += 1;
        Some(copy)
    }

    /// Number of copies waiting in the delivery queue (released or routed
    /// by mode, not yet polled).
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Heap bytes currently reserved by this channel's buffers (capacities,
    /// not live lengths) — input to the explorer's frontier memory gauge.
    pub fn heap_bytes(&self) -> usize {
        self.parked.heap_bytes()
            + self.queue.capacity() * std::mem::size_of::<(Packet, CopyId)>()
            + self.drops.capacity() * std::mem::size_of::<(Packet, CopyId)>()
    }
}

impl Channel for AdversarialChannel {
    fn dir(&self) -> Dir {
        self.dir
    }

    fn send(&mut self, packet: Packet) -> CopyId {
        let copy = CopyId::from_raw(self.next_copy);
        self.next_copy += 1;
        self.sent += 1;
        let deliver_now = match self.mode {
            DeliveryMode::Park => false,
            DeliveryMode::Immediate => true,
            DeliveryMode::OptimalSince(mark) => copy >= mark,
        };
        if deliver_now {
            self.queue.push_back((packet, copy));
        } else {
            self.parked.insert(packet, copy);
        }
        copy
    }

    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)> {
        let hit = self.queue.pop_front();
        if hit.is_some() {
            self.delivered += 1;
        }
        hit
    }

    fn in_transit_len(&self) -> usize {
        self.parked.len()
    }

    fn total_sent(&self) -> u64 {
        self.sent
    }

    fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl ChannelIntrospect for AdversarialChannel {
    fn header_copies(&self, h: Header) -> usize {
        self.parked.header_copies(h)
    }

    fn packet_copies(&self, p: Packet) -> usize {
        self.parked.packet_copies(p)
    }

    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        self.parked.header_copies_older_than(h, watermark)
    }

    fn transit_census(&self) -> Vec<(Packet, usize)> {
        self.parked.census_with(self.queue.iter().map(|&(p, _)| p))
    }
}

impl FaultObserver for AdversarialChannel {
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)> {
        std::mem::take(&mut self.drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    #[test]
    fn park_mode_parks() {
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        ch.send(p(0));
        assert_eq!(ch.poll_deliver(), None);
        assert_eq!(ch.in_transit_len(), 1);
    }

    #[test]
    fn immediate_mode_delivers_fifo() {
        let mut ch = AdversarialChannel::immediate(Dir::Forward);
        let a = ch.send(p(0));
        let b = ch.send(p(1));
        assert_eq!(ch.poll_deliver(), Some((p(0), a)));
        assert_eq!(ch.poll_deliver(), Some((p(1), b)));
        assert_eq!(ch.poll_deliver(), None);
        assert_eq!(ch.total_delivered(), 2);
    }

    #[test]
    fn optimal_since_splits_old_and_new() {
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        let old = ch.send(p(0));
        ch.optimal_from_now();
        let fresh = ch.send(p(0));
        assert_eq!(ch.poll_deliver(), Some((p(0), fresh)));
        assert_eq!(ch.poll_deliver(), None);
        assert_eq!(ch.in_transit_len(), 1);
        assert_eq!(ch.parked_multiset().packet_of(old), Some(p(0)));
    }

    #[test]
    fn replay_releases_oldest_copy_first() {
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        let first = ch.send(p(0));
        let second = ch.send(p(0));
        assert_eq!(ch.release_oldest_of_packet(p(0)), Some((p(0), first)));
        assert_eq!(ch.release_oldest_of_packet(p(0)), Some((p(0), second)));
        assert_eq!(ch.release_oldest_of_packet(p(0)), None);
    }

    #[test]
    fn release_specific_copy() {
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        let a = ch.send(p(0));
        let b = ch.send(p(0));
        ch.release_copy(b).unwrap();
        assert_eq!(ch.poll_deliver(), Some((p(0), b)));
        assert_eq!(ch.release_copy(b), Err(b));
        ch.release_copy(a).unwrap();
        assert_eq!(ch.poll_deliver(), Some((p(0), a)));
    }

    #[test]
    fn drop_removes_forever() {
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        let a = ch.send(p(0));
        ch.drop_copy(a).unwrap();
        assert_eq!(ch.in_transit_len(), 0);
        assert_eq!(ch.drain_drops(), vec![(p(0), a)]);
        assert_eq!(ch.drain_drops(), vec![]);
        assert_eq!(ch.release_copy(a), Err(a));
    }

    #[test]
    fn release_all_is_oldest_first() {
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        let a = ch.send(p(1));
        let b = ch.send(p(0));
        assert_eq!(ch.release_all(), 2);
        assert_eq!(ch.poll_deliver(), Some((p(1), a)));
        assert_eq!(ch.poll_deliver(), Some((p(0), b)));
    }

    #[test]
    fn header_and_packet_counts() {
        let mut ch = AdversarialChannel::parked(Dir::Forward);
        ch.send(p(0));
        ch.send(p(0));
        ch.send(p(1));
        assert_eq!(ch.packet_copies(p(0)), 2);
        assert_eq!(ch.header_copies(Header::new(1)), 1);
    }
}
