//! A fault-injection channel that corrupts packets in flight.
//!
//! The paper's physical layer "ensures that the received messages are not
//! corrupted" (§2.1) — PL1 forbids value changes. This channel exists to
//! violate that assumption on purpose, so the test suite can demonstrate
//! that the [`SpecMonitor`](nonfifo_ioa::SpecMonitor) and the offline PL1
//! checker actually catch corruption rather than assuming it away.

use crate::channel::{census_from_iter, Channel, ChannelIntrospect, FaultObserver};
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use nonfifo_rng::StdRng;
use std::collections::VecDeque;

/// The canonical in-flight bit-flip: the header gains a bit no protocol in
/// the workspace ever sets, so a corrupted value is never mistaken for a
/// legitimate one. Payloads survive — corruption hits the header. Shared by
/// [`CorruptingChannel`] and the chaos fault layer.
pub fn corrupt_packet(p: Packet) -> Packet {
    let flipped = Header::new(p.header().index() ^ 0x8000_0000);
    match p.payload() {
        Some(w) => Packet::new(flipped, w),
        None => Packet::header_only(flipped),
    }
}

/// A FIFO channel that, with probability `corrupt`, rewrites a packet's
/// header before delivering it. Deliberately **not** PL1-compliant.
///
/// # Example
///
/// ```
/// use nonfifo_channel::{Channel, CorruptingChannel};
/// use nonfifo_ioa::{Dir, Header, Packet};
///
/// let mut ch = CorruptingChannel::new(Dir::Forward, 1.0, 1);
/// let sent = Packet::header_only(Header::new(0));
/// ch.send(sent);
/// let (got, _) = ch.poll_deliver().unwrap();
/// assert_ne!(got, sent, "always-corrupt channel must flip the value");
/// ```
#[derive(Debug, Clone)]
pub struct CorruptingChannel {
    dir: Dir,
    corrupt: f64,
    rng: StdRng,
    queue: VecDeque<(Packet, CopyId)>,
    next_copy: u64,
    sent: u64,
    delivered: u64,
}

impl CorruptingChannel {
    /// Creates a corrupting channel.
    ///
    /// # Panics
    ///
    /// Panics if `corrupt` is not in `[0, 1]`.
    pub fn new(dir: Dir, corrupt: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&corrupt),
            "corrupt must be a probability, got {corrupt}"
        );
        CorruptingChannel {
            dir,
            corrupt,
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            next_copy: 0,
            sent: 0,
            delivered: 0,
        }
    }
}

impl Channel for CorruptingChannel {
    fn dir(&self) -> Dir {
        self.dir
    }

    fn send(&mut self, packet: Packet) -> CopyId {
        let copy = CopyId::from_raw(self.next_copy);
        self.next_copy += 1;
        self.sent += 1;
        self.queue.push_back((packet, copy));
        copy
    }

    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)> {
        let (packet, copy) = self.queue.pop_front()?;
        self.delivered += 1;
        let delivered = if self.rng.gen_bool(self.corrupt) {
            corrupt_packet(packet)
        } else {
            packet
        };
        Some((delivered, copy))
    }

    fn in_transit_len(&self) -> usize {
        self.queue.len()
    }

    fn total_sent(&self) -> u64 {
        self.sent
    }

    fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl ChannelIntrospect for CorruptingChannel {
    fn header_copies(&self, h: Header) -> usize {
        self.queue.iter().filter(|(p, _)| p.header() == h).count()
    }

    fn packet_copies(&self, p: Packet) -> usize {
        self.queue.iter().filter(|(q, _)| *q == p).count()
    }

    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        self.queue
            .iter()
            .filter(|(p, c)| p.header() == h && *c < watermark)
            .count()
    }

    fn transit_census(&self) -> Vec<(Packet, usize)> {
        census_from_iter(self.queue.iter().map(|&(p, _)| p))
    }
}

impl FaultObserver for CorruptingChannel {
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_ioa::spec::{check_pl1, SpecViolation};
    use nonfifo_ioa::{Event, Execution, SpecMonitor};

    #[test]
    fn monitor_catches_corruption() {
        let mut ch = CorruptingChannel::new(Dir::Forward, 1.0, 3);
        let mut monitor = SpecMonitor::new();
        let pkt = Packet::header_only(Header::new(1));
        let copy = ch.send(pkt);
        monitor
            .observe(&Event::SendPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            })
            .unwrap();
        let (got, copy) = ch.poll_deliver().unwrap();
        let err = monitor
            .observe(&Event::ReceivePkt {
                dir: Dir::Forward,
                packet: got,
                copy,
            })
            .unwrap_err();
        assert!(matches!(err, SpecViolation::CorruptedDelivery { .. }));
    }

    #[test]
    fn offline_checker_catches_corruption_too() {
        let mut ch = CorruptingChannel::new(Dir::Forward, 1.0, 3);
        let mut exec = Execution::new();
        let pkt = Packet::header_only(Header::new(2));
        let copy = ch.send(pkt);
        exec.push(Event::SendPkt {
            dir: Dir::Forward,
            packet: pkt,
            copy,
        });
        let (got, copy) = ch.poll_deliver().unwrap();
        exec.push(Event::ReceivePkt {
            dir: Dir::Forward,
            packet: got,
            copy,
        });
        assert!(matches!(
            check_pl1(&exec, Dir::Forward),
            Err(SpecViolation::CorruptedDelivery { .. })
        ));
    }

    #[test]
    fn zero_rate_is_clean_fifo() {
        let mut ch = CorruptingChannel::new(Dir::Forward, 0.0, 3);
        let pkt = Packet::header_only(Header::new(7));
        ch.send(pkt);
        assert_eq!(ch.poll_deliver().unwrap().0, pkt);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_rate() {
        let _ = CorruptingChannel::new(Dir::Forward, 2.0, 0);
    }
}
