//! One factory for every autonomous channel discipline.
//!
//! The simulation layer historically offered one constructor per channel
//! kind; [`Discipline`] replaces that fan-out with a single declarative
//! value that knows how to build a matched forward/backward pair. It is the
//! channel axis of the `SimulationBuilder` and of campaign scenario
//! matrices, so it parses from and renders to a stable, round-tripping
//! text form (`fifo`, `lossy:0.2`, `probabilistic:0.3`, `reorder:4`).

use crate::{
    BoundedReorderChannel, BoxedChannel, ChaosChannel, FaultPlan, FifoChannel, LossyFifoChannel,
    ProbabilisticChannel,
};
use nonfifo_ioa::Dir;
use std::fmt;
use std::str::FromStr;

/// A declarative description of an autonomous channel pair.
///
/// `Discipline` covers the seeded, self-driving substrates a
/// [`Simulation`](https://docs.rs/nonfifo-core) can pump without adversary
/// input. Fully adversarial channels (every copy individually addressable)
/// stay outside: they are driven by schedules, not seeds.
///
/// # Example
///
/// ```
/// use nonfifo_channel::Discipline;
///
/// let d: Discipline = "probabilistic:0.3".parse().unwrap();
/// assert_eq!(d, Discipline::Probabilistic { q: 0.3 });
/// assert_eq!(d.to_string(), "probabilistic:0.3");
/// let (fwd, bwd) = d.build_pair(42);
/// assert_eq!(fwd.dir(), nonfifo_ioa::Dir::Forward);
/// assert_eq!(bwd.dir(), nonfifo_ioa::Dir::Backward);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Discipline {
    /// Reliable FIFO (the control substrate). Ignores the seed.
    Fifo,
    /// FIFO order with i.i.d. loss probability `loss`.
    LossyFifo {
        /// Per-copy loss probability, in `[0, 1]`.
        loss: f64,
    },
    /// The paper's PL2p physical layer: each copy is delayed with
    /// probability `q`.
    Probabilistic {
        /// Per-copy delay probability, in `[0, 1]`.
        q: f64,
    },
    /// Non-FIFO with overtaking distance `< bound`.
    BoundedReorder {
        /// The reorder distance bound, at least 1.
        bound: u64,
    },
}

/// Why a discipline spelling was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisciplineError(pub String);

impl fmt::Display for DisciplineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DisciplineError {}

impl Discipline {
    /// Checks the discipline's parameters.
    ///
    /// # Errors
    ///
    /// Probabilities outside `[0, 1]` and a reorder bound of 0.
    pub fn validate(&self) -> Result<(), DisciplineError> {
        match *self {
            Discipline::Fifo => Ok(()),
            Discipline::LossyFifo { loss } => probability("lossy", loss),
            Discipline::Probabilistic { q } => probability("probabilistic", q),
            Discipline::BoundedReorder { bound } => {
                if bound >= 1 {
                    Ok(())
                } else {
                    Err(DisciplineError(
                        "reorder bound must be at least 1".to_string(),
                    ))
                }
            }
        }
    }

    /// Builds the forward/backward channel pair: the forward channel is
    /// driven by `seed`, the backward by `seed + 1` (matching the historical
    /// per-kind constructors, so fingerprints are preserved).
    ///
    /// # Panics
    ///
    /// Panics on parameters [`validate`](Discipline::validate) rejects;
    /// parse-time validation makes this unreachable for parsed disciplines.
    pub fn build_pair(&self, seed: u64) -> (BoxedChannel, BoxedChannel) {
        match *self {
            Discipline::Fifo => (
                Box::new(FifoChannel::new(Dir::Forward)),
                Box::new(FifoChannel::new(Dir::Backward)),
            ),
            Discipline::LossyFifo { loss } => (
                Box::new(LossyFifoChannel::new(Dir::Forward, loss, seed)),
                Box::new(LossyFifoChannel::new(
                    Dir::Backward,
                    loss,
                    seed.wrapping_add(1),
                )),
            ),
            Discipline::Probabilistic { q } => (
                Box::new(ProbabilisticChannel::new(Dir::Forward, q, seed)),
                Box::new(ProbabilisticChannel::new(
                    Dir::Backward,
                    q,
                    seed.wrapping_add(1),
                )),
            ),
            Discipline::BoundedReorder { bound } => (
                Box::new(BoundedReorderChannel::new(Dir::Forward, bound, seed)),
                Box::new(BoundedReorderChannel::new(
                    Dir::Backward,
                    bound,
                    seed.wrapping_add(1),
                )),
            ),
        }
    }

    /// Builds the pair and wraps both directions in the chaos
    /// fault-injection decorator, forward driven by `seed`, backward by
    /// `seed + 1` (the historical `Simulation::chaos` seeding).
    pub fn build_pair_with_faults(
        &self,
        seed: u64,
        plan: &FaultPlan,
    ) -> (BoxedChannel, BoxedChannel) {
        let (fwd, bwd) = self.build_pair(seed);
        (
            Box::new(ChaosChannel::new(fwd, plan.clone(), seed)),
            Box::new(ChaosChannel::new(bwd, plan.clone(), seed.wrapping_add(1))),
        )
    }
}

impl fmt::Display for Discipline {
    /// Canonical spelling; [`FromStr`] of the output reproduces the value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Discipline::Fifo => write!(f, "fifo"),
            Discipline::LossyFifo { loss } => write!(f, "lossy:{loss}"),
            Discipline::Probabilistic { q } => write!(f, "probabilistic:{q}"),
            Discipline::BoundedReorder { bound } => write!(f, "reorder:{bound}"),
        }
    }
}

impl FromStr for Discipline {
    type Err = DisciplineError;

    /// Parses `fifo`, `lossy[:L]`, `probabilistic[:Q]` (alias `prob`), and
    /// `reorder[:B]`; omitted parameters take the CLI's historical defaults
    /// (`L = 0.3`, `Q = 0.3`, `B = 4`).
    fn from_str(s: &str) -> Result<Discipline, DisciplineError> {
        let (kind, param) = match s.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (s, None),
        };
        let d = match kind {
            "fifo" => {
                if param.is_some() {
                    return Err(DisciplineError("fifo takes no parameter".to_string()));
                }
                Discipline::Fifo
            }
            "lossy" => Discipline::LossyFifo {
                loss: parse_param(kind, param, 0.3)?,
            },
            "probabilistic" | "prob" => Discipline::Probabilistic {
                q: parse_param(kind, param, 0.3)?,
            },
            "reorder" => Discipline::BoundedReorder {
                bound: parse_param(kind, param, 4)?,
            },
            other => {
                return Err(DisciplineError(format!(
                    "unknown discipline {other:?} (expected fifo, lossy[:L], \
                     probabilistic[:Q], or reorder[:B])"
                )))
            }
        };
        d.validate()?;
        Ok(d)
    }
}

fn probability(name: &str, p: f64) -> Result<(), DisciplineError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(DisciplineError(format!(
            "{name} probability must be in [0, 1], got {p}"
        )))
    }
}

fn parse_param<T: FromStr>(
    kind: &str,
    param: Option<&str>,
    default: T,
) -> Result<T, DisciplineError> {
    match param {
        None => Ok(default),
        Some(p) => p
            .parse()
            .map_err(|_| DisciplineError(format!("{kind}: cannot parse parameter {p:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spellings_round_trip() {
        for text in ["fifo", "lossy:0.2", "probabilistic:0.35", "reorder:7"] {
            let d: Discipline = text.parse().unwrap();
            assert_eq!(d.to_string(), text);
            assert_eq!(d.to_string().parse::<Discipline>().unwrap(), d);
        }
    }

    #[test]
    fn defaults_match_the_cli() {
        assert_eq!(
            "lossy".parse::<Discipline>().unwrap(),
            Discipline::LossyFifo { loss: 0.3 }
        );
        assert_eq!(
            "prob".parse::<Discipline>().unwrap(),
            Discipline::Probabilistic { q: 0.3 }
        );
        assert_eq!(
            "reorder".parse::<Discipline>().unwrap(),
            Discipline::BoundedReorder { bound: 4 }
        );
    }

    #[test]
    fn bad_spellings_are_rejected() {
        for text in [
            "carrier-pigeon",
            "lossy:2.0",
            "probabilistic:-0.1",
            "reorder:0",
            "reorder:x",
            "fifo:1",
        ] {
            assert!(text.parse::<Discipline>().is_err(), "{text}");
        }
    }

    #[test]
    fn build_pair_directions_and_determinism() {
        for d in [
            Discipline::Fifo,
            Discipline::LossyFifo { loss: 0.3 },
            Discipline::Probabilistic { q: 0.3 },
            Discipline::BoundedReorder { bound: 4 },
        ] {
            let (fwd, bwd) = d.build_pair(9);
            assert_eq!(fwd.dir(), Dir::Forward, "{d}");
            assert_eq!(bwd.dir(), Dir::Backward, "{d}");
        }
    }

    #[test]
    fn faulted_pair_is_chaos_wrapped() {
        let plan = FaultPlan::parse("dup 0.5").unwrap();
        let (mut fwd, _bwd) = Discipline::Fifo.build_pair_with_faults(1, &plan);
        // A chaos decorator is the only channel that can report injections.
        for _ in 0..64 {
            fwd.send(nonfifo_ioa::Packet::header_only(nonfifo_ioa::Header::new(
                0,
            )));
            fwd.tick();
        }
        assert!(
            !fwd.fault_log().is_empty(),
            "the plan fired through the wrap"
        );
    }
}
