//! A multiset of in-transit packet copies with per-copy provenance.

use nonfifo_ioa::{CopyId, Header, Packet};
use std::collections::{BTreeMap, VecDeque};

/// The set of packet copies currently delayed on a channel.
///
/// Copies are indexed both by packet value (so an adversary can ask for "the
/// oldest delayed copy of `p`", the replay primitive of every proof) and by
/// copy id (so a scripted adversary can release a specific copy). "Oldest"
/// means smallest [`CopyId`], i.e. mint order.
///
/// # Example
///
/// ```
/// use nonfifo_channel::PacketMultiset;
/// use nonfifo_ioa::{CopyId, Header, Packet};
///
/// let mut ms = PacketMultiset::new();
/// let p = Packet::header_only(Header::new(0));
/// ms.insert(p, CopyId::from_raw(1));
/// ms.insert(p, CopyId::from_raw(2));
/// assert_eq!(ms.packet_copies(p), 2);
/// let (_, oldest) = ms.take_oldest_of_packet(p).unwrap();
/// assert_eq!(oldest, CopyId::from_raw(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketMultiset {
    // Copies are inserted in increasing CopyId order, so each deque is
    // sorted and `front()` is the oldest copy of that exact packet value.
    by_packet: BTreeMap<Packet, VecDeque<CopyId>>,
    by_copy: BTreeMap<CopyId, Packet>,
}

impl PacketMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        PacketMultiset::default()
    }

    /// Total number of delayed copies.
    pub fn len(&self) -> usize {
        self.by_copy.len()
    }

    /// True if no copies are delayed.
    pub fn is_empty(&self) -> bool {
        self.by_copy.is_empty()
    }

    /// Inserts a copy of `packet`.
    ///
    /// # Panics
    ///
    /// Panics if `copy` is already present — copy ids are minted uniquely by
    /// the channel, so a duplicate insert is a harness bug.
    pub fn insert(&mut self, packet: Packet, copy: CopyId) {
        let prev = self.by_copy.insert(copy, packet);
        assert!(prev.is_none(), "copy {copy} inserted twice");
        self.by_packet.entry(packet).or_default().push_back(copy);
    }

    /// Number of delayed copies of the exact packet value `p`.
    pub fn packet_copies(&self, p: Packet) -> usize {
        self.by_packet.get(&p).map_or(0, VecDeque::len)
    }

    /// Number of delayed copies whose header is `h` (any payload).
    pub fn header_copies(&self, h: Header) -> usize {
        self.by_packet
            .iter()
            .filter(|(p, _)| p.header() == h)
            .map(|(_, v)| v.len())
            .sum()
    }

    /// The packet value of a delayed copy, if it is delayed.
    pub fn packet_of(&self, copy: CopyId) -> Option<Packet> {
        self.by_copy.get(&copy).copied()
    }

    /// Number of delayed copies with header `h` minted before `watermark`.
    pub fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        self.by_copy
            .range(..watermark)
            .filter(|(_, p)| p.header() == h)
            .count()
    }

    /// Removes and returns a specific copy.
    pub fn take_copy(&mut self, copy: CopyId) -> Option<Packet> {
        let packet = self.by_copy.remove(&copy)?;
        let deque = self
            .by_packet
            .get_mut(&packet)
            .expect("indices out of sync");
        let pos = deque
            .iter()
            .position(|&c| c == copy)
            .expect("indices out of sync");
        deque.remove(pos);
        if deque.is_empty() {
            self.by_packet.remove(&packet);
        }
        Some(packet)
    }

    /// The oldest delayed copy of the exact packet `p`, if any.
    pub fn oldest_of_packet(&self, p: Packet) -> Option<CopyId> {
        self.by_packet.get(&p).and_then(|d| d.front().copied())
    }

    /// Removes and returns the oldest delayed copy of the exact packet `p`.
    pub fn take_oldest_of_packet(&mut self, p: Packet) -> Option<(Packet, CopyId)> {
        let deque = self.by_packet.get_mut(&p)?;
        let copy = deque.pop_front().expect("empty deque left in index");
        if deque.is_empty() {
            self.by_packet.remove(&p);
        }
        self.by_copy.remove(&copy);
        Some((p, copy))
    }

    /// Removes and returns the oldest delayed copy with header `h`.
    pub fn take_oldest_of_header(&mut self, h: Header) -> Option<(Packet, CopyId)> {
        let best = self
            .by_packet
            .iter()
            .filter(|(p, _)| p.header() == h)
            .filter_map(|(p, v)| v.front().map(|&c| (c, *p)))
            .min()?;
        let (copy, packet) = best;
        self.take_copy(copy).map(|p| {
            debug_assert_eq!(p, packet);
            (p, copy)
        })
    }

    /// Removes and returns the oldest delayed copy overall.
    pub fn take_oldest(&mut self) -> Option<(Packet, CopyId)> {
        let (&copy, &packet) = self.by_copy.iter().next()?;
        self.take_copy(copy);
        Some((packet, copy))
    }

    /// Iterates over `(packet, copy)` pairs in copy-mint order.
    pub fn iter(&self) -> impl Iterator<Item = (Packet, CopyId)> + '_ {
        self.by_copy.iter().map(|(&c, &p)| (p, c))
    }

    /// Iterates over the distinct packet values present.
    pub fn packets(&self) -> impl Iterator<Item = Packet> + '_ {
        self.by_packet.keys().copied()
    }

    /// Per-packet-value copy counts, in packet order (deterministic).
    pub fn histogram(&self) -> Vec<(Packet, usize)> {
        self.by_packet.iter().map(|(&p, v)| (p, v.len())).collect()
    }

    /// The [`histogram`](PacketMultiset::histogram) extended with copies
    /// living outside the multiset (delivery queues, storm buffers), in
    /// packet order. This is the single census path for every channel that
    /// keeps its delayed pool in a `PacketMultiset` — the telemetry layer
    /// reads the same counts the stall diagnostics print.
    pub fn census_with(&self, extra: impl Iterator<Item = Packet>) -> Vec<(Packet, usize)> {
        let mut counts: BTreeMap<Packet, usize> =
            self.by_packet.iter().map(|(&p, v)| (p, v.len())).collect();
        for p in extra {
            *counts.entry(p).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Removes every copy, returning them in mint order.
    pub fn drain_all(&mut self) -> Vec<(Packet, CopyId)> {
        let all: Vec<_> = self.iter().collect();
        self.by_copy.clear();
        self.by_packet.clear();
        all
    }
}

impl IntoIterator for &PacketMultiset {
    type Item = (Packet, CopyId);
    type IntoIter = std::vec::IntoIter<(Packet, CopyId)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_ioa::Payload;

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    fn c(raw: u64) -> CopyId {
        CopyId::from_raw(raw)
    }

    #[test]
    fn insert_and_counts() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(1));
        ms.insert(p(0), c(2));
        ms.insert(p(1), c(3));
        assert_eq!(ms.len(), 3);
        assert_eq!(ms.packet_copies(p(0)), 2);
        assert_eq!(ms.header_copies(Header::new(1)), 1);
        assert_eq!(ms.header_copies(Header::new(9)), 0);
    }

    #[test]
    fn header_copies_spans_payloads() {
        let mut ms = PacketMultiset::new();
        ms.insert(Packet::new(Header::new(0), Payload::new(1)), c(1));
        ms.insert(Packet::new(Header::new(0), Payload::new(2)), c(2));
        assert_eq!(ms.header_copies(Header::new(0)), 2);
        assert_eq!(
            ms.packet_copies(Packet::new(Header::new(0), Payload::new(1))),
            1
        );
    }

    #[test]
    fn take_oldest_of_packet_is_fifo() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(5));
        ms.insert(p(0), c(9));
        assert_eq!(ms.take_oldest_of_packet(p(0)), Some((p(0), c(5))));
        assert_eq!(ms.take_oldest_of_packet(p(0)), Some((p(0), c(9))));
        assert_eq!(ms.take_oldest_of_packet(p(0)), None);
        assert!(ms.is_empty());
    }

    #[test]
    fn take_oldest_of_header_crosses_payloads() {
        let mut ms = PacketMultiset::new();
        let a = Packet::new(Header::new(0), Payload::new(7));
        ms.insert(a, c(2));
        ms.insert(p(0), c(1));
        let (_, copy) = ms.take_oldest_of_header(Header::new(0)).unwrap();
        assert_eq!(copy, c(1));
    }

    #[test]
    fn take_specific_copy() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(1));
        ms.insert(p(0), c(2));
        assert_eq!(ms.take_copy(c(2)), Some(p(0)));
        assert_eq!(ms.take_copy(c(2)), None);
        assert_eq!(ms.packet_copies(p(0)), 1);
    }

    #[test]
    fn take_oldest_overall() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(1), c(4));
        ms.insert(p(0), c(2));
        assert_eq!(ms.take_oldest(), Some((p(0), c(2))));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(1));
        ms.insert(p(1), c(1));
    }

    #[test]
    fn histogram_is_deterministic() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(1), c(1));
        ms.insert(p(0), c(2));
        ms.insert(p(1), c(3));
        assert_eq!(ms.histogram(), vec![(p(0), 1), (p(1), 2)]);
    }

    #[test]
    fn drain_all_in_mint_order() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(1), c(3));
        ms.insert(p(0), c(1));
        assert_eq!(ms.drain_all(), vec![(p(0), c(1)), (p(1), c(3))]);
        assert!(ms.is_empty());
    }
}
