//! A multiset of in-transit packet copies with per-copy provenance.

use nonfifo_ioa::fingerprint::{fnv64, mix64};
use nonfifo_ioa::{CopyId, Header, Packet};
use std::collections::BTreeMap;

/// The set of packet copies currently delayed on a channel.
///
/// Copies are indexed both by packet value (so an adversary can ask for "the
/// oldest delayed copy of `p`", the replay primitive of every proof) and by
/// copy id (so a scripted adversary can release a specific copy). "Oldest"
/// means smallest [`CopyId`], i.e. mint order.
///
/// # Representation
///
/// One flat `Vec<(CopyId, Packet)>` kept sorted by copy id. Channels mint
/// copy ids monotonically, so inserts are almost always a `push`; delayed
/// pools are small (the explorers bound them explicitly), so the per-value
/// queries are cheap linear scans over a single cache line or two. The
/// payoff is on the state-space-exploration hot path: cloning the multiset
/// is one `memcpy`, and [`content_hash`](PacketMultiset::content_hash) is an
/// incrementally maintained accumulator, so hashing a system state no
/// longer walks the pool at all.
///
/// # Example
///
/// ```
/// use nonfifo_channel::PacketMultiset;
/// use nonfifo_ioa::{CopyId, Header, Packet};
///
/// let mut ms = PacketMultiset::new();
/// let p = Packet::header_only(Header::new(0));
/// ms.insert(p, CopyId::from_raw(1));
/// ms.insert(p, CopyId::from_raw(2));
/// assert_eq!(ms.packet_copies(p), 2);
/// let (_, oldest) = ms.take_oldest_of_packet(p).unwrap();
/// assert_eq!(oldest, CopyId::from_raw(1));
/// ```
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PacketMultiset {
    /// `(copy, packet)` pairs sorted by copy id (mint order).
    entries: Vec<(CopyId, Packet)>,
    /// Order-independent accumulator: the wrapping sum of
    /// `mix64(fnv64(packet))` over every delayed copy. Two pools with the
    /// same value histogram have the same accumulator, whatever order
    /// copies came and went. The [`mix64`] finalizer is load-bearing: raw
    /// FNV hashes of sequentially-numbered packets sum-collide.
    acc: u64,
}

impl Clone for PacketMultiset {
    fn clone(&self) -> Self {
        PacketMultiset {
            entries: self.entries.clone(),
            acc: self.acc,
        }
    }

    /// Capacity-reusing clone: the explorer's system pool assigns states
    /// into recycled allocations, so the steady-state expansion loop never
    /// touches the heap.
    fn clone_from(&mut self, source: &Self) {
        self.entries.clone_from(&source.entries);
        self.acc = source.acc;
    }
}

impl PacketMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        PacketMultiset::default()
    }

    /// Total number of delayed copies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no copies are delayed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Order-independent 64-bit digest of the value histogram, maintained
    /// incrementally on every insert and removal. Together with
    /// [`len`](PacketMultiset::len) this is the multiset's contribution to
    /// the explorers' state key — O(1) instead of a walk over the pool.
    pub fn content_hash(&self) -> u64 {
        self.acc
    }

    /// Heap bytes currently reserved by the multiset (the capacity, not
    /// just the live entries) — input to the explorer's frontier memory
    /// gauge.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(CopyId, Packet)>()
    }

    /// Inserts a copy of `packet`.
    ///
    /// # Panics
    ///
    /// Panics if `copy` is already present — copy ids are minted uniquely by
    /// the channel, so a duplicate insert is a harness bug.
    pub fn insert(&mut self, packet: Packet, copy: CopyId) {
        let pos = match self.entries.last() {
            // Channels mint ids monotonically, so this is the common case.
            Some(&(last, _)) if last < copy => self.entries.len(),
            None => 0,
            _ => match self.entries.binary_search_by_key(&copy, |e| e.0) {
                Err(pos) => pos,
                Ok(_) => panic!("copy {copy} inserted twice"),
            },
        };
        self.entries.insert(pos, (copy, packet));
        self.acc = self.acc.wrapping_add(mix64(fnv64(&packet)));
    }

    fn remove_at(&mut self, pos: usize) -> (Packet, CopyId) {
        let (copy, packet) = self.entries.remove(pos);
        self.acc = self.acc.wrapping_sub(mix64(fnv64(&packet)));
        (packet, copy)
    }

    /// Number of delayed copies of the exact packet value `p`.
    pub fn packet_copies(&self, p: Packet) -> usize {
        self.entries.iter().filter(|&&(_, q)| q == p).count()
    }

    /// Number of delayed copies whose header is `h` (any payload).
    pub fn header_copies(&self, h: Header) -> usize {
        self.entries
            .iter()
            .filter(|&&(_, q)| q.header() == h)
            .count()
    }

    /// The packet value of a delayed copy, if it is delayed.
    pub fn packet_of(&self, copy: CopyId) -> Option<Packet> {
        self.entries
            .binary_search_by_key(&copy, |e| e.0)
            .ok()
            .map(|pos| self.entries[pos].1)
    }

    /// Number of delayed copies with header `h` minted before `watermark`.
    pub fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        let older = self.entries.partition_point(|&(c, _)| c < watermark);
        self.entries[..older]
            .iter()
            .filter(|&&(_, q)| q.header() == h)
            .count()
    }

    /// Number of delayed copies minted before `watermark` (any value) —
    /// how many a delivery of `watermark` would overtake.
    pub fn copies_older_than(&self, watermark: CopyId) -> usize {
        self.entries.partition_point(|&(c, _)| c < watermark)
    }

    /// Removes and returns a specific copy.
    pub fn take_copy(&mut self, copy: CopyId) -> Option<Packet> {
        let pos = self.entries.binary_search_by_key(&copy, |e| e.0).ok()?;
        Some(self.remove_at(pos).0)
    }

    /// The oldest delayed copy of the exact packet `p`, if any.
    pub fn oldest_of_packet(&self, p: Packet) -> Option<CopyId> {
        self.entries.iter().find(|&&(_, q)| q == p).map(|&(c, _)| c)
    }

    /// Removes and returns the oldest delayed copy of the exact packet `p`.
    pub fn take_oldest_of_packet(&mut self, p: Packet) -> Option<(Packet, CopyId)> {
        let pos = self.entries.iter().position(|&(_, q)| q == p)?;
        let (packet, copy) = self.remove_at(pos);
        Some((packet, copy))
    }

    /// Removes and returns the oldest delayed copy with header `h`.
    pub fn take_oldest_of_header(&mut self, h: Header) -> Option<(Packet, CopyId)> {
        let pos = self.entries.iter().position(|&(_, q)| q.header() == h)?;
        let (packet, copy) = self.remove_at(pos);
        Some((packet, copy))
    }

    /// Removes and returns the oldest delayed copy overall.
    pub fn take_oldest(&mut self) -> Option<(Packet, CopyId)> {
        if self.entries.is_empty() {
            return None;
        }
        let (packet, copy) = self.remove_at(0);
        Some((packet, copy))
    }

    /// Iterates over `(packet, copy)` pairs in copy-mint order.
    pub fn iter(&self) -> impl Iterator<Item = (Packet, CopyId)> + '_ {
        self.entries.iter().map(|&(c, p)| (p, c))
    }

    /// Iterates over the distinct packet values present, in packet order.
    pub fn packets(&self) -> impl Iterator<Item = Packet> + '_ {
        let mut values: Vec<Packet> = self.entries.iter().map(|&(_, p)| p).collect();
        values.sort_unstable();
        values.dedup();
        values.into_iter()
    }

    /// Per-packet-value copy counts, in packet order (deterministic).
    pub fn histogram(&self) -> Vec<(Packet, usize)> {
        let mut values: Vec<Packet> = self.entries.iter().map(|&(_, p)| p).collect();
        values.sort_unstable();
        let mut out: Vec<(Packet, usize)> = Vec::new();
        for p in values {
            match out.last_mut() {
                Some((q, n)) if *q == p => *n += 1,
                _ => out.push((p, 1)),
            }
        }
        out
    }

    /// The [`histogram`](PacketMultiset::histogram) extended with copies
    /// living outside the multiset (delivery queues, storm buffers), in
    /// packet order. This is the single census path for every channel that
    /// keeps its delayed pool in a `PacketMultiset` — the telemetry layer
    /// reads the same counts the stall diagnostics print.
    pub fn census_with(&self, extra: impl Iterator<Item = Packet>) -> Vec<(Packet, usize)> {
        let mut counts: BTreeMap<Packet, usize> = BTreeMap::new();
        for (p, _) in self.iter() {
            *counts.entry(p).or_insert(0) += 1;
        }
        for p in extra {
            *counts.entry(p).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Removes every copy, returning them in mint order.
    pub fn drain_all(&mut self) -> Vec<(Packet, CopyId)> {
        self.acc = 0;
        self.entries.drain(..).map(|(c, p)| (p, c)).collect()
    }
}

impl IntoIterator for &PacketMultiset {
    type Item = (Packet, CopyId);
    type IntoIter = std::vec::IntoIter<(Packet, CopyId)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_ioa::Payload;

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    fn c(raw: u64) -> CopyId {
        CopyId::from_raw(raw)
    }

    #[test]
    fn insert_and_counts() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(1));
        ms.insert(p(0), c(2));
        ms.insert(p(1), c(3));
        assert_eq!(ms.len(), 3);
        assert_eq!(ms.packet_copies(p(0)), 2);
        assert_eq!(ms.header_copies(Header::new(1)), 1);
        assert_eq!(ms.header_copies(Header::new(9)), 0);
    }

    #[test]
    fn header_copies_spans_payloads() {
        let mut ms = PacketMultiset::new();
        ms.insert(Packet::new(Header::new(0), Payload::new(1)), c(1));
        ms.insert(Packet::new(Header::new(0), Payload::new(2)), c(2));
        assert_eq!(ms.header_copies(Header::new(0)), 2);
        assert_eq!(
            ms.packet_copies(Packet::new(Header::new(0), Payload::new(1))),
            1
        );
    }

    #[test]
    fn take_oldest_of_packet_is_fifo() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(5));
        ms.insert(p(0), c(9));
        assert_eq!(ms.take_oldest_of_packet(p(0)), Some((p(0), c(5))));
        assert_eq!(ms.take_oldest_of_packet(p(0)), Some((p(0), c(9))));
        assert_eq!(ms.take_oldest_of_packet(p(0)), None);
        assert!(ms.is_empty());
    }

    #[test]
    fn take_oldest_of_header_crosses_payloads() {
        let mut ms = PacketMultiset::new();
        let a = Packet::new(Header::new(0), Payload::new(7));
        ms.insert(a, c(2));
        ms.insert(p(0), c(1));
        let (_, copy) = ms.take_oldest_of_header(Header::new(0)).unwrap();
        assert_eq!(copy, c(1));
    }

    #[test]
    fn take_specific_copy() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(1));
        ms.insert(p(0), c(2));
        assert_eq!(ms.take_copy(c(2)), Some(p(0)));
        assert_eq!(ms.take_copy(c(2)), None);
        assert_eq!(ms.packet_copies(p(0)), 1);
    }

    #[test]
    fn take_oldest_overall() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(1), c(4));
        ms.insert(p(0), c(2));
        assert_eq!(ms.take_oldest(), Some((p(0), c(2))));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(1));
        ms.insert(p(1), c(1));
    }

    #[test]
    fn histogram_is_deterministic() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(1), c(1));
        ms.insert(p(0), c(2));
        ms.insert(p(1), c(3));
        assert_eq!(ms.histogram(), vec![(p(0), 1), (p(1), 2)]);
    }

    #[test]
    fn drain_all_in_mint_order() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(1), c(3));
        ms.insert(p(0), c(1));
        assert_eq!(ms.drain_all(), vec![(p(0), c(1)), (p(1), c(3))]);
        assert!(ms.is_empty());
        assert_eq!(ms.content_hash(), 0);
    }

    #[test]
    fn out_of_order_insert_keeps_mint_order() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(1), c(7));
        ms.insert(p(0), c(3));
        ms.insert(p(2), c(5));
        let order: Vec<CopyId> = ms.iter().map(|(_, c)| c).collect();
        assert_eq!(order, vec![c(3), c(5), c(7)]);
        assert_eq!(ms.take_oldest(), Some((p(0), c(3))));
    }

    #[test]
    fn content_hash_is_order_independent_and_count_sensitive() {
        let mut a = PacketMultiset::new();
        a.insert(p(0), c(1));
        a.insert(p(1), c(2));
        let mut b = PacketMultiset::new();
        b.insert(p(1), c(9));
        b.insert(p(0), c(4));
        // Same histogram, different copy ids and insertion order.
        assert_eq!(a.content_hash(), b.content_hash());
        b.insert(p(0), c(10));
        assert_ne!(a.content_hash(), b.content_hash());
        // Removal restores the digest exactly.
        b.take_copy(c(10));
        assert_eq!(a.content_hash(), b.content_hash());
    }

    /// Differential property against the twin-BTreeMap model the flat
    /// representation replaced: a random op sequence must leave both with
    /// the same histogram, per-value counts, oldest-copy answers, and
    /// removal results — and equal histograms must mean equal
    /// `content_hash`, however different the op orders that built them.
    #[test]
    fn flat_repr_matches_btreemap_model() {
        use nonfifo_rng::StdRng;
        use std::collections::BTreeMap;

        /// The old representation, as the executable model: copies by
        /// value and by id, in two ordered maps.
        #[derive(Default)]
        struct Model {
            by_value: BTreeMap<Packet, Vec<CopyId>>,
            by_copy: BTreeMap<CopyId, Packet>,
        }

        impl Model {
            fn insert(&mut self, p: Packet, c: CopyId) {
                let ids = self.by_value.entry(p).or_default();
                ids.push(c);
                ids.sort_unstable();
                self.by_copy.insert(c, p);
            }

            fn remove(&mut self, p: Packet, c: CopyId) {
                let ids = self.by_value.get_mut(&p).unwrap();
                ids.retain(|&i| i != c);
                if ids.is_empty() {
                    self.by_value.remove(&p);
                }
                self.by_copy.remove(&c);
            }

            fn histogram(&self) -> Vec<(Packet, usize)> {
                self.by_value.iter().map(|(&p, v)| (p, v.len())).collect()
            }
        }

        let cases: u64 = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16);
        for seed in 0..cases {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ms = PacketMultiset::new();
            let mut model = Model::default();
            let mut next_copy = 1u64;
            for _ in 0..200 {
                match rng.gen_range(0..6) {
                    // Insert a copy of a packet from a small value universe
                    // (so duplicates and shared headers actually occur).
                    0..=2 => {
                        let packet = Packet::new(
                            Header::new(rng.gen_range(0..4) as u32),
                            Payload::new(rng.gen_range(0..3) as u64),
                        );
                        let copy = c(next_copy);
                        next_copy += 1;
                        ms.insert(packet, copy);
                        model.insert(packet, copy);
                    }
                    3 => {
                        if let Some((packet, copy)) = ms.take_oldest() {
                            assert_eq!(
                                copy,
                                *model.by_copy.keys().next().unwrap(),
                                "seed {seed}: oldest copy diverged"
                            );
                            model.remove(packet, copy);
                        } else {
                            assert!(model.by_copy.is_empty());
                        }
                    }
                    4 => {
                        let packet = Packet::new(
                            Header::new(rng.gen_range(0..4) as u32),
                            Payload::new(rng.gen_range(0..3) as u64),
                        );
                        let expected = model
                            .by_value
                            .get(&packet)
                            .and_then(|ids| ids.first().copied());
                        match ms.take_oldest_of_packet(packet) {
                            Some((q, copy)) => {
                                assert_eq!(q, packet);
                                assert_eq!(Some(copy), expected, "seed {seed}");
                                model.remove(packet, copy);
                            }
                            None => assert_eq!(expected, None, "seed {seed}"),
                        }
                    }
                    _ => {
                        let copy = c(rng.gen_range(1..next_copy.max(2) as usize) as u64);
                        let expected = model.by_copy.get(&copy).copied();
                        let got = ms.take_copy(copy);
                        assert_eq!(got, expected, "seed {seed}: take_copy diverged");
                        if let Some(p) = got {
                            model.remove(p, copy);
                        }
                    }
                }
                assert_eq!(ms.len(), model.by_copy.len(), "seed {seed}");
                assert_eq!(ms.histogram(), model.histogram(), "seed {seed}");
                for (&p, ids) in &model.by_value {
                    assert_eq!(ms.packet_copies(p), ids.len(), "seed {seed}");
                    assert_eq!(ms.oldest_of_packet(p), ids.first().copied(), "seed {seed}");
                }
                // Content digest is a pure function of the histogram:
                // rebuilding the same histogram in a different op order
                // (ascending copy ids, value-major) must reproduce it.
                let mut rebuilt = PacketMultiset::new();
                let mut id = 1u64;
                for (p, n) in model.histogram() {
                    for _ in 0..n {
                        rebuilt.insert(p, c(id));
                        id += 1;
                    }
                }
                assert_eq!(
                    rebuilt.content_hash(),
                    ms.content_hash(),
                    "seed {seed}: digest is not order-independent"
                );
            }
        }
    }

    #[test]
    fn copies_older_than_counts_the_overtaken() {
        let mut ms = PacketMultiset::new();
        ms.insert(p(0), c(1));
        ms.insert(p(1), c(3));
        ms.insert(p(0), c(5));
        assert_eq!(ms.copies_older_than(c(1)), 0);
        assert_eq!(ms.copies_older_than(c(4)), 2);
        assert_eq!(ms.copies_older_than(c(9)), 3);
        assert_eq!(ms.header_copies_older_than(Header::new(0), c(4)), 1);
    }
}
