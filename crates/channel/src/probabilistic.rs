//! The probabilistic physical layer of §5 (property PL2p).

use crate::channel::{Channel, ChannelIntrospect, FaultObserver};
use crate::multiset::PacketMultiset;
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use nonfifo_rng::StdRng;
use std::collections::VecDeque;

/// What eventually happens to delayed copies.
///
/// The paper's PL2p only says a packet is delivered *immediately* with
/// probability `1 − q`; the fate of the remaining `q` fraction is left to
/// the adversary. The two policies bracket that freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleasePolicy {
    /// Delayed copies are never delivered (worst case — equivalent to loss,
    /// the regime in which Theorem 5.1's growth argument is cleanest).
    Never,
    /// Every `period` ticks the oldest delayed copy is delivered (keeps
    /// PL2-style liveness observable in finite runs).
    Trickle {
        /// Ticks between releases.
        period: u32,
    },
}

/// A channel that delivers each fresh copy immediately with probability
/// `1 − q` and delays it otherwise (PL2p with error probability `q`).
///
/// Deterministic given its seed, so every Theorem 5.1 experiment is
/// reproducible.
///
/// # Example
///
/// ```
/// use nonfifo_channel::{Channel, ProbabilisticChannel};
/// use nonfifo_ioa::{Dir, Header, Packet};
///
/// let mut ch = ProbabilisticChannel::new(Dir::Forward, 0.5, 7);
/// for _ in 0..100 {
///     ch.send(Packet::header_only(Header::new(0)));
/// }
/// let delayed = ch.in_transit_len();
/// // Roughly q·100 copies are delayed.
/// assert!(delayed > 25 && delayed < 75, "delayed = {delayed}");
/// ```
#[derive(Debug, Clone)]
pub struct ProbabilisticChannel {
    dir: Dir,
    q: f64,
    rng: StdRng,
    policy: ReleasePolicy,
    ticks_since_release: u32,
    delayed: PacketMultiset,
    queue: VecDeque<(Packet, CopyId)>,
    next_copy: u64,
    sent: u64,
    delivered: u64,
}

impl ProbabilisticChannel {
    /// Creates a probabilistic channel with error probability `q` and the
    /// [`ReleasePolicy::Never`] policy.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn new(dir: Dir, q: f64, seed: u64) -> Self {
        ProbabilisticChannel::with_policy(dir, q, seed, ReleasePolicy::Never)
    }

    /// Creates a probabilistic channel with an explicit release policy.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn with_policy(dir: Dir, q: f64, seed: u64, policy: ReleasePolicy) -> Self {
        assert!((0.0..=1.0).contains(&q), "q must be a probability, got {q}");
        ProbabilisticChannel {
            dir,
            q,
            rng: StdRng::seed_from_u64(seed),
            policy,
            ticks_since_release: 0,
            delayed: PacketMultiset::new(),
            queue: VecDeque::new(),
            next_copy: 0,
            sent: 0,
            delivered: 0,
        }
    }

    /// The error probability `q`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The delayed pool (the `m_{i,j}` counters of §5 read off this).
    pub fn delayed_multiset(&self) -> &PacketMultiset {
        &self.delayed
    }

    /// Force-releases the oldest delayed copy (used by liveness harnesses).
    pub fn release_oldest_delayed(&mut self) -> Option<(Packet, CopyId)> {
        let hit = self.delayed.take_oldest()?;
        self.queue.push_back(hit);
        Some(hit)
    }
}

impl Channel for ProbabilisticChannel {
    fn dir(&self) -> Dir {
        self.dir
    }

    fn send(&mut self, packet: Packet) -> CopyId {
        let copy = CopyId::from_raw(self.next_copy);
        self.next_copy += 1;
        self.sent += 1;
        if self.rng.gen_bool(self.q) {
            self.delayed.insert(packet, copy);
        } else {
            self.queue.push_back((packet, copy));
        }
        copy
    }

    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)> {
        let hit = self.queue.pop_front();
        if hit.is_some() {
            self.delivered += 1;
        }
        hit
    }

    fn tick(&mut self) {
        if let ReleasePolicy::Trickle { period } = self.policy {
            self.ticks_since_release += 1;
            if self.ticks_since_release >= period {
                self.ticks_since_release = 0;
                self.release_oldest_delayed();
            }
        }
    }

    fn in_transit_len(&self) -> usize {
        self.delayed.len()
    }

    fn total_sent(&self) -> u64 {
        self.sent
    }

    fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl ChannelIntrospect for ProbabilisticChannel {
    fn header_copies(&self, h: Header) -> usize {
        self.delayed.header_copies(h)
    }

    fn packet_copies(&self, p: Packet) -> usize {
        self.delayed.packet_copies(p)
    }

    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        self.delayed.header_copies_older_than(h, watermark)
    }

    fn transit_census(&self) -> Vec<(Packet, usize)> {
        self.delayed.census_with(self.queue.iter().map(|&(p, _)| p))
    }
}

impl FaultObserver for ProbabilisticChannel {
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    #[test]
    fn q_zero_is_reliable_immediate() {
        let mut ch = ProbabilisticChannel::new(Dir::Forward, 0.0, 1);
        for _ in 0..50 {
            ch.send(p(0));
        }
        assert_eq!(ch.in_transit_len(), 0);
        let mut n = 0;
        while ch.poll_deliver().is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn q_one_delays_everything() {
        let mut ch = ProbabilisticChannel::new(Dir::Forward, 1.0, 1);
        for _ in 0..50 {
            ch.send(p(0));
        }
        assert_eq!(ch.in_transit_len(), 50);
        assert_eq!(ch.poll_deliver(), None);
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            let mut ch = ProbabilisticChannel::new(Dir::Forward, 0.3, seed);
            (0..200)
                .filter(|_| ch.send(p(0)).raw().is_multiple_of(2))
                .count();
            ch.in_transit_len()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn delay_fraction_close_to_q() {
        let mut ch = ProbabilisticChannel::new(Dir::Forward, 0.25, 123);
        for _ in 0..4000 {
            ch.send(p(0));
        }
        let frac = ch.in_transit_len() as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn trickle_releases_delayed_copies() {
        let mut ch = ProbabilisticChannel::with_policy(
            Dir::Forward,
            1.0,
            1,
            ReleasePolicy::Trickle { period: 2 },
        );
        ch.send(p(0));
        assert_eq!(ch.poll_deliver(), None);
        ch.tick();
        assert_eq!(ch.poll_deliver(), None);
        ch.tick();
        assert!(ch.poll_deliver().is_some());
        assert_eq!(ch.in_transit_len(), 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_q() {
        let _ = ProbabilisticChannel::new(Dir::Forward, 1.5, 0);
    }
}
