//! Physical-layer channel simulators for the `nonfifo` reproduction of
//! Mansour & Schieber (PODC 1989).
//!
//! The paper's physical layer (§2.1) is a unidirectional, unreliable,
//! non-FIFO packet transport: it may delete any packet or delay it
//! arbitrarily, but never corrupts or duplicates (PL1), and delivers
//! *something* if sends keep happening (PL2). This crate implements that
//! layer several ways:
//!
//! - [`AdversarialChannel`] — the adversary of the lower-bound proofs: every
//!   copy in transit is individually addressable; the caller decides which
//!   copy is delivered when, can park all traffic, or replay a delayed copy
//!   of a packet value in place of a fresh one.
//! - [`ProbabilisticChannel`] — the probabilistic physical layer of §5
//!   (property PL2p): each packet is delivered immediately with probability
//!   `1 − q` and delayed otherwise.
//! - [`FifoChannel`] — a reliable FIFO reference channel (what the data-link
//!   layer is supposed to *provide*).
//! - [`LossyFifoChannel`] — FIFO order with i.i.d. loss; the classic domain
//!   where the alternating-bit protocol is correct.
//! - [`BoundedReorderChannel`] — non-FIFO with bounded overtaking distance;
//!   the realistic middle ground where sliding-window protocols with modular
//!   headers become correct again (experiment E9).
//! - [`CorruptingChannel`] — deliberately PL1-violating fault injection,
//!   proving the checkers catch corruption rather than assuming it away.
//! - [`ChaosChannel`] — a deterministic fault-injecting *decorator* over any
//!   of the above: seeded duplication, loss, corruption, burst loss,
//!   partition windows, and reorder storms, every fault logged and declared
//!   to the harness so PL1 checking stays sound under chaos.
//!
//! All channels except the deliberately faulty [`CorruptingChannel`]
//! satisfy PL1 by construction: every copy is minted exactly once and
//! leaves the channel at most once, uncorrupted. Tests check this against
//! the [`nonfifo_ioa::spec::check_pl1`] checker.
//!
//! # Example
//!
//! ```
//! use nonfifo_channel::{AdversarialChannel, Channel};
//! use nonfifo_ioa::{Dir, Header, Packet};
//!
//! let mut ch = AdversarialChannel::parked(Dir::Forward);
//! let p = Packet::header_only(Header::new(0));
//! ch.send(p);
//! ch.send(p);
//! assert_eq!(ch.in_transit_len(), 2);
//! // The adversary replays the *oldest* delayed copy of p.
//! let (pkt, _copy) = ch.release_oldest_of_packet(p).expect("in transit");
//! assert_eq!(pkt, p);
//! assert!(ch.poll_deliver().is_some());
//! assert_eq!(ch.in_transit_len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod bounded_reorder;
mod channel;
mod chaos;
mod corrupting;
mod corruption;
mod discipline;
mod fifo;
mod lossy_fifo;
mod multiset;
mod probabilistic;

pub use adversarial::{AdversarialChannel, DeliveryMode};
pub use bounded_reorder::BoundedReorderChannel;
pub use channel::{BoxedChannel, Channel, ChannelIntrospect, FaultObserver, InstrumentedChannel};
pub use chaos::{ChaosChannel, FaultKind, FaultPlan, FaultRecord, PlanError, CHAOS_COPY_BASE};
pub use corrupting::{corrupt_packet, CorruptingChannel};
pub use corruption::{CorruptionSeverity, ScramblePlan, SeverityError, MAX_JUNK_MULTIPLICITY};
pub use discipline::{Discipline, DisciplineError};
pub use fifo::FifoChannel;
pub use lossy_fifo::LossyFifoChannel;
pub use multiset::PacketMultiset;
pub use probabilistic::{ProbabilisticChannel, ReleasePolicy};
