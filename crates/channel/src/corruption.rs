//! Seeded initial-state corruption for self-stabilization experiments.
//!
//! Self-stabilization (Dolev–Dubois–Potop-Butucaru–Tixeuil, arXiv:1011.3632)
//! asks whether a protocol converges to legal behavior from an *arbitrary*
//! automaton/channel configuration. This module generates that arbitrary
//! configuration deterministically: a [`ScramblePlan`] is a seeded recipe of
//! junk packets to preload into the channels and to feed synthetically into
//! the automata before the run starts.
//!
//! Two properties keep the rest of the harness sound:
//!
//! - **API-reachable states only.** Corruption never pokes automaton fields;
//!   it drives the public `on_receive_pkt` inputs and the channels' `send`,
//!   so every corrupted configuration is one some (hostile) physical layer
//!   could actually produce, and PL1 stays checkable: the harness records a
//!   `send_pkt` for every preloaded copy, exactly like the chaos layer's
//!   declared injections.
//! - **Bounded multiplicity.** No junk packet value appears more than
//!   [`MAX_JUNK_MULTIPLICITY`] times across the whole plan. Counting-based
//!   stabilizing protocols deliver only after `capacity + 1` identical
//!   sightings; keeping junk multiplicity strictly below that threshold is
//!   the fault-resilience contract under which convergence is achievable at
//!   all (DDPT's "optimal fault-resilience" is exactly this trade-off).

use nonfifo_ioa::{Header, Packet, Payload};
use nonfifo_rng::StdRng;
use std::fmt;
use std::str::FromStr;

/// Stream salt so corruption draws never replicate the channel RNG streams
/// (disciplines seed the forward channel with `seed` and the backward with
/// `seed + 1`).
const SCRAMBLE_SALT: u64 = 0x5e1f_57ab_1e5c_0de5;

/// Upper bound on how many copies of any single junk packet value a plan may
/// contain, across all four destinations.
pub const MAX_JUNK_MULTIPLICITY: usize = 3;

/// How hard the initial state is scrambled.
///
/// The severity scales the number of distinct junk packet values and the
/// number of copies of each; it never raises per-value multiplicity above
/// [`MAX_JUNK_MULTIPLICITY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionSeverity {
    /// A couple of junk values, one copy each.
    Light,
    /// A handful of junk values, up to two copies each.
    Medium,
    /// Many junk values, up to three copies each.
    Heavy,
}

impl CorruptionSeverity {
    /// All severities, mildest first.
    pub const ALL: [CorruptionSeverity; 3] = [
        CorruptionSeverity::Light,
        CorruptionSeverity::Medium,
        CorruptionSeverity::Heavy,
    ];

    /// `(distinct junk values, max copies per value)` for this severity.
    fn scale(self) -> (usize, usize) {
        match self {
            CorruptionSeverity::Light => (2, 1),
            CorruptionSeverity::Medium => (4, 2),
            CorruptionSeverity::Heavy => (7, MAX_JUNK_MULTIPLICITY),
        }
    }

    /// The canonical spelling used by campaign plans and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            CorruptionSeverity::Light => "light",
            CorruptionSeverity::Medium => "medium",
            CorruptionSeverity::Heavy => "heavy",
        }
    }
}

impl fmt::Display for CorruptionSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An unrecognized severity spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeverityError(pub String);

impl fmt::Display for SeverityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown corruption severity {:?} (expected light, medium, or heavy)",
            self.0
        )
    }
}

impl std::error::Error for SeverityError {}

impl FromStr for CorruptionSeverity {
    type Err = SeverityError;

    fn from_str(s: &str) -> Result<Self, SeverityError> {
        match s {
            "light" => Ok(CorruptionSeverity::Light),
            "medium" => Ok(CorruptionSeverity::Medium),
            "heavy" => Ok(CorruptionSeverity::Heavy),
            other => Err(SeverityError(other.to_string())),
        }
    }
}

/// A deterministic recipe for one corrupted initial configuration.
///
/// The four destinations cover the full configuration space reachable
/// through the composed system's interfaces:
///
/// - `fwd_preload` / `bwd_preload` — junk copies in transit on the data /
///   acknowledgement channel (the in-transit packet-multiset scramble),
/// - `rx_feed` — junk data packets pushed through the receiver's
///   `on_receive_pkt` before the run (scrambles receiver control state and
///   queues phantom deliveries/acks),
/// - `tx_feed` — junk acknowledgements pushed through the transmitter's
///   `on_receive_pkt` (scrambles transmitter control state).
///
/// # Example
///
/// ```
/// use nonfifo_channel::{CorruptionSeverity, ScramblePlan};
///
/// let a = ScramblePlan::generate(CorruptionSeverity::Medium, 7);
/// let b = ScramblePlan::generate(CorruptionSeverity::Medium, 7);
/// assert_eq!(a, b); // deterministic per (severity, seed)
/// assert!(!a.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScramblePlan {
    /// Junk data packets to push through the receiver before the run.
    pub rx_feed: Vec<Packet>,
    /// Junk acknowledgements to push through the transmitter before the run.
    pub tx_feed: Vec<Packet>,
    /// Junk copies to place in transit on the forward channel.
    pub fwd_preload: Vec<Packet>,
    /// Junk copies to place in transit on the backward channel.
    pub bwd_preload: Vec<Packet>,
}

impl ScramblePlan {
    /// Generates the plan for `(severity, seed)`. Same inputs, same plan,
    /// forever — execution fingerprints of corrupted runs replay bit-exactly.
    pub fn generate(severity: CorruptionSeverity, seed: u64) -> ScramblePlan {
        let mut rng = StdRng::seed_from_u64(seed ^ SCRAMBLE_SALT);
        let (values, max_copies) = severity.scale();
        let mut plan = ScramblePlan::default();
        let mut used: Vec<Packet> = Vec::with_capacity(values);
        for _ in 0..values {
            // Distinct packet values keep per-value multiplicity at the
            // per-value copy count: the small-header pool is only 8 wide, so
            // two "different" junk values could otherwise collide and stack
            // their copies past MAX_JUNK_MULTIPLICITY.
            let mut pkt = junk_packet(&mut rng);
            while used.contains(&pkt) {
                pkt = junk_packet(&mut rng);
            }
            used.push(pkt);
            let copies = rng.gen_range(1..max_copies + 1);
            for _ in 0..copies {
                match rng.gen_range(0..4) {
                    0 => plan.rx_feed.push(pkt),
                    1 => plan.tx_feed.push(pkt),
                    2 => plan.fwd_preload.push(pkt),
                    _ => plan.bwd_preload.push(pkt),
                }
            }
        }
        plan
    }

    /// Total junk copies across all destinations.
    pub fn len(&self) -> usize {
        self.rx_feed.len() + self.tx_feed.len() + self.fwd_preload.len() + self.bwd_preload.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The highest multiplicity any single packet value reaches across the
    /// whole plan (what a counting protocol's capacity must exceed).
    pub fn max_multiplicity(&self) -> usize {
        let mut counts: std::collections::BTreeMap<Packet, usize> =
            std::collections::BTreeMap::new();
        for p in self
            .rx_feed
            .iter()
            .chain(&self.tx_feed)
            .chain(&self.fwd_preload)
            .chain(&self.bwd_preload)
        {
            *counts.entry(*p).or_insert(0) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

/// One junk packet value. Headers mix a small range (poisons bounded-header
/// protocols, whose live labels are small indices) with large random indices
/// clamped below `2^31` (poisons counter-based protocols without risking
/// `u32` arithmetic overflow in their adopt paths). Payloads are absent or
/// drawn with bit 40 forced, so junk can never collide with the harness's
/// real payload words (small integers).
fn junk_packet(rng: &mut StdRng) -> Packet {
    let header = if rng.gen_bool(0.5) {
        Header::new(rng.gen_range(0..8) as u32)
    } else {
        Header::new((rng.next_u64() as u32) & 0x7fff_ffff)
    };
    if rng.gen_bool(0.5) {
        Packet::header_only(header)
    } else {
        Packet::new(header, Payload::new(rng.next_u64() | (1 << 40)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_spellings_roundtrip() {
        for s in CorruptionSeverity::ALL {
            assert_eq!(s.to_string().parse::<CorruptionSeverity>(), Ok(s));
        }
        assert!("loud".parse::<CorruptionSeverity>().is_err());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        for s in CorruptionSeverity::ALL {
            for seed in 0..50 {
                let a = ScramblePlan::generate(s, seed);
                let b = ScramblePlan::generate(s, seed);
                assert_eq!(a, b);
                assert!(!a.is_empty());
            }
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_plans() {
        let plans: Vec<ScramblePlan> = (0..20)
            .map(|seed| ScramblePlan::generate(CorruptionSeverity::Heavy, seed))
            .collect();
        let distinct = plans
            .iter()
            .filter(|p| plans.iter().filter(|q| q == p).count() == 1)
            .count();
        assert!(distinct >= 18, "only {distinct}/20 plans distinct");
    }

    #[test]
    fn multiplicity_stays_bounded() {
        for s in CorruptionSeverity::ALL {
            for seed in 0..200 {
                let plan = ScramblePlan::generate(s, seed);
                assert!(
                    plan.max_multiplicity() <= MAX_JUNK_MULTIPLICITY,
                    "{s} seed {seed}: multiplicity {}",
                    plan.max_multiplicity()
                );
            }
        }
    }

    #[test]
    fn severity_scales_volume() {
        let avg = |s: CorruptionSeverity| -> f64 {
            (0..100)
                .map(|seed| ScramblePlan::generate(s, seed).len())
                .sum::<usize>() as f64
                / 100.0
        };
        let (l, m, h) = (
            avg(CorruptionSeverity::Light),
            avg(CorruptionSeverity::Medium),
            avg(CorruptionSeverity::Heavy),
        );
        assert!(l < m && m < h, "light {l}, medium {m}, heavy {h}");
    }

    #[test]
    fn junk_headers_stay_below_two_to_the_31() {
        for seed in 0..100 {
            let plan = ScramblePlan::generate(CorruptionSeverity::Heavy, seed);
            for p in plan
                .rx_feed
                .iter()
                .chain(&plan.tx_feed)
                .chain(&plan.fwd_preload)
                .chain(&plan.bwd_preload)
            {
                assert!(p.header().index() < 1 << 31);
                if let Some(pl) = p.payload() {
                    assert!(pl.word() >= 1 << 40);
                }
            }
        }
    }
}
