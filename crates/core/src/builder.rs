//! The one way to assemble a [`Simulation`] from declarative parts.
//!
//! `Simulation` historically grew one constructor per channel kind; the
//! builder replaces that fan-out with a single chain over the
//! [`Discipline`] factory, and is what the campaign engine drives when it
//! expands a scenario matrix:
//!
//! ```
//! use nonfifo_channel::Discipline;
//! use nonfifo_core::{SimConfig, Simulation};
//! use nonfifo_protocols::SequenceNumber;
//!
//! let mut sim = Simulation::builder(SequenceNumber::factory())
//!     .channel(Discipline::Probabilistic { q: 0.25 })
//!     .seed(7)
//!     .build();
//! let stats = sim.deliver(10, &SimConfig::default()).expect("delivery");
//! assert_eq!(stats.messages_delivered, 10);
//! ```
//!
//! Seeding follows the historical convention (forward channel gets `seed`,
//! backward `seed + 1`; a fault plan's decorators likewise), so every
//! builder spelling reproduces the execution fingerprint of the constructor
//! it replaces — see `tests/builder_parity.rs`.

use crate::Simulation;
use nonfifo_channel::{CorruptionSeverity, Discipline, FaultPlan, ScramblePlan};
use nonfifo_protocols::DataLink;

/// Assembles a [`Simulation`] from a protocol, a channel [`Discipline`], a
/// seed, and an optional chaos [`FaultPlan`].
///
/// Defaults: FIFO channels, seed 0, no faults. For channel substrates
/// outside the discipline family (adversarial schedules, multipath virtual
/// links), fall back to [`Simulation::with_channels`].
#[derive(Debug, Clone)]
#[must_use = "the builder does nothing until .build()"]
pub struct SimulationBuilder<P: DataLink> {
    proto: P,
    discipline: Discipline,
    seed: u64,
    fault_plan: Option<FaultPlan>,
    corruption: Option<(CorruptionSeverity, u64)>,
}

impl<P: DataLink> SimulationBuilder<P> {
    pub(crate) fn new(proto: P) -> Self {
        SimulationBuilder {
            proto,
            discipline: Discipline::Fifo,
            seed: 0,
            fault_plan: None,
            corruption: None,
        }
    }

    /// Selects the channel discipline (default: [`Discipline::Fifo`]).
    pub fn channel(mut self, discipline: Discipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Seeds the channels: forward gets `seed`, backward `seed + 1`
    /// (default: 0). [`Discipline::Fifo`] ignores it unless a fault plan
    /// consumes it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Wraps both directions in the chaos fault-injection decorator driven
    /// by `plan` (default: no faults).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Scrambles the initial state before the first delivery: a
    /// [`ScramblePlan`] seeded by `corruption_seed` preloads junk packets
    /// into both channels (declared as monitored sends, so PL1 stays
    /// checkable) and feeds junk receipts to both automata (state
    /// corruption). The build also switches the online monitor into
    /// convergence mode and retains the execution, so a
    /// `ConvergenceSpec` can judge the run afterwards. The plan is a pure
    /// function of `(severity, corruption_seed)`: fingerprints replay.
    pub fn initial_corruption(
        mut self,
        severity: CorruptionSeverity,
        corruption_seed: u64,
    ) -> Self {
        self.corruption = Some((severity, corruption_seed));
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics on discipline parameters that
    /// [`Discipline::validate`] rejects (out-of-range probabilities).
    pub fn build(self) -> Simulation {
        let (fwd, bwd) = match &self.fault_plan {
            None => self.discipline.build_pair(self.seed),
            Some(plan) => self.discipline.build_pair_with_faults(self.seed, plan),
        };
        let mut sim = Simulation::with_channels(self.proto, fwd, bwd);
        if let Some((severity, corruption_seed)) = self.corruption {
            sim.enable_convergence_monitor();
            sim.retain_execution();
            sim.corrupt_initial_state(&ScramblePlan::generate(severity, corruption_seed));
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use nonfifo_protocols::SequenceNumber;

    #[test]
    fn defaults_are_fifo_seed_zero_no_faults() {
        let mut sim = Simulation::builder(SequenceNumber::factory()).build();
        let stats = sim.deliver(5, &SimConfig::default()).unwrap();
        assert_eq!(stats.messages_delivered, 5);
        assert!(sim.fault_log().is_empty());
    }

    #[test]
    fn fault_plan_produces_logged_faults() {
        let plan = FaultPlan::parse("dup 0.9").unwrap();
        let mut sim = Simulation::builder(SequenceNumber::factory())
            .fault_plan(plan)
            .seed(3)
            .build();
        sim.deliver(20, &SimConfig::default()).unwrap();
        assert!(!sim.fault_log().is_empty());
    }
}
