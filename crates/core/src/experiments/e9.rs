//! E9 — ablation: sliding-window protocols versus bounded reorder
//! distance.
//!
//! The paper's adversary reorders arbitrarily; real channels mostly do not.
//! This experiment maps where the lower bounds stop biting: a window-`w`
//! protocol (modulus `2w`) delivers correctly as long as the channel's
//! overtaking distance stays below the slack `M − w = w`, and aliases into
//! phantom/missing deliveries beyond it.

use super::table::markdown;
use crate::{SimConfig, SimError, Simulation};
use nonfifo_channel::Discipline;
use nonfifo_protocols::SlidingWindow;
use std::fmt;

/// One (window, reorder bound) cell.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Window size `w` (modulus `2w`).
    pub window: u32,
    /// Channel overtaking bound `B`.
    pub bound: u64,
    /// Outcome: `ok`, `corrupt` (wrong payload order), or the error.
    pub outcome: String,
    /// True if all messages arrived intact and in order.
    pub ok: bool,
}

/// The E9 report.
#[derive(Debug, Clone)]
pub struct E9Report {
    /// All grid cells.
    pub rows: Vec<E9Row>,
    /// Messages per cell.
    pub messages: u64,
}

impl E9Report {
    /// The outcome for a specific cell.
    pub fn cell(&self, window: u32, bound: u64) -> Option<&E9Row> {
        self.rows
            .iter()
            .find(|r| r.window == window && r.bound == bound)
    }
}

impl fmt::Display for E9Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.window.to_string(),
                    (2 * r.window).to_string(),
                    r.bound.to_string(),
                    r.outcome.clone(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &["window w", "headers 2w", "reorder bound B", "outcome"],
                &rows
            )
        )
    }
}

/// Runs E9 on a `w × B` grid.
pub fn e9_window_ablation(messages: u64, seed: u64) -> E9Report {
    let mut rows = Vec::new();
    for &window in &[1u32, 2, 4, 8] {
        for &bound in &[1u64, 2, 4, 8, 16, 32] {
            let mut sim = Simulation::builder(SlidingWindow::new(window))
                .channel(Discipline::BoundedReorder { bound })
                .seed(seed)
                .build();
            let cfg = SimConfig {
                payloads: true,
                max_steps_per_message: 50_000,
                ..SimConfig::default()
            };
            let (outcome, ok) = match sim.deliver(messages, &cfg) {
                Ok(stats) => {
                    let expect: Vec<u64> = (0..messages).collect();
                    if stats.delivered_payloads == expect {
                        ("ok".to_string(), true)
                    } else {
                        ("corrupt (order/content)".to_string(), false)
                    }
                }
                Err(SimError::Violation(v)) => (format!("violation: {v}"), false),
                Err(SimError::Stalled { message, .. }) => {
                    (format!("stalled at message {message}"), false)
                }
            };
            rows.push(E9Row {
                window,
                bound,
                outcome,
                ok,
            });
        }
    }
    E9Report { rows, messages }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_shape() {
        let report = e9_window_ablation(150, 23);
        // FIFO-ish channels are always fine.
        for &w in &[1u32, 2, 4, 8] {
            let cell = report.cell(w, 1).unwrap();
            assert!(cell.ok, "w={w} B=1: {}", cell.outcome);
        }
        // Ample window tolerates mild reordering.
        assert!(report.cell(8, 4).unwrap().ok);
        // A tight window under heavy reordering must fail somehow.
        let tight = report.cell(1, 32).unwrap();
        assert!(!tight.ok, "w=1 B=32 unexpectedly ok");
    }
}
