//! E7 — Theorem 5.4 ([Hoe63]): the Hoeffding bound dominates the exact and
//! the sampled binomial lower tail.

use super::table::markdown;
use nonfifo_analysis::{binomial_lower_tail, hoeffding_lower_tail};
use nonfifo_rng::StdRng;
use std::fmt;

/// One (n, q, α) comparison.
#[derive(Debug, Clone, Copy)]
pub struct E7Row {
    /// Number of Bernoulli trials.
    pub n: u64,
    /// Success probability.
    pub q: f64,
    /// Tail point `α < q`.
    pub alpha: f64,
    /// Monte-Carlo estimate of `Pr[ΣX ≤ αn]`.
    pub sampled: f64,
    /// Exact binomial tail.
    pub exact: f64,
    /// Hoeffding bound `e^{−2n(α−q)²}`.
    pub bound: f64,
}

/// The E7 report.
#[derive(Debug, Clone)]
pub struct E7Report {
    /// Comparison rows.
    pub rows: Vec<E7Row>,
    /// True if `sampled ≤ bound` and `exact ≤ bound` everywhere.
    pub dominated: bool,
}

impl fmt::Display for E7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    format!("{:.2}", r.q),
                    format!("{:.2}", r.alpha),
                    format!("{:.2e}", r.sampled),
                    format!("{:.2e}", r.exact),
                    format!("{:.2e}", r.bound),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            markdown(
                &[
                    "n",
                    "q",
                    "α",
                    "sampled tail",
                    "exact tail",
                    "Hoeffding bound"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "bound dominates everywhere: {}",
            if self.dominated { "yes" } else { "NO" }
        )
    }
}

/// Runs E7 with `samples` Monte-Carlo draws per row.
pub fn e7_hoeffding(samples: u64, seed: u64) -> E7Report {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for &n in &[100u64, 1000] {
        for &alpha in &[0.1, 0.2, 0.25] {
            let q = 0.3;
            let k = (alpha * n as f64).floor() as u64;
            let mut hits = 0u64;
            for _ in 0..samples {
                let successes = (0..n).filter(|_| rng.gen_bool(q)).count() as u64;
                if successes <= k {
                    hits += 1;
                }
            }
            let sampled = hits as f64 / samples as f64;
            let exact = binomial_lower_tail(n, q, k);
            let bound = hoeffding_lower_tail(n, q, alpha);
            rows.push(E7Row {
                n,
                q,
                alpha,
                sampled,
                exact,
                bound,
            });
        }
    }
    let dominated = rows
        .iter()
        .all(|r| r.sampled <= r.bound + 1e-9 && r.exact <= r.bound + 1e-12);
    E7Report { rows, dominated }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_dominates() {
        let report = e7_hoeffding(2_000, 9);
        assert!(report.dominated);
        assert_eq!(report.rows.len(), 6);
        // Sampling agrees with the exact tail at coarse resolution.
        for r in &report.rows {
            assert!(
                (r.sampled - r.exact).abs() < 0.05,
                "sampled {} vs exact {}",
                r.sampled,
                r.exact
            );
        }
    }
}
