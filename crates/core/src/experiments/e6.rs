//! E6 — Lemmas 5.2 and 5.3: the probable dominant packet accumulates at
//! least `nq/4k²` delayed copies by its `(n/2k+1)`-th dominant extension
//! (5.2), and its delayed population grows by a factor `≥ 1 + q − εₙ` in a
//! constant fraction of its dominant extensions (5.3).

use super::table::{f3, markdown};
use nonfifo_adversary::{DominantTracker, ProbRunConfig};
use nonfifo_analysis::Summary;
use nonfifo_protocols::Outnumber;
use std::fmt;

/// Per-seed observation.
#[derive(Debug, Clone, Copy)]
pub struct E6Row {
    /// RNG seed.
    pub seed: u64,
    /// `m_{l,j}` at the `(n/2k+1)`-th dominant extension of the probable
    /// dominant packet (0 if it was dominant fewer times).
    pub m_mid: u64,
    /// `m_{n,j}` at the end of the run.
    pub m_final: u64,
    /// Fraction of the probable dominant's growth steps with ratio
    /// `≥ 1 + q − εₙ` (εₙ = 1/√n) — the Lemma 5.3 events.
    pub growth_fraction: f64,
}

/// The E6 report.
#[derive(Debug, Clone)]
pub struct E6Report {
    /// Per-seed rows.
    pub rows: Vec<E6Row>,
    /// The lemma's threshold `nq/4k²`.
    pub threshold: f64,
    /// Fraction of seeds with `m_mid ≥ threshold`.
    pub fraction_meeting: f64,
    /// The lemma's probability guarantee `1 − e^{−nq²/4k³}` (vacuous for
    /// small `n` — the honest consistency check is against this, not
    /// against an arbitrary confidence).
    pub lemma_probability: f64,
    /// Run parameters.
    pub n: u64,
    /// Channel delay probability.
    pub q: f64,
    /// Header count `k`.
    pub k: u64,
}

impl fmt::Display for E6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mid: Summary = self.rows.iter().map(|r| r.m_mid as f64).collect();
        let fin: Summary = self.rows.iter().map(|r| r.m_final as f64).collect();
        let grw: Summary = self.rows.iter().map(|r| r.growth_fraction).collect();
        let rows = vec![
            vec![
                "m at (n/2k+1)-th dominant ext".to_string(),
                f3(mid.min()),
                f3(mid.mean()),
                f3(mid.max()),
            ],
            vec![
                "m at end of run".to_string(),
                f3(fin.min()),
                f3(fin.mean()),
                f3(fin.max()),
            ],
            vec![
                "L5.3: fraction of growth steps ≥ 1+q−εₙ".to_string(),
                f3(grw.min()),
                f3(grw.mean()),
                f3(grw.max()),
            ],
        ];
        writeln!(
            f,
            "{}",
            markdown(&["quantity", "min", "mean", "max"], &rows)
        )?;
        writeln!(
            f,
            "\nL5.2 threshold nq/4k² = {} (n={}, q={}, k={}); fraction of {} seeds with m ≥ threshold: {} (lemma guarantees ≥ {})",
            f3(self.threshold),
            self.n,
            self.q,
            self.k,
            self.rows.len(),
            f3(self.fraction_meeting),
            f3(self.lemma_probability)
        )
    }
}

/// Runs E6: `seeds` Monte-Carlo runs of the bounded-header witness.
pub fn e6_seeding_lemma(n: u64, q: f64, seeds: u64) -> E6Report {
    let proto = Outnumber::factory();
    let k = u64::from(proto.labels());
    let mut rows = Vec::new();
    for seed in 0..seeds {
        let report = DominantTracker::new(ProbRunConfig {
            messages: n,
            q,
            seed,
            max_steps_per_message: 5_000_000,
        })
        .run(&proto);
        assert!(report.completed && report.violation.is_none());
        let Some(j) = report.probable_dominant() else {
            rows.push(E6Row {
                seed,
                m_mid: 0,
                m_final: 0,
                growth_fraction: 0.0,
            });
            continue;
        };
        let traj = report.m_trajectory(j);
        // Index of the (n/2k + 1)-th extension in which j is dominant.
        let target_rank = (n / (2 * k)) as usize + 1;
        let mut rank = 0usize;
        let mut mid_index = None;
        for obs in &report.per_message {
            if obs.dominant.contains(&j) {
                rank += 1;
                if rank == target_rank {
                    mid_index = Some(obs.message as usize);
                    break;
                }
            }
        }
        let m_mid = mid_index.map(|i| traj[i]).unwrap_or(0);
        let m_final = traj.last().copied().unwrap_or(0);
        let eps = 1.0 / (n as f64).sqrt();
        let ratios = report.growth_ratios(j);
        let growth_fraction = if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().filter(|&&r| r >= 1.0 + q - eps).count() as f64 / ratios.len() as f64
        };
        rows.push(E6Row {
            seed,
            m_mid,
            m_final,
            growth_fraction,
        });
    }
    let threshold = n as f64 * q / (4.0 * (k * k) as f64);
    let meeting = rows.iter().filter(|r| r.m_mid as f64 >= threshold).count();
    let fraction_meeting = meeting as f64 / rows.len().max(1) as f64;
    let lemma_probability =
        (1.0 - (-(n as f64) * q * q / (4.0 * (k * k * k) as f64)).exp()).max(0.0);
    E6Report {
        rows,
        threshold,
        fraction_meeting,
        lemma_probability,
        n,
        q,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_with_lemma_guarantee() {
        let report = e6_seeding_lemma(12, 0.3, 20);
        // At n = 12 the lemma's probability guarantee 1 − e^{−nq²/4k³} is
        // essentially vacuous; consistency means measuring at least it.
        assert!(
            report.fraction_meeting >= report.lemma_probability,
            "fraction {} below guarantee {}",
            report.fraction_meeting,
            report.lemma_probability
        );
        // The end-of-run population is substantial even at tiny n (the
        // growth Lemma 5.3 compounds on).
        let mean_final: f64 =
            report.rows.iter().map(|r| r.m_final as f64).sum::<f64>() / report.rows.len() as f64;
        assert!(mean_final > report.threshold, "mean final {mean_final}");
        // Lemma 5.3's growth events dominate: the outnumber witness grows
        // by far more than (1+q−ε) at nearly every dominant step.
        let mean_growth: f64 =
            report.rows.iter().map(|r| r.growth_fraction).sum::<f64>() / report.rows.len() as f64;
        assert!(mean_growth > 0.5, "mean growth fraction {mean_growth}");
        assert!(report.to_string().contains("threshold"));
    }
}
