//! E11 — exhaustive small-scope verification.
//!
//! The falsifiers follow the paper's constructive strategy; this experiment
//! enumerates *every* adversary behaviour in a bounded scope by exhaustive
//! search. Bounded-header victims get shortest counterexamples; the naive
//! protocol gets a certificate that no invalid execution exists in scope —
//! small-scope evidence for the dichotomy that the theorems state in
//! general.

use super::table::markdown;
use nonfifo_adversary::{explore, ExploreConfig, ExploreOutcome};
use nonfifo_protocols::{AlternatingBit, DataLink, GoBackN, NaiveCycle, SequenceNumber};
use std::fmt;

/// One protocol's exhaustive-search verdict.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Protocol name.
    pub protocol: String,
    /// Scope description (messages / depth / pool).
    pub scope: String,
    /// Verdict rendering.
    pub verdict: String,
    /// True if a counterexample was found.
    pub counterexample: bool,
    /// Shortest counterexample depth (adversary actions), if any.
    pub depth: Option<usize>,
    /// States visited.
    pub states: usize,
}

/// The E11 report.
#[derive(Debug, Clone)]
pub struct E11Report {
    /// One row per protocol.
    pub rows: Vec<E11Row>,
}

impl fmt::Display for E11Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.scope.clone(),
                    r.verdict.clone(),
                    r.states.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &["protocol", "scope (msgs/depth/pool)", "verdict", "states"],
                &rows
            )
        )
    }
}

fn probe(proto: &dyn DataLink, cfg: ExploreConfig) -> E11Row {
    let outcome = explore(proto, &cfg);
    let scope = format!("{}/{}/{}", cfg.max_messages, cfg.max_depth, cfg.max_pool);
    match outcome {
        ExploreOutcome::Counterexample {
            depth, execution, ..
        } => E11Row {
            protocol: proto.name(),
            scope,
            verdict: format!(
                "shortest invalid execution: {depth} actions, {} events",
                execution.len()
            ),
            counterexample: true,
            depth: Some(depth),
            states: 0,
        },
        ExploreOutcome::Exhausted { states } => E11Row {
            protocol: proto.name(),
            scope,
            verdict: "no invalid execution in scope (exhaustive)".into(),
            counterexample: false,
            depth: None,
            states,
        },
        ExploreOutcome::Truncated { states } => E11Row {
            protocol: proto.name(),
            scope,
            verdict: "inconclusive (state budget)".into(),
            counterexample: false,
            depth: None,
            states,
        },
    }
}

/// Runs E11.
pub fn e11_exhaustive() -> E11Report {
    let small = ExploreConfig {
        max_messages: 3,
        max_depth: 12,
        max_pool: 5,
        max_states: 300_000,
        ..ExploreConfig::default()
    };
    let cycle = ExploreConfig {
        max_messages: 4,
        max_depth: 16,
        max_pool: 6,
        max_states: 500_000,
        ..ExploreConfig::default()
    };
    let rows = vec![
        probe(&AlternatingBit::new(), small),
        probe(&GoBackN::new(1), cycle),
        probe(&NaiveCycle::new(3), cycle),
        probe(&SequenceNumber::new(), small),
    ];
    E11Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dichotomy_verified_exhaustively() {
        let report = e11_exhaustive();
        let row = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r.protocol.starts_with(name))
                .unwrap()
        };
        assert!(row("alternating-bit").counterexample);
        assert!(row("naive-cycle").counterexample);
        assert!(!row("sequence-number").counterexample);
        assert!(row("sequence-number").states > 0);
        // The minimal alternating-bit attack is short.
        assert!(row("alternating-bit").depth.unwrap() <= 7);
    }
}
