//! E3 — Theorem 3.1's contrapositive: the naive `n`-header protocol
//! survives the adversary in `O(log n)` space.

use super::table::markdown;
use nonfifo_adversary::{FalsifyOutcome, MfConfig, MfFalsifier};
use nonfifo_protocols::SequenceNumber;
use std::fmt;

/// One run of the naive protocol under attack.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Number of messages `n`.
    pub n: u64,
    /// Whether the protocol survived the Theorem 3.1 adversary.
    pub survived: bool,
    /// Distinct forward packets used (the paper: exactly `n`).
    pub headers_used: u64,
    /// Peak live space in bytes (the paper: `O(log n)`).
    pub peak_space_bytes: usize,
    /// Forward packets sent in total.
    pub packets: u64,
}

/// The E3 report.
#[derive(Debug, Clone)]
pub struct E3Report {
    /// One row per `n`.
    pub rows: Vec<E3Row>,
}

impl fmt::Display for E3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    if r.survived {
                        "survived".into()
                    } else {
                        "FELL".into()
                    },
                    r.headers_used.to_string(),
                    r.peak_space_bytes.to_string(),
                    r.packets.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &[
                    "n",
                    "outcome",
                    "headers used",
                    "peak space (B)",
                    "fwd packets"
                ],
                &rows
            )
        )
    }
}

/// Runs E3 for `n ∈ {8, 32, 128}`.
pub fn e3_naive_protocol() -> E3Report {
    let rows = [8u64, 32, 128]
        .into_iter()
        .map(|n| {
            let falsifier = MfFalsifier::new(MfConfig {
                max_messages: n,
                ..MfConfig::default()
            });
            let outcome = falsifier.run(&SequenceNumber::new());
            match outcome {
                FalsifyOutcome::Survived(rep) => E3Row {
                    n,
                    survived: true,
                    headers_used: rep.distinct_forward_packets,
                    peak_space_bytes: rep.peak_space_bytes,
                    packets: rep.forward_packets_sent,
                },
                other => E3Row {
                    n,
                    survived: false,
                    headers_used: 0,
                    peak_space_bytes: 0,
                    packets: match other {
                        FalsifyOutcome::Violation(rep) => rep.forward_packets_sent,
                        _ => 0,
                    },
                },
            }
        })
        .collect();
    E3Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_protocol_shape() {
        let report = e3_naive_protocol();
        for row in &report.rows {
            assert!(row.survived, "n={}: fell", row.n);
            // Exactly n headers (one per message).
            assert_eq!(row.headers_used, row.n);
        }
        // Space grows sub-linearly: ~log-scale between n=8 and n=128.
        let s8 = report.rows[0].peak_space_bytes;
        let s128 = report.rows[2].peak_space_bytes;
        assert!(s128 <= s8 + 16, "space should be O(log n): {s8} → {s128}");
    }
}
