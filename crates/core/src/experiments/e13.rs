//! E13 — parallel certification of growing scopes.
//!
//! E11 certifies the naive sequence-number protocol safe in one small
//! scope; this experiment grows the scope along every axis (messages,
//! depth, pool) and certifies each with the level-synchronized parallel
//! explorer, cross-checked against the sequential oracle. The state count
//! per scope is the certified coverage; the deterministic-merge design
//! makes the parallel report byte-identical to the sequential one, so the
//! `agrees` column is a differential test run as an experiment.
//!
//! Throughput (states/sec vs. threads) is measured by the
//! `explore_par` bench, not here — experiment output must be
//! deterministic.

use super::table::markdown;
use nonfifo_adversary::{explore, ExploreConfig, ExploreOutcome, ParallelExplorer};
use nonfifo_protocols::SequenceNumber;
use std::fmt;

/// One certified scope.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// Scope description (messages / depth / pool).
    pub scope: String,
    /// Distinct states covered by the certificate.
    pub states: usize,
    /// Verdict rendering.
    pub verdict: String,
    /// True if the parallel and sequential reports were byte-identical.
    pub agrees: bool,
}

/// The E13 report.
#[derive(Debug, Clone)]
pub struct E13Report {
    /// One row per scope, smallest first.
    pub rows: Vec<E13Row>,
}

impl fmt::Display for E13Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scope.clone(),
                    r.states.to_string(),
                    r.verdict.clone(),
                    if r.agrees { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &["scope (msgs/depth/pool)", "states", "verdict", "seq = par"],
                &rows
            )
        )
    }
}

fn certify(cfg: ExploreConfig) -> E13Row {
    let proto = SequenceNumber::new();
    let par = ParallelExplorer::new(0).explore(&proto, &cfg);
    let seq = explore(&proto, &cfg);
    let verdict = match &par {
        ExploreOutcome::Exhausted { .. } => "certified safe (exhaustive)".to_string(),
        ExploreOutcome::Counterexample { depth, .. } => {
            format!("counterexample at depth {depth}")
        }
        ExploreOutcome::Truncated { .. } => "inconclusive (state budget)".to_string(),
    };
    let states = match par {
        ExploreOutcome::Exhausted { states } | ExploreOutcome::Truncated { states } => states,
        ExploreOutcome::Counterexample { .. } => 0,
    };
    E13Row {
        scope: format!("{}/{}/{}", cfg.max_messages, cfg.max_depth, cfg.max_pool),
        states,
        verdict,
        agrees: par.report() == seq.report(),
    }
}

/// Runs E13.
pub fn e13_parallel_certification() -> E13Report {
    let scopes = [(3, 12, 5), (4, 16, 6), (5, 18, 7), (6, 20, 8)];
    let rows = scopes
        .into_iter()
        .map(|(max_messages, max_depth, max_pool)| {
            certify(ExploreConfig {
                max_messages,
                max_depth,
                max_pool,
                max_states: 2_000_000,
                ..ExploreConfig::default()
            })
        })
        .collect();
    E13Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scope_is_certified_and_engines_agree() {
        let report = e13_parallel_certification();
        assert_eq!(report.rows.len(), 4);
        let mut prev = 0;
        for row in &report.rows {
            assert!(row.agrees, "engines disagreed on scope {}", row.scope);
            assert!(
                row.verdict.contains("certified"),
                "scope {} verdict: {}",
                row.scope,
                row.verdict
            );
            assert!(
                row.states > prev,
                "coverage should grow with the scope: {} after {prev}",
                row.states
            );
            prev = row.states;
        }
    }
}
