//! E13 — parallel certification of growing scopes.
//!
//! E11 certifies the naive sequence-number protocol safe in one small
//! scope; this experiment grows the scope along every axis (messages,
//! depth, pool) and certifies each with the level-synchronized parallel
//! explorer, cross-checked against the sequential oracle. The state count
//! per scope is the certified coverage; the deterministic-merge design
//! makes the parallel report byte-identical to the sequential one, so the
//! `agrees` column is a differential test run as an experiment.
//!
//! Throughput (states/sec vs. threads) is measured by the
//! `explore_par` bench, not here — experiment output must be
//! deterministic.

use super::table::markdown;
use nonfifo_adversary::{explore, ExploreConfig, ExploreOutcome, ParallelExplorer};
use nonfifo_protocols::SequenceNumber;
use std::fmt;

/// One certified scope.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// Scope description (messages / depth / pool).
    pub scope: String,
    /// Distinct states covered by the full certificate.
    pub states: usize,
    /// Distinct quotient states covered by the reduced (`--por`)
    /// certificate of the same scope.
    pub por_states: usize,
    /// Verdict rendering.
    pub verdict: String,
    /// True if the parallel and sequential reports were byte-identical.
    pub agrees: bool,
    /// True if the reduced engine reached the same verdict as the full one.
    pub por_agrees: bool,
}

impl E13Row {
    /// Full states per reduced state — the partial-order reduction's
    /// certified-scope multiplier at this scope.
    pub fn reduction_ratio(&self) -> f64 {
        self.states as f64 / self.por_states.max(1) as f64
    }
}

/// The E13 report.
#[derive(Debug, Clone)]
pub struct E13Report {
    /// One row per scope, smallest first.
    pub rows: Vec<E13Row>,
}

impl fmt::Display for E13Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scope.clone(),
                    r.states.to_string(),
                    r.por_states.to_string(),
                    format!("{:.2}x", r.reduction_ratio()),
                    r.verdict.clone(),
                    if r.agrees { "yes" } else { "NO" }.to_string(),
                    if r.por_agrees { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &[
                    "scope (msgs/depth/pool)",
                    "states",
                    "por states",
                    "reduction",
                    "verdict",
                    "seq = par",
                    "por = full"
                ],
                &rows
            )
        )
    }
}

fn states_of(outcome: &ExploreOutcome) -> usize {
    match outcome {
        ExploreOutcome::Exhausted { states } | ExploreOutcome::Truncated { states } => *states,
        ExploreOutcome::Counterexample { .. } => 0,
    }
}

fn certify(cfg: ExploreConfig) -> E13Row {
    let proto = SequenceNumber::new();
    let par = ParallelExplorer::new(0).explore(&proto, &cfg);
    let seq = explore(&proto, &cfg);
    let por = ParallelExplorer::new(0).explore(&proto, &ExploreConfig { por: true, ..cfg });
    let verdict = match &par {
        ExploreOutcome::Exhausted { .. } => "certified safe (exhaustive)".to_string(),
        ExploreOutcome::Counterexample { depth, .. } => {
            format!("counterexample at depth {depth}")
        }
        ExploreOutcome::Truncated { .. } => "inconclusive (state budget)".to_string(),
    };
    // The reduced run certifies the same scope when it reaches the same
    // verdict kind — its state count is the quotient's, so only the kind
    // (and counterexample depth) is comparable.
    let por_agrees = match (&par, &por) {
        (ExploreOutcome::Exhausted { .. }, ExploreOutcome::Exhausted { .. }) => true,
        (
            ExploreOutcome::Counterexample { depth: a, .. },
            ExploreOutcome::Counterexample { depth: b, .. },
        ) => a == b,
        (ExploreOutcome::Truncated { .. }, ExploreOutcome::Truncated { .. }) => true,
        _ => false,
    };
    E13Row {
        scope: format!("{}/{}/{}", cfg.max_messages, cfg.max_depth, cfg.max_pool),
        states: states_of(&par),
        por_states: states_of(&por),
        verdict,
        agrees: par.report() == seq.report(),
        por_agrees,
    }
}

/// Runs E13.
pub fn e13_parallel_certification() -> E13Report {
    let scopes = [(3, 12, 5), (4, 16, 6), (5, 18, 7), (6, 20, 8)];
    let rows = scopes
        .into_iter()
        .map(|(max_messages, max_depth, max_pool)| {
            certify(ExploreConfig {
                max_messages,
                max_depth,
                max_pool,
                max_states: 2_000_000,
                ..ExploreConfig::default()
            })
        })
        .collect();
    E13Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scope_is_certified_and_engines_agree() {
        let report = e13_parallel_certification();
        assert_eq!(report.rows.len(), 4);
        let mut prev = 0;
        for row in &report.rows {
            assert!(row.agrees, "engines disagreed on scope {}", row.scope);
            assert!(
                row.por_agrees,
                "reduced engine disagreed on scope {}",
                row.scope
            );
            assert!(
                row.verdict.contains("certified"),
                "scope {} verdict: {}",
                row.scope,
                row.verdict
            );
            assert!(
                row.states > prev,
                "coverage should grow with the scope: {} after {prev}",
                row.states
            );
            prev = row.states;
        }
        // The reduction's acceptance line: at the top scope the quotient
        // certifies at least 5x the full state count per unit of budget
        // (it is ~25x; the ratio is structural, so this is a determinism
        // pin as much as a strength floor).
        let top = report.rows.last().unwrap();
        assert!(
            top.reduction_ratio() >= 5.0,
            "reduction fell below the 5x acceptance line at {}: {:.2}x",
            top.scope,
            top.reduction_ratio()
        );
    }
}
