//! E5 — Theorem 5.1: over a probabilistic channel, bounded headers cost
//! `(1+q−εₙ)^Ω(n)` packets; unbounded headers stay linear.
//!
//! A third regime is measured deliberately: the *oracle-assisted*
//! [`AfekFlush`](nonfifo_protocols::AfekFlush) reconstruction. Over the
//! never-draining PL2p channel the stale population of each label grows in
//! proportion to the cumulative sends, so even with the exact stale-count
//! oracle the cost is exponential — but with the *reduced* base
//! `≈ 1 + q/(k(1−q))` instead of the outnumber witness's ≈ 2. The oracle
//! shrinks the base, not the regime: Theorem 5.1's `(1+q−εₙ)^Ω(n)` form
//! (note the `Ω(n)` exponent, which absorbs the base reduction) is robust
//! even against stale-count information.

use super::table::{f3, markdown};
use nonfifo_adversary::{DominantTracker, ProbRunConfig};
use nonfifo_analysis::{fit_exponential, fit_power};
use nonfifo_protocols::{AfekFlush, DataLink, Outnumber, SequenceNumber};
use std::fmt;

/// One protocol × q growth measurement.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Protocol name.
    pub protocol: String,
    /// Channel delay probability.
    pub q: f64,
    /// Messages delivered.
    pub n: u64,
    /// Total forward packets.
    pub total_packets: u64,
    /// Fitted growth base of cumulative packets vs. `n`.
    pub fitted_base: f64,
    /// Fitted power-law degree of cumulative packets vs. `n` (separates
    /// linear ≈ 1 from super-linear regimes).
    pub fitted_degree: f64,
    /// The theorem's reference growth `1 + q`.
    pub one_plus_q: f64,
    /// Whether the measured growth respects the lower bound (exponential
    /// protocols must have base ≥ a positive margin above 1; linear
    /// protocols are the contrast and are expected to hug 1).
    pub exponential: bool,
}

/// The E5 report.
#[derive(Debug, Clone)]
pub struct E5Report {
    /// One row per (protocol, q).
    pub rows: Vec<E5Row>,
}

impl fmt::Display for E5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    f3(r.q),
                    r.n.to_string(),
                    r.total_packets.to_string(),
                    f3(r.fitted_base),
                    f3(r.fitted_degree),
                    f3(r.one_plus_q),
                    if r.exponential {
                        "exponential".into()
                    } else if r.fitted_degree > 1.5 {
                        "exponential (reduced base)".into()
                    } else {
                        "linear".into()
                    },
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &[
                    "protocol",
                    "q",
                    "n",
                    "total packets",
                    "fitted base",
                    "fitted degree",
                    "1+q",
                    "regime"
                ],
                &rows
            )
        )
    }
}

fn measure(proto: &dyn DataLink, n: u64, q: f64, seed: u64) -> (u64, f64, f64) {
    let report = DominantTracker::new(ProbRunConfig {
        messages: n,
        q,
        seed,
        max_steps_per_message: 5_000_000,
    })
    .run(proto);
    assert!(
        report.completed,
        "{} did not complete at q={q}",
        proto.name()
    );
    assert!(
        report.violation.is_none(),
        "{} violated safety at q={q}: {:?}",
        proto.name(),
        report.violation
    );
    // Cumulative packets after each message, from the per-extension sends.
    let mut cumulative = Vec::new();
    let mut total = 0u64;
    for obs in &report.per_message {
        total += obs.sends_by_header.values().sum::<u64>();
        cumulative.push(total as f64);
    }
    let ns: Vec<f64> = (1..=cumulative.len()).map(|i| i as f64).collect();
    let base = fit_exponential(&ns, &cumulative).base();
    let degree = fit_power(&ns, &cumulative).slope;
    (report.total_forward_sent, base, degree)
}

/// Runs E5: the exponential/linear dichotomy across `q`.
pub fn e5_probabilistic_growth(seed: u64) -> E5Report {
    let mut rows = Vec::new();
    for &q in &[0.1, 0.3, 0.5] {
        let n = 12;
        let (total, base, degree) = measure(&Outnumber::factory(), n, q, seed);
        rows.push(E5Row {
            protocol: Outnumber::factory().name(),
            q,
            n,
            total_packets: total,
            fitted_base: base,
            fitted_degree: degree,
            one_plus_q: 1.0 + q,
            exponential: base > 1.2,
        });
    }
    // The oracle-assisted reconstruction: still exponential over the
    // never-draining channel, with the reduced base ≈ 1 + q/(k(1−q)) — the
    // oracle shrinks the base, not the regime (see module docs).
    {
        let &q = &0.3;
        let n = 40;
        let (total, base, degree) = measure(&AfekFlush::new(), n, q, seed);
        rows.push(E5Row {
            protocol: AfekFlush::new().name() + " [oracle]",
            q,
            n,
            total_packets: total,
            fitted_base: base,
            fitted_degree: degree,
            one_plus_q: 1.0 + q,
            exponential: base > 1.2,
        });
    }
    for &q in &[0.1, 0.3, 0.5] {
        let n = 200;
        let (total, base, degree) = measure(&SequenceNumber::new(), n, q, seed);
        rows.push(E5Row {
            protocol: SequenceNumber::new().name(),
            q,
            n,
            total_packets: total,
            fitted_base: base,
            fitted_degree: degree,
            one_plus_q: 1.0 + q,
            exponential: base > 1.2,
        });
    }
    E5Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trichotomy_holds() {
        let report = e5_probabilistic_growth(17);
        for row in &report.rows {
            if row.protocol.starts_with("outnumber") {
                assert!(row.exponential, "outnumber at q={} not exponential", row.q);
                // T5.1: growth at least (1+q−εₙ); our witness in fact
                // doubles, comfortably above.
                assert!(
                    row.fitted_base > 1.0 + row.q - 0.3,
                    "base {} below (1+q−ε) at q={}",
                    row.fitted_base,
                    row.q
                );
            } else if row.protocol.starts_with("afek") {
                // Oracle-assisted: exponential with the reduced base
                // ≈ 1 + q/(k(1−q)) = 1.143 at q = 0.3, k = 3 — well below
                // the outnumber witness, well above linear.
                let predicted = 1.0 + row.q / (3.0 * (1.0 - row.q));
                assert!(
                    (row.fitted_base - predicted).abs() < 0.08,
                    "afek base {} vs predicted {}",
                    row.fitted_base,
                    predicted
                );
            } else {
                assert!(!row.exponential, "seqnum at q={} looks exponential", row.q);
                assert!(
                    row.fitted_degree < 1.5,
                    "seqnum degree {}",
                    row.fitted_degree
                );
            }
        }
    }
}
