//! E1 — Theorem 2.1: boundness is bounded by the product of the automata
//! state counts.

use super::table::markdown;
use nonfifo_adversary::boundness::{probe, BoundnessProbeConfig};
use nonfifo_protocols::{AlternatingBit, DataLink, NaiveCycle, SequenceNumber};
use std::fmt;

/// One protocol's boundness probe results.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Protocol name.
    pub protocol: String,
    /// Distinct transmitter control states observed.
    pub tx_states: u64,
    /// Distinct receiver control states observed.
    pub rx_states: u64,
    /// Distinct product states observed.
    pub product_states: u64,
    /// Empirical boundness (largest sampled extension, in forward sends).
    pub max_extension: u64,
    /// Theorem 2.1 consistency: `max_extension ≤ tx_states · rx_states`.
    pub consistent: bool,
}

/// The E1 report.
#[derive(Debug, Clone)]
pub struct E1Report {
    /// One row per probed protocol.
    pub rows: Vec<E1Row>,
}

impl E1Report {
    /// True if every finite-state protocol satisfied the theorem's
    /// inequality on the observed quantities.
    pub fn all_consistent(&self) -> bool {
        self.rows.iter().all(|r| r.consistent)
    }
}

impl fmt::Display for E1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.tx_states.to_string(),
                    r.rx_states.to_string(),
                    r.product_states.to_string(),
                    r.max_extension.to_string(),
                    if r.consistent {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &[
                    "protocol",
                    "tx states",
                    "rx states",
                    "product states",
                    "empirical boundness",
                    "≤ kₜ·kᵣ"
                ],
                &rows
            )
        )
    }
}

/// Runs E1 with the given seed.
pub fn e1_boundness(seed: u64) -> E1Report {
    let protocols: Vec<Box<dyn DataLink>> = vec![
        Box::new(AlternatingBit::new()),
        Box::new(NaiveCycle::new(3)),
        Box::new(NaiveCycle::new(5)),
        Box::new(SequenceNumber::new()),
    ];
    let cfg = BoundnessProbeConfig {
        seed,
        ..BoundnessProbeConfig::default()
    };
    let rows = protocols
        .iter()
        .map(|p| {
            let est = probe(p.as_ref(), &cfg);
            E1Row {
                protocol: p.name(),
                tx_states: est.tx_states,
                rx_states: est.rx_states,
                product_states: est.product_states,
                max_extension: est.max_extension(),
                consistent: est.consistent_with_theorem_2_1(),
            }
        })
        .collect();
    E1Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_consistent_and_renders() {
        let report = e1_boundness(42);
        assert_eq!(report.rows.len(), 4);
        assert!(report.all_consistent());
        let text = report.to_string();
        assert!(text.contains("alternating-bit"));
        assert!(text.contains("sequence-number"));
    }
}
