//! E8 — the motivating contrast: the alternating-bit protocol is correct
//! over its classic lossy-FIFO domain and falls to the first replay on a
//! non-FIFO channel.

use crate::{SimConfig, Simulation};
use nonfifo_adversary::{FalsifyOutcome, GreedyReplayAdversary, MfFalsifier};
use nonfifo_channel::Discipline;
use nonfifo_protocols::AlternatingBit;
use std::fmt;

/// The E8 report.
#[derive(Debug, Clone)]
pub struct E8Report {
    /// Messages delivered over the lossy-FIFO channel (domain of \[BSW69\]).
    pub fifo_messages: u64,
    /// Packets spent there.
    pub fifo_packets: u64,
    /// Whether the lossy-FIFO run stayed violation-free.
    pub fifo_clean: bool,
    /// Messages the greedy replay adversary needed before the phantom
    /// delivery.
    pub greedy_messages_to_violation: Option<u64>,
    /// Messages the Theorem 3.1 falsifier needed.
    pub mf_messages_to_violation: Option<u64>,
}

impl fmt::Display for E8Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lossy FIFO (loss 0.3): {} messages delivered with {} packets, clean = {}",
            self.fifo_messages, self.fifo_packets, self.fifo_clean
        )?;
        writeln!(
            f,
            "non-FIFO greedy replay: phantom delivery after {:?} messages",
            self.greedy_messages_to_violation
        )?;
        writeln!(
            f,
            "non-FIFO T3.1 falsifier: phantom delivery after {:?} messages",
            self.mf_messages_to_violation
        )
    }
}

/// Runs E8.
pub fn e8_classic_break(seed: u64) -> E8Report {
    // Classic domain: lossy FIFO.
    let mut sim = Simulation::builder(AlternatingBit::new())
        .channel(Discipline::LossyFifo { loss: 0.3 })
        .seed(seed)
        .build();
    let stats = sim
        .deliver(200, &SimConfig::default())
        .expect("alternating bit is correct over lossy FIFO");

    // Non-FIFO: both adversaries.
    let greedy = GreedyReplayAdversary::default().run(&AlternatingBit::new());
    let mf = MfFalsifier::default().run(&AlternatingBit::new());
    let to_violation = |o: &FalsifyOutcome| match o {
        FalsifyOutcome::Violation(rep) => Some(rep.messages_before_violation),
        _ => None,
    };

    E8Report {
        fifo_messages: stats.messages_delivered,
        fifo_packets: stats.packets_sent_forward,
        fifo_clean: stats.violation.is_none(),
        greedy_messages_to_violation: to_violation(&greedy),
        mf_messages_to_violation: to_violation(&mf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrast_holds() {
        let report = e8_classic_break(4);
        assert_eq!(report.fifo_messages, 200);
        assert!(report.fifo_clean);
        assert!(report.greedy_messages_to_violation.is_some());
        let mf = report.mf_messages_to_violation.expect("mf violation");
        // The T3.1 construction needs barely more messages than headers.
        assert!(mf <= 4, "took {mf} messages");
    }
}
