//! Minimal markdown table rendering for experiment reports.

use std::fmt::Write as _;

/// Renders a markdown table from a header row and data rows.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
///
/// # Example
///
/// ```
/// use nonfifo_core::experiments::table::markdown;
/// let t = markdown(&["a", "b"], &[vec!["1".into(), "2".into()]]);
/// assert!(t.contains("| a | b |"));
/// assert!(t.contains("| 1 | 2 |"));
/// ```
pub fn markdown(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Formats a float with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_shape() {
        let t = markdown(&["x"], &[vec!["1".into()], vec!["2".into()]]);
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = markdown(&["a", "b"], &[vec!["1".into()]]);
    }
}
