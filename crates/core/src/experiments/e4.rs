//! E4 — Theorem 4.1: per-message cost is at least `in-transit / k`, and
//! the [Afe88] reconstruction meets it within a constant factor (tight),
//! with the measured slope tracking `1/k` across the header count.

use super::table::{f3, markdown};
use nonfifo_adversary::{FalsifyOutcome, PfConfig, PfFalsifier};
use nonfifo_analysis::fit_linear;
use nonfifo_protocols::AfekFlush;
use std::fmt;

/// A sampled point on the cost curve.
#[derive(Debug, Clone, Copy)]
pub struct E4Row {
    /// Header count `k` of the protocol instance.
    pub k: u64,
    /// Packets in transit `l` when the message was handed over.
    pub in_transit: u64,
    /// Boundness-extension sends at that point (what T4.1 bounds below).
    pub extension_sends: u64,
    /// The theorem's lower bound `⌊l/k⌋`.
    pub lower_bound: u64,
}

/// Per-`k` summary of the cost curve.
#[derive(Debug, Clone, Copy)]
pub struct E4Slope {
    /// Header count `k`.
    pub k: u64,
    /// Least-squares slope of extension sends against `l`.
    pub slope: f64,
    /// The theorem's reference slope `1/k`.
    pub one_over_k: f64,
    /// True if `extension_sends ≥ ⌊l/k⌋` held for every message.
    pub bound_respected: bool,
}

/// The E4 report.
#[derive(Debug, Clone)]
pub struct E4Report {
    /// Sampled rows (every 20th message, per k).
    pub rows: Vec<E4Row>,
    /// One slope summary per header count.
    pub slopes: Vec<E4Slope>,
    /// Messages run per instance.
    pub messages: u64,
}

impl fmt::Display for E4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    r.in_transit.to_string(),
                    r.extension_sends.to_string(),
                    r.lower_bound.to_string(),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            markdown(&["k", "in transit l", "ext sends", "⌊l/k⌋ bound"], &rows)
        )?;
        let slopes: Vec<Vec<String>> = self
            .slopes
            .iter()
            .map(|s| {
                vec![
                    s.k.to_string(),
                    f3(s.slope),
                    f3(s.one_over_k),
                    if s.bound_respected {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ]
            })
            .collect();
        writeln!(
            f,
            "\n{}",
            markdown(
                &["k", "measured slope", "1/k", "bound held everywhere"],
                &slopes
            )
        )
    }
}

/// Runs E4 across header counts `k ∈ {3, 4, 8}`.
pub fn e4_pf_cost(messages: u64) -> E4Report {
    let falsifier = PfFalsifier::new(PfConfig {
        messages,
        ..PfConfig::default()
    });
    let mut rows = Vec::new();
    let mut slopes = Vec::new();
    for k in [3u64, 4, 8] {
        let proto = AfekFlush::with_labels(k as u32);
        let (outcome, costs) = falsifier.run(&proto);
        assert!(
            matches!(outcome, FalsifyOutcome::Survived(_)),
            "afek({k}) must survive T4.1 probing: {outcome:?}"
        );
        let bound_respected = costs
            .iter()
            .all(|c| c.extension_sends >= c.in_transit_before / k);
        let xs: Vec<f64> = costs.iter().map(|c| c.in_transit_before as f64).collect();
        let ys: Vec<f64> = costs.iter().map(|c| c.extension_sends as f64).collect();
        let slope = fit_linear(&xs, &ys).slope;
        slopes.push(E4Slope {
            k,
            slope,
            one_over_k: 1.0 / k as f64,
            bound_respected,
        });
        rows.extend(costs.iter().step_by(20).map(|c| E4Row {
            k,
            in_transit: c.in_transit_before,
            extension_sends: c.extension_sends,
            lower_bound: c.in_transit_before / k,
        }));
    }
    E4Report {
        rows,
        slopes,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_tracks_one_over_k_across_header_counts() {
        let report = e4_pf_cost(90);
        assert_eq!(report.slopes.len(), 3);
        for s in &report.slopes {
            assert!(s.bound_respected, "k={}", s.k);
            assert!(
                (s.slope - s.one_over_k).abs() < 0.08,
                "k={}: slope {} vs 1/k {}",
                s.k,
                s.slope,
                s.one_over_k
            );
        }
        // Slopes are ordered like 1/k: more headers, cheaper messages.
        assert!(report.slopes[0].slope > report.slopes[1].slope);
        assert!(report.slopes[1].slope > report.slopes[2].slope);
        assert!(report.to_string().contains("measured slope"));
    }
}
