//! One runner per experiment in `DESIGN.md` §4.
//!
//! The paper has no tables or figures — its "evaluation" is three theorems
//! and two lemmas. Each runner below regenerates the quantitative shape one
//! of those results asserts, against the real protocol implementations of
//! [`nonfifo_protocols`], and renders a markdown table for
//! `EXPERIMENTS.md`:
//!
//! | Runner | Paper claim |
//! |--------|-------------|
//! | [`e1_boundness`] | Theorem 2.1: boundness ≤ `kₜ·kᵣ` |
//! | [`e2_mf_falsifier`] | Theorem 3.1: the inductive adversary breaks naive bounded-header protocols and forces pool growth on the rest |
//! | [`e3_naive_protocol`] | Theorem 3.1 contrapositive: `n` headers buy `O(log n)` space and immunity |
//! | [`e4_pf_cost`] | Theorem 4.1: per-message cost ≥ `l/k`; the \[Afe88\] reconstruction is linear (tight) |
//! | [`e5_probabilistic_growth`] | Theorem 5.1: bounded headers ⇒ `(1+q−εₙ)^Ω(n)` packets; unbounded headers ⇒ linear |
//! | [`e6_seeding_lemma`] | Lemma 5.2: the probable dominant packet accumulates `≥ nq/4k²` delayed copies w.h.p. |
//! | [`e7_hoeffding`] | Theorem 5.4 \[Hoe63\]: the tail bound dominates exact and sampled binomial tails |
//! | [`e8_classic_break`] | Motivation: the alternating bit is correct over lossy FIFO, falls on non-FIFO |
//! | [`e9_window_ablation`] | Practice ablation: sliding window vs. bounded reorder distance |
//! | [`e10_transport`] | §1 remark: the results extend to transport protocols over non-FIFO virtual links |
//! | [`e11_exhaustive`] | Small-scope exhaustive verification: shortest counterexamples / in-scope safety certificates |
//! | [`e13_parallel_certification`] | Certified-scope growth: the parallel explorer covers growing scopes, byte-identical to the sequential oracle, with the partial-order reduction's quotient coverage alongside |
//!
//! E14 and E15 are campaign-shaped and live in `nonfifo-campaign`'s
//! `experiments` module.
//!
//! All runners are deterministic given their seeds.

mod e1;
mod e10;
mod e11;
mod e13;
mod e2;
mod e3;
mod e4;
mod e5;
mod e6;
mod e7;
mod e8;
mod e9;
pub mod table;

pub use e1::{e1_boundness, E1Report, E1Row};
pub use e10::{e10_transport, E10Report, E10Row};
pub use e11::{e11_exhaustive, E11Report, E11Row};
pub use e13::{e13_parallel_certification, E13Report, E13Row};
pub use e2::{e2_mf_falsifier, E2Report, E2Row};
pub use e3::{e3_naive_protocol, E3Report, E3Row};
pub use e4::{e4_pf_cost, E4Report, E4Row};
pub use e5::{e5_probabilistic_growth, E5Report, E5Row};
pub use e6::{e6_seeding_lemma, E6Report, E6Row};
pub use e7::{e7_hoeffding, E7Report, E7Row};
pub use e8::{e8_classic_break, E8Report};
pub use e9::{e9_window_ablation, E9Report, E9Row};
