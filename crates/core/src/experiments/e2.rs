//! E2 — Theorem 3.1: the inductive falsifier versus bounded-header
//! protocols.

use super::table::markdown;
use nonfifo_adversary::{FalsifyOutcome, MfConfig, MfFalsifier};
use nonfifo_protocols::{
    AfekFlush, AlternatingBit, DataLink, GoBackN, HeaderBound, NaiveCycle, Outnumber,
    SelectiveReject, SlidingWindow,
};
use std::fmt;

/// One protocol's fate under the Theorem 3.1 adversary.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Protocol name.
    pub protocol: String,
    /// Forward header budget.
    pub headers: String,
    /// Outcome summary.
    pub outcome: String,
    /// Messages delivered before the outcome.
    pub messages: u64,
    /// Forward packets sent in total.
    pub packets: u64,
    /// Final delayed-pool size (copies in transition).
    pub pool: u64,
    /// True if the adversary produced an invalid execution.
    pub violated: bool,
}

/// The E2 report.
#[derive(Debug, Clone)]
pub struct E2Report {
    /// One row per attacked protocol.
    pub rows: Vec<E2Row>,
    /// Pool-size trajectory for the surviving 3-header reconstruction
    /// (shows the forced growth of copies in transition).
    pub afek_pool_growth: Vec<(u64, u64)>,
}

impl fmt::Display for E2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.headers.clone(),
                    r.outcome.clone(),
                    r.messages.to_string(),
                    r.packets.to_string(),
                    r.pool.to_string(),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            markdown(
                &[
                    "protocol",
                    "fwd headers",
                    "outcome",
                    "messages",
                    "fwd packets",
                    "final pool"
                ],
                &rows
            )
        )?;
        writeln!(f, "\nafek-flush pool growth (message, pool size):")?;
        let growth: Vec<String> = self
            .afek_pool_growth
            .iter()
            .map(|(m, p)| format!("({m},{p})"))
            .collect();
        writeln!(f, "{}", growth.join(" "))
    }
}

/// Runs E2.
pub fn e2_mf_falsifier() -> E2Report {
    let protocols: Vec<Box<dyn DataLink>> = vec![
        Box::new(AlternatingBit::new()),
        Box::new(NaiveCycle::new(3)),
        Box::new(NaiveCycle::new(5)),
        Box::new(SlidingWindow::new(2)),
        Box::new(GoBackN::new(2)),
        Box::new(SelectiveReject::new(2)),
        Box::new(AfekFlush::new()),
        Box::new(Outnumber::new(3)),
    ];
    let mut rows = Vec::new();
    let mut afek_pool_growth = Vec::new();
    for p in &protocols {
        // Outnumber's per-message cost doubles; cap its run so the table
        // regenerates quickly.
        let max_messages = if p.name().starts_with("outnumber") {
            10
        } else {
            40
        };
        let falsifier = MfFalsifier::new(MfConfig {
            max_messages,
            ..MfConfig::default()
        });
        let (outcome, stages) = falsifier.run_with_trace(p.as_ref());
        let headers = match p.forward_headers() {
            HeaderBound::Fixed(k) => k.to_string(),
            HeaderBound::PerMessage => "n".into(),
        };
        let (outcome_str, messages, packets, pool, violated) = match &outcome {
            FalsifyOutcome::Violation(rep) => (
                format!("INVALID EXECUTION ({})", rep.violation),
                rep.messages_before_violation,
                rep.forward_packets_sent,
                0,
                true,
            ),
            FalsifyOutcome::Survived(rep) => (
                "survived".to_string(),
                rep.messages_delivered,
                rep.forward_packets_sent,
                rep.final_in_transit,
                false,
            ),
            FalsifyOutcome::Stuck { delivered } => ("stuck".to_string(), *delivered, 0, 0, false),
            FalsifyOutcome::BudgetExhausted {
                delivered,
                forward_packets_sent,
            } => (
                "cost blow-up (budget)".to_string(),
                *delivered,
                *forward_packets_sent,
                0,
                false,
            ),
        };
        if p.name().starts_with("afek") {
            afek_pool_growth = stages.iter().map(|s| (s.message, s.pool_size)).collect();
        }
        rows.push(E2Row {
            protocol: p.name(),
            headers,
            outcome: outcome_str,
            messages,
            packets,
            pool,
            violated,
        });
    }
    E2Report {
        rows,
        afek_pool_growth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_protocols_fall_and_reconstructions_pay() {
        let report = e2_mf_falsifier();
        let by_name = |n: &str| {
            report
                .rows
                .iter()
                .find(|r| r.protocol.starts_with(n))
                .unwrap_or_else(|| panic!("missing row {n}"))
        };
        assert!(by_name("alternating-bit").violated);
        assert!(by_name("naive-cycle(k=3)").violated);
        assert!(by_name("naive-cycle(k=5)").violated);
        assert!(by_name("sliding-window").violated);
        assert!(by_name("go-back-n").violated);
        assert!(by_name("selective-reject").violated);
        assert!(!by_name("afek").violated);
        // The surviving reconstruction's pool grows monotonically.
        assert!(report.afek_pool_growth.len() > 10);
        assert!(
            report.afek_pool_growth.last().unwrap().1 > report.afek_pool_growth.first().unwrap().1
        );
        let text = report.to_string();
        assert!(text.contains("INVALID EXECUTION"));
    }
}
