//! E10 — the transport-layer remark: the theorems bite identically over
//! non-FIFO *virtual links*.
//!
//! The paper (§1): "all our results can be extended to transport layer
//! protocols over non-FIFO virtual links." Here the non-FIFO behaviour is
//! not assumed — it *emerges* from multipath routing: a two-route virtual
//! link whose routes are individually FIFO but differ in latency. As the
//! latency spread grows, stale copies survive longer, and bounded-header
//! transport protocols alias exactly as over a raw non-FIFO channel, while
//! the sequence-number protocol stays correct.

use super::table::markdown;
use crate::{SimConfig, SimError, Simulation};
use nonfifo_channel::BoxedChannel;
use nonfifo_ioa::Dir;
use nonfifo_protocols::{AlternatingBit, DataLink, GoBackN, SequenceNumber, SlidingWindow};
use nonfifo_transport::VirtualLinkBuilder;
use std::fmt;

/// One (protocol, latency spread) cell.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Protocol name.
    pub protocol: String,
    /// Latency difference between the fast and the slow route.
    pub spread: u64,
    /// Outcome.
    pub outcome: String,
    /// True if all messages arrived intact and in order.
    pub ok: bool,
}

/// The E10 report.
#[derive(Debug, Clone)]
pub struct E10Report {
    /// Grid cells.
    pub rows: Vec<E10Row>,
    /// Messages per cell.
    pub messages: u64,
}

impl E10Report {
    /// The outcome for a specific cell.
    pub fn cell(&self, protocol: &str, spread: u64) -> Option<&E10Row> {
        self.rows
            .iter()
            .find(|r| r.protocol.starts_with(protocol) && r.spread == spread)
    }
}

impl fmt::Display for E10Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![r.protocol.clone(), r.spread.to_string(), r.outcome.clone()])
            .collect();
        write!(
            f,
            "{}",
            markdown(
                &["transport protocol", "route latency spread", "outcome"],
                &rows
            )
        )
    }
}

fn virtual_pair(spread: u64) -> (BoxedChannel, BoxedChannel) {
    let fwd = VirtualLinkBuilder::new(Dir::Forward)
        .route(0)
        .route(spread)
        .build();
    let bwd = VirtualLinkBuilder::new(Dir::Backward)
        .route(0)
        .route(spread)
        .build();
    (Box::new(fwd), Box::new(bwd))
}

fn run_cell(proto: impl DataLink, spread: u64, messages: u64) -> (String, bool) {
    let (fwd, bwd) = virtual_pair(spread);
    let mut sim = Simulation::with_channels(proto, fwd, bwd);
    let cfg = SimConfig {
        payloads: true,
        max_steps_per_message: 50_000,
        ..SimConfig::default()
    };
    match sim.deliver(messages, &cfg) {
        Ok(stats) => {
            let expect: Vec<u64> = (0..messages).collect();
            if stats.delivered_payloads == expect {
                ("ok".into(), true)
            } else {
                ("corrupt (order/content)".into(), false)
            }
        }
        Err(SimError::Violation(v)) => (format!("violation: {v}"), false),
        Err(SimError::Stalled { message, .. }) => (format!("stalled at message {message}"), false),
    }
}

/// Runs E10 on a protocol × spread grid.
pub fn e10_transport(messages: u64) -> E10Report {
    let spreads = [0u64, 2, 8, 32];
    let mut rows = Vec::new();
    for &spread in &spreads {
        let cells: Vec<(String, (String, bool))> = vec![
            (
                SequenceNumber::new().name(),
                run_cell(SequenceNumber::new(), spread, messages),
            ),
            (
                SlidingWindow::new(4).name(),
                run_cell(SlidingWindow::new(4), spread, messages),
            ),
            (
                GoBackN::new(4).name(),
                run_cell(GoBackN::new(4), spread, messages),
            ),
            (
                AlternatingBit::new().name(),
                run_cell(AlternatingBit::new(), spread, messages),
            ),
        ];
        for (protocol, (outcome, ok)) in cells {
            rows.push(E10Row {
                protocol,
                spread,
                outcome,
                ok,
            });
        }
    }
    E10Report { rows, messages }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_survive_any_spread() {
        let report = e10_transport(100);
        for &spread in &[0u64, 2, 8, 32] {
            let cell = report.cell("sequence-number", spread).unwrap();
            assert!(cell.ok, "seqnum at spread {spread}: {}", cell.outcome);
        }
    }

    #[test]
    fn equal_latency_multipath_is_safe_for_everyone() {
        let report = e10_transport(100);
        for row in report.rows.iter().filter(|r| r.spread == 0) {
            assert!(row.ok, "{} at spread 0: {}", row.protocol, row.outcome);
        }
    }

    #[test]
    fn bounded_header_transport_degrades_with_spread() {
        let report = e10_transport(100);
        // Somewhere on the grid a bounded-header protocol must fail — the
        // theorems reach the transport layer.
        let failures = report
            .rows
            .iter()
            .filter(|r| !r.ok && !r.protocol.starts_with("sequence-number"))
            .count();
        assert!(
            failures > 0,
            "no bounded-header transport failure:\n{report}"
        );
    }
}
