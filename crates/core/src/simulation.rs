//! The user-facing simulation engine.

use nonfifo_channel::{
    BoundedReorderChannel, BoxedChannel, FifoChannel, LossyFifoChannel, ProbabilisticChannel,
};
use nonfifo_ioa::{CopyId, Dir, Event, Header, Message, Payload, SpecMonitor, SpecViolation};
use nonfifo_protocols::{BoxedReceiver, BoxedTransmitter, DataLink, GhostInfo};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Knobs for a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Scheduler steps allowed per message before the run is declared
    /// stalled.
    pub max_steps_per_message: u64,
    /// Stamp each message with its index as payload (lets the checker and
    /// caller verify content and order end to end). Protocols implementing
    /// only the identical-message service ignore payloads.
    pub payloads: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps_per_message: 1_000_000,
            payloads: false,
        }
    }
}

/// Why a simulation run stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A message failed to deliver within the step budget.
    Stalled {
        /// Index of the stalled message.
        message: u64,
        /// Steps spent on it.
        steps: u64,
    },
    /// The online monitor flagged a specification violation.
    Violation(SpecViolation),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled { message, steps } => {
                write!(f, "message {message} undelivered after {steps} steps")
            }
            SimError::Violation(v) => write!(f, "specification violated: {v}"),
        }
    }
}

impl Error for SimError {}

/// Cost and safety statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Packets sent on the forward channel.
    pub packets_sent_forward: u64,
    /// Packets sent on the backward channel.
    pub packets_sent_backward: u64,
    /// Distinct forward packet values — the execution's header count.
    pub distinct_forward_packets: u64,
    /// Total scheduler steps.
    pub steps: u64,
    /// Peak transmitter + receiver space, in bytes.
    pub peak_space_bytes: usize,
    /// Copies still delayed on the forward channel at the end.
    pub final_in_transit: u64,
    /// First violation observed, if any (also surfaced as a [`SimError`]).
    pub violation: Option<SpecViolation>,
    /// Payloads of delivered messages, in delivery order (only recorded
    /// when [`SimConfig::payloads`] is set).
    pub delivered_payloads: Vec<u64>,
}

/// A protocol composed with a forward and a backward channel.
///
/// Unlike [`nonfifo_adversary::System`], which exposes full adversary
/// control, `Simulation` drives *autonomous* channels (probabilistic,
/// lossy, reordering): the channel decides what happens; the engine only
/// pumps, records and checks.
#[derive(Debug)]
pub struct Simulation {
    tx: BoxedTransmitter,
    rx: BoxedReceiver,
    fwd: BoxedChannel,
    bwd: BoxedChannel,
    monitor: SpecMonitor,
    sent_values: BTreeSet<nonfifo_ioa::Packet>,
    next_msg: u64,
    steps: u64,
    peak_space: usize,
    delivered_payloads: Vec<u64>,
    round_watermark: CopyId,
    pending_deliveries: u64,
    uses_ghosts: bool,
}

impl Simulation {
    /// Composes `proto` with an explicit channel pair.
    ///
    /// # Panics
    ///
    /// Panics if the channels' directions are not forward/backward
    /// respectively.
    pub fn with_channels(proto: impl DataLink, fwd: BoxedChannel, bwd: BoxedChannel) -> Self {
        assert_eq!(fwd.dir(), Dir::Forward, "fwd channel must be t→r");
        assert_eq!(bwd.dir(), Dir::Backward, "bwd channel must be r→t");
        let uses_ghosts = proto.uses_ghosts();
        let (tx, rx) = proto.make();
        Simulation {
            tx,
            rx,
            fwd,
            bwd,
            monitor: SpecMonitor::new(),
            sent_values: BTreeSet::new(),
            next_msg: 0,
            steps: 0,
            peak_space: 0,
            delivered_payloads: Vec::new(),
            round_watermark: CopyId::from_raw(0),
            pending_deliveries: 0,
            uses_ghosts,
        }
    }

    /// Probabilistic physical layer with delay probability `q` in both
    /// directions (§5's PL2p model).
    pub fn probabilistic(proto: impl DataLink, q: f64, seed: u64) -> Self {
        Simulation::with_channels(
            proto,
            Box::new(ProbabilisticChannel::new(Dir::Forward, q, seed)),
            Box::new(ProbabilisticChannel::new(Dir::Backward, q, seed.wrapping_add(1))),
        )
    }

    /// Reliable FIFO channels (the control substrate).
    pub fn fifo(proto: impl DataLink) -> Self {
        Simulation::with_channels(
            proto,
            Box::new(FifoChannel::new(Dir::Forward)),
            Box::new(FifoChannel::new(Dir::Backward)),
        )
    }

    /// Lossy FIFO channels (the alternating-bit protocol's home turf).
    pub fn lossy_fifo(proto: impl DataLink, loss: f64, seed: u64) -> Self {
        Simulation::with_channels(
            proto,
            Box::new(LossyFifoChannel::new(Dir::Forward, loss, seed)),
            Box::new(LossyFifoChannel::new(Dir::Backward, loss, seed.wrapping_add(1))),
        )
    }

    /// Bounded-reorder channels with overtaking distance `< bound`
    /// (experiment E9's substrate).
    pub fn bounded_reorder(proto: impl DataLink, bound: u64, seed: u64) -> Self {
        Simulation::with_channels(
            proto,
            Box::new(BoundedReorderChannel::new(Dir::Forward, bound, seed)),
            Box::new(BoundedReorderChannel::new(Dir::Backward, bound, seed.wrapping_add(1))),
        )
    }

    /// Delivers `n` messages, returning the run statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] if a message exceeds the per-message step
    /// budget; [`SimError::Violation`] if the online monitor flags a
    /// specification violation (the statistics up to that point are lost —
    /// use lower-level crates to post-mortem violations).
    pub fn deliver(&mut self, n: u64, cfg: &SimConfig) -> Result<RunStats, SimError> {
        let base = self.pending_deliveries;
        let mut delivered = 0u64;
        for _ in 0..n {
            // Wait until the transmitter accepts the next message.
            let mut waited = 0;
            while !self.tx.ready() {
                if waited >= cfg.max_steps_per_message {
                    return Err(SimError::Stalled {
                        message: self.next_msg,
                        steps: waited,
                    });
                }
                self.pump();
                self.check()?;
                waited += 1;
            }

            let m = if cfg.payloads {
                Message::with_payload(self.next_msg, Payload::new(self.next_msg))
            } else {
                Message::identical(self.next_msg)
            };
            self.round_watermark = CopyId::from_raw(self.fwd.total_sent());
            let _ = self.monitor.observe(&Event::SendMsg(m));
            self.next_msg += 1;
            self.tx.on_send_msg(m);

            let target = base + delivered + 1;
            let mut steps = 0;
            while self.pending_deliveries < target {
                if steps >= cfg.max_steps_per_message {
                    return Err(SimError::Stalled {
                        message: self.next_msg - 1,
                        steps,
                    });
                }
                self.pump();
                self.check()?;
                steps += 1;
            }
            delivered += 1;
        }

        Ok(RunStats {
            messages_delivered: delivered,
            packets_sent_forward: self.fwd.total_sent(),
            packets_sent_backward: self.bwd.total_sent(),
            distinct_forward_packets: self.sent_values.len() as u64,
            steps: self.steps,
            peak_space_bytes: self.peak_space,
            final_in_transit: self.fwd.in_transit_len() as u64,
            violation: self.monitor.first_violation(),
            delivered_payloads: self.delivered_payloads.clone(),
        })
    }

    fn check(&self) -> Result<(), SimError> {
        match self.monitor.first_violation() {
            Some(v) => Err(SimError::Violation(v)),
            None => Ok(()),
        }
    }

    fn ghost(&self) -> GhostInfo {
        let mut stale: BTreeMap<Header, u64> = BTreeMap::new();
        // Conservative sweep over a small header space: ghost info is only
        // consumed by bounded-header reconstructions, whose alphabets are
        // tiny. Headers beyond 64 are not swept (no consumer needs them).
        for h in 0..64u32 {
            let header = Header::new(h);
            let n = self.fwd.header_copies_older_than(header, self.round_watermark);
            if n > 0 {
                stale.insert(header, n as u64);
            }
        }
        GhostInfo {
            fwd_in_transit: self.fwd.in_transit_len() as u64,
            bwd_in_transit: self.bwd.in_transit_len() as u64,
            stale_fwd_by_header: stale,
        }
    }

    /// One scheduler step: ghosts, ticks, transmitter pump, channel
    /// deliveries, receiver pump.
    fn pump(&mut self) {
        self.steps += 1;
        if self.uses_ghosts {
            let ghost = self.ghost();
            self.tx.on_ghost(&ghost);
            self.rx.on_ghost(&ghost);
        }
        self.tx.on_tick();
        self.rx.on_tick();

        while let Some(pkt) = self.tx.poll_send() {
            self.sent_values.insert(pkt);
            let copy = self.fwd.send(pkt);
            let _ = self.monitor.observe(&Event::SendPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
        }
        for (pkt, copy) in self.fwd.drain_drops() {
            let _ = self.monitor.observe(&Event::DropPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
        }
        while let Some((pkt, copy)) = self.fwd.poll_deliver() {
            let _ = self.monitor.observe(&Event::ReceivePkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
            self.rx.on_receive_pkt(pkt);
        }
        while let Some(m) = self.rx.poll_deliver() {
            let _ = self.monitor.observe(&Event::ReceiveMsg(m));
            self.pending_deliveries += 1;
            if let Some(p) = m.payload() {
                self.delivered_payloads.push(p.word());
            }
        }
        while let Some(ack) = self.rx.poll_send() {
            let copy = self.bwd.send(ack);
            let _ = self.monitor.observe(&Event::SendPkt {
                dir: Dir::Backward,
                packet: ack,
                copy,
            });
        }
        for (pkt, copy) in self.bwd.drain_drops() {
            let _ = self.monitor.observe(&Event::DropPkt {
                dir: Dir::Backward,
                packet: pkt,
                copy,
            });
        }
        while let Some((ack, copy)) = self.bwd.poll_deliver() {
            let _ = self.monitor.observe(&Event::ReceivePkt {
                dir: Dir::Backward,
                packet: ack,
                copy,
            });
            self.tx.on_receive_pkt(ack);
        }
        self.fwd.tick();
        self.bwd.tick();
        let s = self.tx.space_bytes() + self.rx.space_bytes();
        self.peak_space = self.peak_space.max(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{AlternatingBit, Outnumber, SequenceNumber, SlidingWindow};

    #[test]
    fn seqnum_over_fifo_costs_one_packet_per_message() {
        let mut sim = Simulation::fifo(SequenceNumber::new());
        let stats = sim.deliver(20, &SimConfig::default()).unwrap();
        assert_eq!(stats.messages_delivered, 20);
        assert_eq!(stats.packets_sent_forward, 20);
        assert_eq!(stats.distinct_forward_packets, 20);
        assert!(stats.violation.is_none());
    }

    #[test]
    fn seqnum_over_probabilistic_is_linear() {
        let mut sim = Simulation::probabilistic(SequenceNumber::new(), 0.3, 99);
        let stats = sim.deliver(100, &SimConfig::default()).unwrap();
        assert_eq!(stats.messages_delivered, 100);
        // About 1/(1−q)² round trips per message; certainly way below
        // exponential.
        assert!(stats.packets_sent_forward < 100 * 30);
    }

    #[test]
    fn alternating_bit_is_fine_over_lossy_fifo() {
        let mut sim = Simulation::lossy_fifo(AlternatingBit::new(), 0.4, 5);
        let stats = sim.deliver(100, &SimConfig::default()).unwrap();
        assert_eq!(stats.messages_delivered, 100);
        assert_eq!(stats.distinct_forward_packets, 2);
        assert!(stats.violation.is_none());
    }

    #[test]
    fn payload_mode_checks_content_ordering() {
        let mut sim = Simulation::fifo(SequenceNumber::new());
        let cfg = SimConfig {
            payloads: true,
            ..SimConfig::default()
        };
        let stats = sim.deliver(10, &cfg).unwrap();
        assert_eq!(stats.delivered_payloads, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn sliding_window_survives_mild_reordering() {
        let mut sim = Simulation::bounded_reorder(SlidingWindow::new(8), 4, 12);
        let cfg = SimConfig {
            payloads: true,
            ..SimConfig::default()
        };
        let stats = sim.deliver(200, &cfg).unwrap();
        assert_eq!(stats.messages_delivered, 200);
        assert_eq!(stats.delivered_payloads, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn outnumber_cost_explodes_but_stays_safe() {
        let mut sim = Simulation::probabilistic(Outnumber::factory(), 0.3, 21);
        let stats = sim.deliver(10, &SimConfig::default()).unwrap();
        assert!(stats.violation.is_none());
        assert!(
            stats.packets_sent_forward > 1 << 8,
            "sent {}",
            stats.packets_sent_forward
        );
    }

    #[test]
    fn stall_is_reported() {
        // q = 1: nothing is ever delivered.
        let mut sim = Simulation::probabilistic(SequenceNumber::new(), 1.0, 0);
        let cfg = SimConfig {
            max_steps_per_message: 50,
            payloads: false,
        };
        let err = sim.deliver(1, &cfg).unwrap_err();
        assert!(matches!(err, SimError::Stalled { message: 0, .. }));
    }
}
