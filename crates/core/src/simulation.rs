//! The user-facing simulation engine.

use crate::builder::SimulationBuilder;
use nonfifo_channel::{BoxedChannel, ScramblePlan};
use nonfifo_ioa::fingerprint::Fnv64;
use nonfifo_ioa::{
    CopyId, Dir, Event, Execution, Header, Message, Packet, Payload, SpecMonitor, SpecViolation,
};
use nonfifo_protocols::{BoxedReceiver, BoxedTransmitter, DataLink, GhostInfo};
use nonfifo_telemetry::{Counter, Gauge, Histogram, Registry, TraceSink};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Telemetry plumbing for a [`Simulation`]: pre-bound metric handles plus an
/// optional trace sink. Recording is observation-only — nothing here feeds
/// back into protocol, channel, or monitor state, so runs are bit-identical
/// with telemetry attached or not (property-tested in `tests/telemetry.rs`).
#[derive(Debug, Clone)]
struct SimTelemetry {
    registry: Arc<Registry>,
    trace: Option<Arc<TraceSink>>,
    msgs_sent: Counter,
    msgs_received: Counter,
    fwd: DirTelemetry,
    bwd: DirTelemetry,
    packets_per_message: Histogram,
    header_usage: Histogram,
    /// `chan.fwd.sends` reading at the most recent `send_msg`, for the
    /// packets-per-message histogram.
    round_sends_base: u64,
}

#[derive(Debug, Clone)]
struct DirTelemetry {
    name: &'static str,
    sends: Counter,
    delivered: Counter,
    drops: Counter,
    injected: Counter,
    in_transit: Gauge,
}

impl DirTelemetry {
    fn new(registry: &Registry, name: &'static str) -> Self {
        DirTelemetry {
            name,
            sends: registry.counter(&format!("chan.{name}.sends")),
            delivered: registry.counter(&format!("chan.{name}.delivered")),
            drops: registry.counter(&format!("chan.{name}.drops")),
            injected: registry.counter(&format!("chan.{name}.injected")),
            in_transit: registry.gauge(&format!("sim.{name}.in_transit")),
        }
    }
}

impl SimTelemetry {
    fn new(registry: Arc<Registry>, trace: Option<Arc<TraceSink>>) -> Self {
        SimTelemetry {
            msgs_sent: registry.counter("sim.messages.sent"),
            msgs_received: registry.counter("sim.messages.received"),
            fwd: DirTelemetry::new(&registry, "fwd"),
            bwd: DirTelemetry::new(&registry, "bwd"),
            packets_per_message: registry.histogram("sim.packets_per_message"),
            header_usage: registry.histogram("sim.header_usage"),
            round_sends_base: 0,
            registry,
            trace,
        }
    }

    fn lane(&self, dir: Dir) -> &DirTelemetry {
        match dir {
            Dir::Forward => &self.fwd,
            Dir::Backward => &self.bwd,
        }
    }

    /// Bumps a per-header counter, e.g. `chan.fwd.send.h3`.
    fn per_header(&self, dir: Dir, verb: &str, h: Header) {
        let name = self.lane(dir).name;
        self.registry
            .counter(&format!("chan.{name}.{verb}.h{}", h.index()))
            .inc();
    }

    /// Observes one recorded event. Purely additive: counters only.
    fn observe(&mut self, event: &Event) {
        match event {
            Event::SendMsg(_) => {
                self.msgs_sent.inc();
                self.round_sends_base = self.fwd.sends.get();
            }
            Event::ReceiveMsg(_) => {
                self.msgs_received.inc();
                self.packets_per_message
                    .record(self.fwd.sends.get() - self.round_sends_base);
                self.round_sends_base = self.fwd.sends.get();
                if let Some(trace) = &self.trace {
                    trace.instant("sim", "deliver_msg", Vec::new());
                }
            }
            Event::SendPkt { dir, packet, .. } => {
                self.lane(*dir).sends.inc();
                self.per_header(*dir, "send", packet.header());
                if *dir == Dir::Forward {
                    self.header_usage.record(u64::from(packet.header().index()));
                }
            }
            Event::ReceivePkt { dir, packet, .. } => {
                self.lane(*dir).delivered.inc();
                self.per_header(*dir, "recv", packet.header());
            }
            Event::DropPkt { dir, packet, .. } => {
                self.lane(*dir).drops.inc();
                self.per_header(*dir, "drop", packet.header());
                if let Some(trace) = &self.trace {
                    trace.instant("sim", "drop_pkt", Vec::new());
                }
            }
        }
    }

    /// Counts chaos-injected copies (already observed as sends above).
    fn observe_injected(&self, dir: Dir, packet: &Packet) {
        self.lane(dir).injected.inc();
        self.per_header(dir, "injected", packet.header());
    }
}

/// The station a [`CrashEvent`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Station {
    /// The transmitting station `Aᵗ`.
    Tx,
    /// The receiving station `Aʳ`.
    Rx,
}

impl fmt::Display for Station {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Station::Tx => write!(f, "tx"),
            Station::Rx => write!(f, "rx"),
        }
    }
}

/// What state a crashed station reboots into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashMode {
    /// Total loss of volatile state: the station reboots into its initial
    /// state (constructor configuration survives as ROM). Amnesia can
    /// genuinely lose an in-flight message — pair it with
    /// [`SimConfig::retry_lost_messages`] for runs that must complete.
    Amnesia,
    /// Stable storage: the station reboots into its last checkpoint. The
    /// harness checkpoints both stations at every `send_msg` and message
    /// delivery boundary (only while crashes are pending), so a restore is
    /// always consistent with the monitor's message counts.
    Restore,
}

impl fmt::Display for CrashMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashMode::Amnesia => write!(f, "amnesia"),
            CrashMode::Restore => write!(f, "restore"),
        }
    }
}

/// A scheduled station crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Scheduler step at which the crash fires (compared against the
    /// simulation's global step counter, so plans compose across repeated
    /// [`Simulation::deliver`] calls).
    pub at_step: u64,
    /// Which station goes down.
    pub station: Station,
    /// What the station reboots into.
    pub mode: CrashMode,
}

/// Knobs for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduler steps allowed per message before the run is declared
    /// stalled.
    pub max_steps_per_message: u64,
    /// Stamp each message with its index as payload (lets the checker and
    /// caller verify content and order end to end). Protocols implementing
    /// only the identical-message service ignore payloads.
    pub payloads: bool,
    /// Station crashes to apply, keyed by global scheduler step. Events
    /// whose step has already passed when [`Simulation::deliver`] is called
    /// are ignored.
    pub crash_plan: Vec<CrashEvent>,
    /// Scheduler steps a crashed station stays offline before rebooting.
    /// While down the station takes no ticks, receives no packets (copies
    /// stay in transit), and emits nothing.
    pub restart_backoff: u64,
    /// Re-submit a message whose in-flight copy died with the transmitter's
    /// volatile state (a transmitter amnesia crash). Each retry is a fresh
    /// monitored `SendMsg`, so prefix-DL1 accounting stays honest.
    pub retry_lost_messages: bool,
    /// Minimum scheduler steps between retry submissions.
    pub retry_backoff: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps_per_message: 1_000_000,
            payloads: false,
            crash_plan: Vec::new(),
            restart_backoff: 0,
            retry_lost_messages: false,
            retry_backoff: 32,
        }
    }
}

/// Structured post-mortem attached to [`SimError::Stalled`].
///
/// Captures everything needed to understand — and replay — a stall: the
/// in-transit census of both channels, the last point of progress, the
/// monitor's message accounting, the faults the chaos layer was injecting,
/// and a ready-to-run attack schedule reproducing the stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnostic {
    /// Index of the stalled message.
    pub message: u64,
    /// Global scheduler step at which the run gave up.
    pub at_step: u64,
    /// Step and description of the last delivery progress, if any.
    pub last_progress: Option<(u64, String)>,
    /// Distinct packet values still in transit on the forward channel,
    /// with copy counts.
    pub fwd_census: Vec<(Packet, usize)>,
    /// Distinct packet values still in transit on the backward channel,
    /// with copy counts.
    pub bwd_census: Vec<(Packet, usize)>,
    /// Monitor `sm`: messages accepted from the higher layer.
    pub messages_sent: u64,
    /// Monitor `rm`: messages delivered to the higher layer.
    pub messages_delivered: u64,
    /// Events the online monitor has observed.
    pub events_seen: u64,
    /// Faults active at the moment of the stall, prefixed by direction.
    pub active_faults: Vec<String>,
    /// Total faults injected across both channels so far.
    pub faults_injected: u64,
    /// Station crashes applied so far.
    pub crashes_applied: u64,
    /// Whether the transmitter would accept another message.
    pub tx_ready: bool,
    /// An attack-DSL schedule reproducing the stall; feed it to
    /// `nonfifo schedule` (its final `quiesce` fails to converge, which is
    /// the stall, reproduced deterministically).
    pub repro_schedule: String,
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stall diagnostic: message {} undelivered at step {}",
            self.message, self.at_step
        )?;
        match &self.last_progress {
            Some((step, what)) => writeln!(f, "  last progress : step {step}: {what}")?,
            None => writeln!(f, "  last progress : none (no delivery ever happened)")?,
        }
        writeln!(
            f,
            "  monitor       : sm={} rm={} events={}",
            self.messages_sent, self.messages_delivered, self.events_seen
        )?;
        writeln!(
            f,
            "  faults        : {} injected, {} crash(es) applied, tx_ready={}",
            self.faults_injected, self.crashes_applied, self.tx_ready
        )?;
        for fault in &self.active_faults {
            writeln!(f, "  active fault  : {fault}")?;
        }
        writeln!(
            f,
            "  fwd in transit: {} distinct value(s)",
            self.fwd_census.len()
        )?;
        for (pkt, n) in &self.fwd_census {
            writeln!(f, "    {pkt} ×{n}")?;
        }
        writeln!(
            f,
            "  bwd in transit: {} distinct value(s)",
            self.bwd_census.len()
        )?;
        for (pkt, n) in &self.bwd_census {
            writeln!(f, "    {pkt} ×{n}")?;
        }
        write!(f, "  repro schedule:\n{}", indent(&self.repro_schedule))
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}\n"))
        .collect::<String>()
}

/// Why a simulation run stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A message failed to deliver within the step budget.
    Stalled {
        /// Index of the stalled message.
        message: u64,
        /// Steps spent on it.
        steps: u64,
        /// Structured post-mortem (census, faults, repro schedule).
        diagnostic: Box<StallDiagnostic>,
    },
    /// The online monitor flagged a specification violation.
    Violation(SpecViolation),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled { message, steps, .. } => {
                write!(f, "message {message} undelivered after {steps} steps")
            }
            SimError::Violation(v) => write!(f, "specification violated: {v}"),
        }
    }
}

impl Error for SimError {}

/// Cost and safety statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Packets sent on the forward channel.
    pub packets_sent_forward: u64,
    /// Packets sent on the backward channel.
    pub packets_sent_backward: u64,
    /// Distinct forward packet values — the execution's header count.
    pub distinct_forward_packets: u64,
    /// Total scheduler steps.
    pub steps: u64,
    /// Peak transmitter + receiver space, in bytes.
    pub peak_space_bytes: usize,
    /// Copies still delayed on the forward channel at the end.
    pub final_in_transit: u64,
    /// First violation observed, if any (also surfaced as a [`SimError`]).
    pub violation: Option<SpecViolation>,
    /// Payloads of delivered messages, in delivery order (only recorded
    /// when [`SimConfig::payloads`] is set).
    pub delivered_payloads: Vec<u64>,
    /// Order-sensitive 64-bit digest of every event the engine observed.
    /// Two runs with the same protocol, channels, plan and seed produce the
    /// same fingerprint — the replayability contract of the chaos layer.
    pub fingerprint: u64,
    /// Station crashes applied so far.
    pub crashes_applied: u64,
    /// Faults injected by the chaos layer across both channels.
    pub faults_injected: u64,
}

/// A protocol composed with a forward and a backward channel.
///
/// Unlike [`nonfifo_adversary::System`], which exposes full adversary
/// control, `Simulation` drives *autonomous* channels (probabilistic,
/// lossy, reordering): the channel decides what happens; the engine only
/// pumps, records and checks.
#[derive(Debug)]
pub struct Simulation {
    tx: BoxedTransmitter,
    rx: BoxedReceiver,
    fwd: BoxedChannel,
    bwd: BoxedChannel,
    monitor: SpecMonitor,
    sent_values: BTreeSet<nonfifo_ioa::Packet>,
    next_msg: u64,
    steps: u64,
    peak_space: usize,
    delivered_payloads: Vec<u64>,
    round_watermark: CopyId,
    pending_deliveries: u64,
    uses_ghosts: bool,
    proto_name: String,
    fingerprint: Fnv64,
    last_progress: Option<(u64, String)>,
    checkpoint_tx: BoxedTransmitter,
    checkpoint_rx: BoxedReceiver,
    pending_crashes: Vec<CrashEvent>,
    crash_history: Vec<CrashEvent>,
    tx_down_until: u64,
    rx_down_until: u64,
    tx_crashed_since_send: bool,
    restart_backoff: u64,
    round_start_step: u64,
    telemetry: Option<SimTelemetry>,
    execution: Option<Execution>,
}

impl Simulation {
    /// Composes `proto` with an explicit channel pair.
    ///
    /// # Panics
    ///
    /// Panics if the channels' directions are not forward/backward
    /// respectively.
    pub fn with_channels(proto: impl DataLink, fwd: BoxedChannel, bwd: BoxedChannel) -> Self {
        assert_eq!(fwd.dir(), Dir::Forward, "fwd channel must be t→r");
        assert_eq!(bwd.dir(), Dir::Backward, "bwd channel must be r→t");
        let uses_ghosts = proto.uses_ghosts();
        let proto_name = proto.name();
        let (tx, rx) = proto.make();
        let checkpoint_tx = tx.clone_box();
        let checkpoint_rx = rx.clone_box();
        Simulation {
            tx,
            rx,
            fwd,
            bwd,
            monitor: SpecMonitor::new(),
            sent_values: BTreeSet::new(),
            next_msg: 0,
            steps: 0,
            peak_space: 0,
            delivered_payloads: Vec::new(),
            round_watermark: CopyId::from_raw(0),
            pending_deliveries: 0,
            uses_ghosts,
            proto_name,
            fingerprint: Fnv64::new(),
            last_progress: None,
            checkpoint_tx,
            checkpoint_rx,
            pending_crashes: Vec::new(),
            crash_history: Vec::new(),
            tx_down_until: 0,
            rx_down_until: 0,
            tx_crashed_since_send: false,
            restart_backoff: 0,
            round_start_step: 0,
            telemetry: None,
            execution: None,
        }
    }

    /// Attaches a metrics registry (and optionally a trace sink) to the
    /// running simulation. Every subsequent event updates the registry's
    /// counters/gauges/histograms; the trace sink receives round spans and
    /// delivery/drop instants. Telemetry never influences the run itself:
    /// fingerprints and statistics are identical with or without it.
    pub fn attach_telemetry(&mut self, registry: Arc<Registry>, trace: Option<Arc<TraceSink>>) {
        self.telemetry = Some(SimTelemetry::new(registry, trace));
    }

    /// Starts retaining the full event sequence as an [`Execution`]. Only
    /// events recorded after the call are kept, so call it before the
    /// first delivery — the builder's
    /// [`SimulationBuilder::initial_corruption`] does this automatically.
    /// Retention is observation-only: fingerprints and statistics are
    /// identical with or without it.
    pub fn retain_execution(&mut self) {
        if self.execution.is_none() {
            self.execution = Some(Execution::new());
        }
    }

    /// The retained execution, if [`Simulation::retain_execution`] was
    /// called.
    pub fn execution(&self) -> Option<&Execution> {
        self.execution.as_ref()
    }

    /// Payloads delivered so far, in delivery order (recorded only for
    /// rounds driven with [`SimConfig::payloads`] set).
    pub fn delivered_payloads(&self) -> &[u64] {
        &self.delivered_payloads
    }

    /// Swaps the online monitor into convergence mode: over-deliveries
    /// (`rm > sm`, inevitable when the receiver boots poisoned) are counted
    /// instead of latched, while PL1 physical-safety checks stay fatal.
    /// Judge the retained execution with a `ConvergenceSpec` afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the monitor has already observed events — convergence
    /// mode cannot be entered retroactively.
    pub fn enable_convergence_monitor(&mut self) {
        assert_eq!(
            self.monitor.events_seen(),
            0,
            "convergence mode must be enabled before any event is observed"
        );
        self.monitor = SpecMonitor::convergence();
    }

    /// Scrambles the initial state through public interfaces only: the
    /// plan's channel preloads are injected as monitored `SendPkt` events
    /// (each junk copy is *declared*, so PL1 stays checkable when it is
    /// later delivered or dropped), and the feed halves are handed straight
    /// to the automata as synthetic packet receipts — automaton-state
    /// corruption that leaves no channel trace. Deterministic: the plan is
    /// a pure function of its seed, so execution fingerprints replay.
    pub fn corrupt_initial_state(&mut self, plan: &ScramblePlan) {
        for &pkt in &plan.fwd_preload {
            self.sent_values.insert(pkt);
            let copy = self.fwd.send(pkt);
            self.record(&Event::SendPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
        }
        for &pkt in &plan.bwd_preload {
            let copy = self.bwd.send(pkt);
            self.record(&Event::SendPkt {
                dir: Dir::Backward,
                packet: pkt,
                copy,
            });
        }
        for &pkt in &plan.rx_feed {
            self.rx.on_receive_pkt(pkt);
        }
        for &pkt in &plan.tx_feed {
            self.tx.on_receive_pkt(pkt);
        }
    }

    /// Pumps the scheduler `steps` times without submitting any message —
    /// lets corruption-induced traffic (junk copies, phantom deliveries,
    /// acknowledgement exchanges) flush before the real workload starts,
    /// so a convergence bound drawn at the end of the settle phase cleanly
    /// separates the corrupted prefix from the legal suffix.
    pub fn settle(&mut self, steps: u64) {
        for _ in 0..steps {
            self.pump();
        }
    }

    /// Starts a [`SimulationBuilder`] over `proto` — the one assembly path
    /// for the discipline family (FIFO, lossy, probabilistic, reorder) with
    /// optional chaos faults. Defaults: FIFO, seed 0, no faults.
    pub fn builder<P: DataLink>(proto: P) -> SimulationBuilder<P> {
        SimulationBuilder::new(proto)
    }

    /// Order-sensitive digest of every event observed so far (see
    /// [`RunStats::fingerprint`]).
    pub fn execution_fingerprint(&self) -> u64 {
        self.fingerprint.clone().finish()
    }

    /// Fault records logged by both channels, rendered with a direction
    /// prefix (empty unless a chaos channel is installed).
    pub fn fault_log(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in self.fwd.fault_log() {
            out.push(format!("fwd: {f}"));
        }
        for f in self.bwd.fault_log() {
            out.push(format!("bwd: {f}"));
        }
        out
    }

    /// Delivers `n` messages, returning the run statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] if a message exceeds the per-message step
    /// budget (the error carries a [`StallDiagnostic`] post-mortem);
    /// [`SimError::Violation`] if the online monitor flags a specification
    /// violation (the statistics up to that point are lost — use
    /// lower-level crates to post-mortem violations).
    pub fn deliver(&mut self, n: u64, cfg: &SimConfig) -> Result<RunStats, SimError> {
        // Install the crash plan: future events only, soonest popped first.
        let mut plan: Vec<CrashEvent> = cfg
            .crash_plan
            .iter()
            .copied()
            .filter(|c| c.at_step >= self.steps)
            .collect();
        plan.sort_by_key(|c| std::cmp::Reverse(c.at_step));
        self.pending_crashes = plan;
        self.restart_backoff = cfg.restart_backoff;

        let base = self.pending_deliveries;
        let mut delivered = 0u64;
        let trace = self.telemetry.as_ref().and_then(|t| t.trace.clone());
        for _ in 0..n {
            // Wait until the transmitter accepts the next message.
            let mut waited = 0;
            while !self.tx.ready() {
                if waited >= cfg.max_steps_per_message {
                    return Err(self.stalled(self.next_msg, waited));
                }
                self.pump();
                self.check()?;
                waited += 1;
            }

            let m = if cfg.payloads {
                Message::with_payload(self.next_msg, Payload::new(self.next_msg))
            } else {
                Message::identical(self.next_msg)
            };
            self.round_watermark = CopyId::from_raw(self.fwd.total_sent());
            self.round_start_step = self.steps;
            self.record(&Event::SendMsg(m));
            let _round_span = trace
                .as_ref()
                .map(|t| t.span_with_args("sim", "round", vec![("msg".to_string(), m.id().raw())]));
            self.next_msg += 1;
            self.tx.on_send_msg(m);
            self.tx_crashed_since_send = false;
            if !self.pending_crashes.is_empty() {
                // Stable-storage snapshot at the send_msg boundary.
                self.checkpoint();
            }

            let target = base + delivered + 1;
            let mut steps = 0;
            let mut last_retry = 0u64;
            while self.pending_deliveries < target {
                if steps >= cfg.max_steps_per_message {
                    return Err(self.stalled(self.next_msg - 1, steps));
                }
                self.pump();
                self.check()?;
                steps += 1;
                if cfg.retry_lost_messages
                    && self.tx_crashed_since_send
                    && self.pending_deliveries < target
                    && self.steps >= self.tx_down_until
                    && self.tx.ready()
                    && self.steps.saturating_sub(last_retry) >= cfg.retry_backoff.max(1)
                {
                    // The in-flight message died with the transmitter's
                    // volatile state; re-submit it as a fresh monitored
                    // send (`sm` grows, so prefix-DL1 stays honest).
                    last_retry = self.steps;
                    self.tx_crashed_since_send = false;
                    let retry = if cfg.payloads {
                        Message::with_payload(self.next_msg - 1, Payload::new(self.next_msg - 1))
                    } else {
                        Message::identical(self.next_msg - 1)
                    };
                    self.record(&Event::SendMsg(retry));
                    self.tx.on_send_msg(retry);
                }
            }
            delivered += 1;
        }

        Ok(RunStats {
            messages_delivered: delivered,
            packets_sent_forward: self.fwd.total_sent(),
            packets_sent_backward: self.bwd.total_sent(),
            distinct_forward_packets: self.sent_values.len() as u64,
            steps: self.steps,
            peak_space_bytes: self.peak_space,
            final_in_transit: self.fwd.in_transit_len() as u64,
            violation: self.monitor.first_violation(),
            delivered_payloads: self.delivered_payloads.clone(),
            fingerprint: self.execution_fingerprint(),
            crashes_applied: self.crash_history.len() as u64,
            faults_injected: (self.fwd.fault_log().len() + self.bwd.fault_log().len()) as u64,
        })
    }

    fn check(&self) -> Result<(), SimError> {
        match self.monitor.first_violation() {
            Some(v) => Err(SimError::Violation(v)),
            None => Ok(()),
        }
    }

    /// Feeds one event to the monitor, the execution fingerprint, and (when
    /// attached) the telemetry layer.
    fn record(&mut self, event: &Event) {
        event.hash(&mut self.fingerprint);
        let _ = self.monitor.observe(event);
        if let Some(exec) = &mut self.execution {
            exec.push(*event);
        }
        if let Some(tel) = &mut self.telemetry {
            tel.observe(event);
        }
    }

    fn checkpoint(&mut self) {
        self.checkpoint_tx = self.tx.clone_box();
        self.checkpoint_rx = self.rx.clone_box();
    }

    fn apply_crash(&mut self, c: CrashEvent) {
        match (c.station, c.mode) {
            (Station::Tx, CrashMode::Amnesia) => {
                self.tx.crash_amnesia();
                self.tx_crashed_since_send = true;
            }
            (Station::Tx, CrashMode::Restore) => {
                self.tx = self.checkpoint_tx.clone_box();
            }
            (Station::Rx, CrashMode::Amnesia) => self.rx.crash_amnesia(),
            (Station::Rx, CrashMode::Restore) => {
                self.rx = self.checkpoint_rx.clone_box();
            }
        }
        let until = self.steps + self.restart_backoff;
        match c.station {
            Station::Tx => self.tx_down_until = self.tx_down_until.max(until),
            Station::Rx => self.rx_down_until = self.rx_down_until.max(until),
        }
        self.crash_history.push(c);
    }

    fn stalled(&self, message: u64, steps: u64) -> SimError {
        SimError::Stalled {
            message,
            steps,
            diagnostic: Box::new(self.diagnose(message)),
        }
    }

    fn diagnose(&self, message: u64) -> StallDiagnostic {
        StallDiagnostic {
            message,
            at_step: self.steps,
            last_progress: self.last_progress.clone(),
            fwd_census: self.fwd.transit_census(),
            bwd_census: self.bwd.transit_census(),
            messages_sent: self.monitor.messages_sent(),
            messages_delivered: self.monitor.messages_delivered(),
            events_seen: self.monitor.events_seen(),
            active_faults: {
                let mut active: Vec<String> = self
                    .fwd
                    .active_faults()
                    .into_iter()
                    .map(|f| format!("fwd: {f}"))
                    .collect();
                active.extend(
                    self.bwd
                        .active_faults()
                        .into_iter()
                        .map(|f| format!("bwd: {f}")),
                );
                active
            },
            faults_injected: (self.fwd.fault_log().len() + self.bwd.fault_log().len()) as u64,
            crashes_applied: self.crash_history.len() as u64,
            tx_ready: self.tx.ready(),
            repro_schedule: self.repro_schedule(message),
        }
    }

    /// Compiles the run so far into an attack-DSL schedule whose replay
    /// stalls on the same message: each already-delivered message becomes a
    /// clean `send`/`quiesce` round, the faults that hit the stalled round
    /// are summarised as comments, and the stalled message is sent under a
    /// `partition` (the DSL abstraction of "the channel ate every copy") so
    /// the final `quiesce` fails to converge — which *is* the stall.
    fn repro_schedule(&self, message: u64) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "// chaos stall reproduction: {} — message {message} undelivered\n",
            self.proto_name
        ));
        s.push_str("// replay with: nonfifo schedule <protocol> <this file>\n");
        const SHOWN: usize = 8;
        for (label, log) in [("fwd", self.fwd.fault_log()), ("bwd", self.bwd.fault_log())] {
            for f in log.iter().take(SHOWN) {
                s.push_str(&format!("// {label} fault: {f}\n"));
            }
            if log.len() > SHOWN {
                s.push_str(&format!(
                    "// {label} fault: … and {} more\n",
                    log.len() - SHOWN
                ));
            }
        }
        for _ in 0..self.monitor.messages_delivered() {
            s.push_str("send\nquiesce\n");
        }
        s.push_str("partition\nsend\n");
        for c in self
            .crash_history
            .iter()
            .filter(|c| c.at_step >= self.round_start_step)
        {
            s.push_str(&format!("crash {}\n", c.station));
        }
        s.push_str("quiesce\n");
        s
    }

    fn ghost(&self) -> GhostInfo {
        let mut ghost = GhostInfo {
            fwd_in_transit: self.fwd.in_transit_len() as u64,
            bwd_in_transit: self.bwd.in_transit_len() as u64,
            stale_fwd_by_header: Vec::new(),
        };
        // Conservative sweep over a small header space: ghost info is only
        // consumed by bounded-header reconstructions, whose alphabets are
        // tiny. Headers beyond 64 are not swept (no consumer needs them).
        // The sweep is in ascending header order, so pushing directly keeps
        // the vec sorted.
        for h in 0..64u32 {
            let header = Header::new(h);
            let n = self
                .fwd
                .header_copies_older_than(header, self.round_watermark);
            if n > 0 {
                ghost.stale_fwd_by_header.push((header, n as u64));
            }
        }
        ghost
    }

    /// One scheduler step: crashes, ghosts, ticks, transmitter pump,
    /// channel deliveries, receiver pump. A station that is down (crash
    /// backoff) takes no actions and receives nothing — copies addressed
    /// to it stay in transit.
    fn pump(&mut self) {
        self.steps += 1;
        while let Some(&c) = self.pending_crashes.last() {
            if c.at_step > self.steps {
                break;
            }
            self.pending_crashes.pop();
            self.apply_crash(c);
        }
        let tx_up = self.steps >= self.tx_down_until;
        let rx_up = self.steps >= self.rx_down_until;

        if self.uses_ghosts {
            let ghost = self.ghost();
            if tx_up {
                self.tx.on_ghost(&ghost);
            }
            if rx_up {
                self.rx.on_ghost(&ghost);
            }
        }
        if tx_up {
            self.tx.on_tick();
        }
        if rx_up {
            self.rx.on_tick();
        }

        if tx_up {
            while let Some(pkt) = self.tx.poll_send() {
                self.sent_values.insert(pkt);
                let copy = self.fwd.send(pkt);
                self.record(&Event::SendPkt {
                    dir: Dir::Forward,
                    packet: pkt,
                    copy,
                });
            }
        }
        // Declare chaos-injected copies (duplicate twins, corrupted
        // rewrites) before any drop or delivery can reference them — this
        // is what keeps the monitor PL1-sound under fault injection.
        for (pkt, copy) in self.fwd.drain_injected_sends() {
            self.sent_values.insert(pkt);
            if let Some(tel) = &self.telemetry {
                tel.observe_injected(Dir::Forward, &pkt);
            }
            self.record(&Event::SendPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
        }
        for (pkt, copy) in self.fwd.drain_drops() {
            self.record(&Event::DropPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
        }
        if rx_up {
            while let Some((pkt, copy)) = self.fwd.poll_deliver() {
                self.record(&Event::ReceivePkt {
                    dir: Dir::Forward,
                    packet: pkt,
                    copy,
                });
                self.rx.on_receive_pkt(pkt);
            }
            let mut delivered_now = false;
            while let Some(m) = self.rx.poll_deliver() {
                self.record(&Event::ReceiveMsg(m));
                self.pending_deliveries += 1;
                delivered_now = true;
                self.last_progress = Some((self.steps, format!("delivered message {}", m.id())));
                if let Some(p) = m.payload() {
                    self.delivered_payloads.push(p.word());
                }
            }
            if delivered_now && !self.pending_crashes.is_empty() {
                // Stable-storage snapshot at the delivery boundary, so a
                // later restore never rolls the receiver back behind a
                // delivery the monitor has already counted.
                self.checkpoint();
            }
            while let Some(ack) = self.rx.poll_send() {
                let copy = self.bwd.send(ack);
                self.record(&Event::SendPkt {
                    dir: Dir::Backward,
                    packet: ack,
                    copy,
                });
            }
        }
        for (pkt, copy) in self.bwd.drain_injected_sends() {
            if let Some(tel) = &self.telemetry {
                tel.observe_injected(Dir::Backward, &pkt);
            }
            self.record(&Event::SendPkt {
                dir: Dir::Backward,
                packet: pkt,
                copy,
            });
        }
        for (pkt, copy) in self.bwd.drain_drops() {
            self.record(&Event::DropPkt {
                dir: Dir::Backward,
                packet: pkt,
                copy,
            });
        }
        if tx_up {
            while let Some((ack, copy)) = self.bwd.poll_deliver() {
                self.record(&Event::ReceivePkt {
                    dir: Dir::Backward,
                    packet: ack,
                    copy,
                });
                self.tx.on_receive_pkt(ack);
            }
        }
        self.fwd.tick();
        self.bwd.tick();
        if let Some(tel) = &self.telemetry {
            tel.fwd.in_transit.set(self.fwd.in_transit_len() as u64);
            tel.bwd.in_transit.set(self.bwd.in_transit_len() as u64);
        }
        let s = self.tx.space_bytes() + self.rx.space_bytes();
        self.peak_space = self.peak_space.max(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_channel::{Discipline, FaultPlan};
    use nonfifo_protocols::{AlternatingBit, Outnumber, SequenceNumber, SlidingWindow};

    #[test]
    fn seqnum_over_fifo_costs_one_packet_per_message() {
        let mut sim = Simulation::builder(SequenceNumber::new()).build();
        let stats = sim.deliver(20, &SimConfig::default()).unwrap();
        assert_eq!(stats.messages_delivered, 20);
        assert_eq!(stats.packets_sent_forward, 20);
        assert_eq!(stats.distinct_forward_packets, 20);
        assert!(stats.violation.is_none());
    }

    #[test]
    fn seqnum_over_probabilistic_is_linear() {
        let mut sim = Simulation::builder(SequenceNumber::new())
            .channel(Discipline::Probabilistic { q: 0.3 })
            .seed(99)
            .build();
        let stats = sim.deliver(100, &SimConfig::default()).unwrap();
        assert_eq!(stats.messages_delivered, 100);
        // About 1/(1−q)² round trips per message; certainly way below
        // exponential.
        assert!(stats.packets_sent_forward < 100 * 30);
    }

    #[test]
    fn alternating_bit_is_fine_over_lossy_fifo() {
        let mut sim = Simulation::builder(AlternatingBit::new())
            .channel(Discipline::LossyFifo { loss: 0.4 })
            .seed(5)
            .build();
        let stats = sim.deliver(100, &SimConfig::default()).unwrap();
        assert_eq!(stats.messages_delivered, 100);
        assert_eq!(stats.distinct_forward_packets, 2);
        assert!(stats.violation.is_none());
    }

    #[test]
    fn payload_mode_checks_content_ordering() {
        let mut sim = Simulation::builder(SequenceNumber::new()).build();
        let cfg = SimConfig {
            payloads: true,
            ..SimConfig::default()
        };
        let stats = sim.deliver(10, &cfg).unwrap();
        assert_eq!(stats.delivered_payloads, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn sliding_window_survives_mild_reordering() {
        let mut sim = Simulation::builder(SlidingWindow::new(8))
            .channel(Discipline::BoundedReorder { bound: 4 })
            .seed(12)
            .build();
        let cfg = SimConfig {
            payloads: true,
            ..SimConfig::default()
        };
        let stats = sim.deliver(200, &cfg).unwrap();
        assert_eq!(stats.messages_delivered, 200);
        assert_eq!(stats.delivered_payloads, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn outnumber_cost_explodes_but_stays_safe() {
        let mut sim = Simulation::builder(Outnumber::factory())
            .channel(Discipline::Probabilistic { q: 0.3 })
            .seed(21)
            .build();
        let stats = sim.deliver(10, &SimConfig::default()).unwrap();
        assert!(stats.violation.is_none());
        assert!(
            stats.packets_sent_forward > 1 << 8,
            "sent {}",
            stats.packets_sent_forward
        );
    }

    #[test]
    fn stall_is_reported() {
        // q = 1: nothing is ever delivered.
        let mut sim = Simulation::builder(SequenceNumber::new())
            .channel(Discipline::Probabilistic { q: 1.0 })
            .seed(0)
            .build();
        let cfg = SimConfig {
            max_steps_per_message: 50,
            ..SimConfig::default()
        };
        let err = sim.deliver(1, &cfg).unwrap_err();
        assert!(matches!(err, SimError::Stalled { message: 0, .. }));
    }

    #[test]
    fn stall_diagnostic_is_structured() {
        let mut sim = Simulation::builder(SequenceNumber::new())
            .channel(Discipline::Probabilistic { q: 1.0 })
            .seed(0)
            .build();
        let cfg = SimConfig {
            max_steps_per_message: 50,
            ..SimConfig::default()
        };
        let err = sim.deliver(1, &cfg).unwrap_err();
        let SimError::Stalled { diagnostic, .. } = err else {
            panic!("expected a stall");
        };
        assert_eq!(diagnostic.message, 0);
        assert_eq!(diagnostic.messages_sent, 1);
        assert_eq!(diagnostic.messages_delivered, 0);
        assert!(diagnostic.last_progress.is_none());
        // q = 1 delays every copy forever: the census shows them in transit.
        assert!(!diagnostic.fwd_census.is_empty());
        // The repro schedule sends the stalled message under a partition
        // and ends with a quiesce that cannot converge.
        assert!(diagnostic.repro_schedule.contains("partition\nsend\n"));
        assert!(diagnostic.repro_schedule.ends_with("quiesce\n"));
        // The Display rendering mentions the schedule and the census.
        let text = diagnostic.to_string();
        assert!(text.contains("fwd in transit"));
        assert!(text.contains("repro schedule"));
    }

    #[test]
    fn restore_crashes_are_transparent_to_delivery() {
        let mut sim = Simulation::builder(AlternatingBit::new())
            .channel(Discipline::LossyFifo { loss: 0.2 })
            .seed(9)
            .build();
        let cfg = SimConfig {
            crash_plan: vec![
                CrashEvent {
                    at_step: 10,
                    station: Station::Tx,
                    mode: CrashMode::Restore,
                },
                CrashEvent {
                    at_step: 25,
                    station: Station::Rx,
                    mode: CrashMode::Restore,
                },
            ],
            restart_backoff: 3,
            ..SimConfig::default()
        };
        let stats = sim.deliver(20, &cfg).unwrap();
        assert_eq!(stats.messages_delivered, 20);
        assert_eq!(stats.crashes_applied, 2);
        assert!(stats.violation.is_none());
    }

    #[test]
    fn full_reboot_with_retry_still_delivers() {
        // Both stations lose all volatile state mid-run; the retry knob
        // re-submits the message the transmitter forgot.
        let mut sim = Simulation::builder(SequenceNumber::new()).build();
        let cfg = SimConfig {
            crash_plan: vec![
                CrashEvent {
                    at_step: 3,
                    station: Station::Tx,
                    mode: CrashMode::Amnesia,
                },
                CrashEvent {
                    at_step: 3,
                    station: Station::Rx,
                    mode: CrashMode::Amnesia,
                },
            ],
            retry_lost_messages: true,
            retry_backoff: 2,
            max_steps_per_message: 10_000,
            ..SimConfig::default()
        };
        let stats = sim.deliver(5, &cfg).unwrap();
        assert_eq!(stats.messages_delivered, 5);
        assert_eq!(stats.crashes_applied, 2);
        assert!(stats.violation.is_none());
    }

    #[test]
    fn downed_station_keeps_copies_in_transit() {
        // A long backoff with no retry: the run stalls while the receiver
        // is down, and the diagnostic records the crash.
        let mut sim = Simulation::builder(SequenceNumber::new()).build();
        let cfg = SimConfig {
            crash_plan: vec![CrashEvent {
                at_step: 1,
                station: Station::Rx,
                mode: CrashMode::Amnesia,
            }],
            restart_backoff: 1_000,
            max_steps_per_message: 40,
            ..SimConfig::default()
        };
        let err = sim.deliver(1, &cfg).unwrap_err();
        let SimError::Stalled { diagnostic, .. } = err else {
            panic!("expected a stall");
        };
        assert_eq!(diagnostic.crashes_applied, 1);
        assert!(!diagnostic.fwd_census.is_empty(), "copies wait for the rx");
    }

    #[test]
    fn same_seed_and_plan_reproduce_the_fingerprint() {
        let plan = FaultPlan::parse("dup 0.1\ndrop 0.15").unwrap();
        let run = |seed: u64| {
            let mut sim = Simulation::builder(SequenceNumber::new())
                .fault_plan(plan.clone())
                .seed(seed)
                .build();
            sim.deliver(40, &SimConfig::default()).unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.packets_sent_forward, b.packets_sent_forward);
        assert_eq!(a.faults_injected, b.faults_injected);
        let c = run(8);
        assert_ne!(a.fingerprint, c.fingerprint, "a different seed diverges");
    }

    #[test]
    fn chaos_faults_stay_pl1_sound() {
        let plan = FaultPlan::parse("dup 0.2\ndrop 0.1\ncorrupt 0.05").unwrap();
        let mut sim = Simulation::builder(SequenceNumber::new())
            .fault_plan(plan.clone())
            .seed(3)
            .build();
        let stats = sim.deliver(30, &SimConfig::default()).unwrap();
        assert_eq!(stats.messages_delivered, 30);
        assert!(stats.violation.is_none(), "got {:?}", stats.violation);
        assert!(stats.faults_injected > 0, "the plan actually fired");
    }
}
