//! Simulation engine and experiment harness for the `nonfifo` reproduction
//! of Mansour & Schieber (PODC 1989).
//!
//! This crate is the user-facing top of the workspace:
//!
//! - [`Simulation`] — compose any [`DataLink`](nonfifo_protocols::DataLink)
//!   protocol with any pair of [`Channel`](nonfifo_channel::Channel)s and
//!   run message deliveries with online specification checking and cost
//!   accounting.
//! - [`experiments`] — one runner per experiment in `DESIGN.md` §4
//!   (E1–E9), each producing a typed report that renders as the markdown
//!   table recorded in `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use nonfifo_channel::Discipline;
//! use nonfifo_core::{SimConfig, Simulation};
//! use nonfifo_protocols::SequenceNumber;
//!
//! let mut sim = Simulation::builder(SequenceNumber::factory())
//!     .channel(Discipline::Probabilistic { q: 0.25 })
//!     .seed(7)
//!     .build();
//! let stats = sim.deliver(50, &SimConfig::default()).expect("delivery");
//! assert_eq!(stats.messages_delivered, 50);
//! assert!(stats.violation.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
pub mod experiments;
mod simulation;
mod stabilize;

pub use builder::SimulationBuilder;
pub use error::NonFifoError;
pub use simulation::{
    CrashEvent, CrashMode, RunStats, SimConfig, SimError, Simulation, StallDiagnostic, Station,
};
pub use stabilize::{
    certify, corrupted_simulation, drive_corrupted, stabilize_run, SeedOutcome, SeedVerdict,
    StabilizeConfig, StabilizeReport,
};
