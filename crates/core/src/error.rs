//! The workspace-wide error type.
//!
//! Every front end (the CLI, the campaign engine, experiment drivers) used
//! to invent its own error enum and its own exit-code mapping;
//! [`NonFifoError`] unifies them. The exit-code contract itself
//! (0 = certificate/success, 2 = counterexample/violation, 3 = truncated or
//! stalled, 4 = differential mismatch, 5 = convergence not reached within
//! bound, 1 = everything operational) is applied in exactly one place,
//! `crates/cli/src/main.rs`.

use crate::SimError;
use nonfifo_channel::{DisciplineError, PlanError};
use std::error::Error;
use std::fmt;

/// Any failure a `nonfifo` front end can surface.
#[derive(Debug)]
pub enum NonFifoError {
    /// The caller asked for something malformed (bad flag, unknown name,
    /// out-of-range parameter).
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error, rendered.
        message: String,
    },
    /// A fault-plan or campaign-plan file failed to parse.
    Plan(PlanError),
    /// A simulation run failed (stall or specification violation).
    Sim(SimError),
    /// An exploration found a violating schedule at the given depth.
    Counterexample {
        /// Depth at which the violation was found.
        depth: usize,
    },
    /// An exploration hit its state budget before reaching a verdict.
    Truncated {
        /// States visited before giving up.
        states: u64,
    },
    /// Two explorers disagreed on the same state space.
    DifferentialMismatch,
    /// A campaign finished with failing runs. Violations dominate stalls in
    /// the exit-code contract (2 beats 3), mirroring the single-run rules.
    CampaignFailed {
        /// Runs that ended in a specification violation.
        violations: u64,
        /// Runs that stalled out of their step budget.
        stalls: u64,
    },
    /// A stabilization certification failed: some corrupted starts never
    /// reached — and stayed in — legal behavior within the bounded prefix.
    /// Distinct from a plain safety violation: a clean-start protocol that
    /// misbehaves earns exit 2, a protocol that fails to *recover* earns
    /// exit 5.
    ConvergenceFailed {
        /// Corrupted starts whose executions kept violating past the bound.
        diverged: u64,
        /// Corrupted starts that stalled before finishing the workload.
        stalled: u64,
        /// Total corrupted starts examined.
        seeds: u64,
    },
}

impl fmt::Display for NonFifoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonFifoError::Usage(msg) => write!(f, "{msg}"),
            NonFifoError::Io { path, message } => write!(f, "{path}: {message}"),
            NonFifoError::Plan(e) => write!(f, "{e}"),
            NonFifoError::Sim(e) => write!(f, "{e}"),
            NonFifoError::Counterexample { depth } => {
                write!(f, "counterexample found at depth {depth}")
            }
            NonFifoError::Truncated { states } => {
                write!(f, "exploration truncated after {states} states")
            }
            NonFifoError::DifferentialMismatch => {
                write!(f, "differential exploration mismatch")
            }
            NonFifoError::CampaignFailed { violations, stalls } => {
                write!(
                    f,
                    "campaign failed: {violations} violation(s), {stalls} stall(s)"
                )
            }
            NonFifoError::ConvergenceFailed {
                diverged,
                stalled,
                seeds,
            } => {
                write!(
                    f,
                    "convergence not reached within bound: {diverged} diverged, \
                     {stalled} stalled of {seeds} corrupted start(s)"
                )
            }
        }
    }
}

impl Error for NonFifoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NonFifoError::Plan(e) => Some(e),
            NonFifoError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for NonFifoError {
    fn from(e: SimError) -> Self {
        NonFifoError::Sim(e)
    }
}

impl From<PlanError> for NonFifoError {
    fn from(e: PlanError) -> Self {
        NonFifoError::Plan(e)
    }
}

impl From<DisciplineError> for NonFifoError {
    fn from(e: DisciplineError) -> Self {
        NonFifoError::Usage(e.0)
    }
}

impl NonFifoError {
    /// Wraps an OS error with the path it struck.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        NonFifoError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_channel::FaultPlan;

    #[test]
    fn displays_are_informative() {
        let plan_err = FaultPlan::parse("dup").unwrap_err();
        let cases: Vec<(NonFifoError, &str)> = vec![
            (NonFifoError::Usage("bad --q".into()), "bad --q"),
            (
                NonFifoError::Io {
                    path: "x.plan".into(),
                    message: "not found".into(),
                },
                "x.plan",
            ),
            (NonFifoError::Plan(plan_err), "dup"),
            (NonFifoError::Counterexample { depth: 3 }, "depth 3"),
            (NonFifoError::Truncated { states: 10 }, "10 states"),
            (NonFifoError::DifferentialMismatch, "mismatch"),
            (
                NonFifoError::CampaignFailed {
                    violations: 2,
                    stalls: 1,
                },
                "2 violation(s)",
            ),
            (
                NonFifoError::ConvergenceFailed {
                    diverged: 3,
                    stalled: 1,
                    seeds: 100,
                },
                "3 diverged",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn sources_chain() {
        let err: NonFifoError = FaultPlan::parse("dup").unwrap_err().into();
        assert!(err.source().is_some());
        assert!(NonFifoError::DifferentialMismatch.source().is_none());
    }
}
