//! Convergence certification from arbitrary corrupted initial states.
//!
//! A self-stabilizing data-link protocol must reach — and thereafter stay
//! in — legal behavior from *any* initial state, not just the clean boot
//! the rest of the workspace assumes. This module drives that check end to
//! end: each seed scrambles the automaton state and in-transit multisets
//! through [`SimulationBuilder::initial_corruption`], lets the poison
//! flush during a settle phase, runs a real payload workload, and judges
//! the retained execution with a [`ConvergenceSpec`] whose bound is drawn
//! at the settle boundary (so stranding the real workload inside the
//! forgiven prefix is impossible).
//!
//! [`certify`] fans this out over many seeds. A protocol is *certified*
//! when every corrupted start converges; a single divergence or stall is a
//! counterexample to self-stabilization (the fate of every clean-start
//! protocol in the catalog — see `tests/stabilize_props.rs`).
//!
//! [`SimulationBuilder::initial_corruption`]: crate::SimulationBuilder::initial_corruption

use crate::{NonFifoError, SimConfig, SimError, Simulation};
use nonfifo_channel::{CorruptionSeverity, Discipline, FaultPlan};
use nonfifo_ioa::{Convergence, ConvergenceSpec, SpecViolation};
use nonfifo_protocols::DataLink;
use std::fmt;

/// Knobs for a stabilization run.
#[derive(Debug, Clone)]
pub struct StabilizeConfig {
    /// How much junk the scramble plan injects.
    pub severity: CorruptionSeverity,
    /// Channel discipline under the run. The default is probabilistic
    /// (non-FIFO): preloaded junk floats in transit instead of arriving as
    /// a burst, which is exactly the regime where non-stabilizing
    /// protocols betray themselves.
    pub discipline: Discipline,
    /// Optional chaos fault plan composed on top of the corruption —
    /// corrupted starts and live faults are independent axes.
    pub fault_plan: Option<FaultPlan>,
    /// Real messages delivered after the corrupted start.
    pub messages: u64,
    /// Scheduler steps pumped before the workload, flushing
    /// corruption-induced traffic. The convergence bound is the retained
    /// execution's length at the end of this phase.
    pub settle_steps: u64,
    /// Step budget per message before the run is declared stalled.
    pub max_steps_per_message: u64,
}

impl Default for StabilizeConfig {
    fn default() -> Self {
        StabilizeConfig {
            severity: CorruptionSeverity::Medium,
            discipline: Discipline::Probabilistic { q: 0.2 },
            fault_plan: None,
            messages: 4,
            settle_steps: 512,
            max_steps_per_message: 10_000,
        }
    }
}

/// How one corrupted start ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedVerdict {
    /// The execution acquired a legal suffix at the given cut.
    Converged {
        /// Earliest event index from which the rest of the execution is
        /// legal (0 = the corruption never produced observable damage).
        stabilized_at: usize,
    },
    /// Every admissible cut left a violating suffix — the corruption's
    /// damage persisted past the bound.
    Diverged {
        /// The violation at the last (deepest) cut tried.
        last_violation: SpecViolation,
    },
    /// The run never finished its workload: either a message blew the step
    /// budget or the settle loop could not collect every real payload.
    Stalled,
}

impl SeedVerdict {
    /// Whether this start converged.
    pub fn converged(&self) -> bool {
        matches!(self, SeedVerdict::Converged { .. })
    }
}

impl fmt::Display for SeedVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeedVerdict::Converged { stabilized_at } => {
                write!(f, "converged (stabilized at event {stabilized_at})")
            }
            SeedVerdict::Diverged { last_violation } => {
                write!(f, "diverged: {last_violation}")
            }
            SeedVerdict::Stalled => write!(f, "stalled"),
        }
    }
}

/// Outcome of one corrupted start.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The seed driving both the channels and the scramble plan.
    pub seed: u64,
    /// How the run ended.
    pub verdict: SeedVerdict,
    /// Order-sensitive digest of the whole run — replayable from the seed.
    pub fingerprint: u64,
    /// Events in the corrupted prefix (the convergence bound used).
    pub corruption_events: usize,
    /// Scheduler steps spent on the workload phase (at the stall point for
    /// stalled runs; settle-phase pumping is not counted).
    pub steps: u64,
}

/// Aggregate of a [`certify`] sweep.
#[derive(Debug, Clone)]
pub struct StabilizeReport {
    /// Corrupted starts examined.
    pub seeds: u64,
    /// Starts that converged.
    pub converged: u64,
    /// Starts whose damage persisted past the bound.
    pub diverged: u64,
    /// Starts that never finished the workload.
    pub stalled: u64,
    /// Largest stabilization cut over the converged starts.
    pub max_stabilized_at: usize,
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<SeedOutcome>,
}

impl StabilizeReport {
    /// Whether every corrupted start converged.
    pub fn certified(&self) -> bool {
        self.diverged == 0 && self.stalled == 0
    }

    /// The first non-converged outcome, if any — the counterexample to
    /// self-stabilization.
    pub fn first_failure(&self) -> Option<&SeedOutcome> {
        self.outcomes.iter().find(|o| !o.verdict.converged())
    }

    /// Converts the report into the workspace error contract: `Ok` when
    /// certified, [`NonFifoError::ConvergenceFailed`] (exit 5) otherwise.
    pub fn to_result(&self) -> Result<(), NonFifoError> {
        if self.certified() {
            Ok(())
        } else {
            Err(NonFifoError::ConvergenceFailed {
                diverged: self.diverged,
                stalled: self.stalled,
                seeds: self.seeds,
            })
        }
    }
}

impl fmt::Display for StabilizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} converged, {} diverged, {} stalled (max stabilization cut {})",
            self.converged, self.seeds, self.diverged, self.stalled, self.max_stabilized_at
        )
    }
}

/// Runs one corrupted start: scramble, settle, deliver the workload with
/// payloads on, settle again until every real payload has landed, then
/// judge the retained execution.
///
/// The scramble plan is seeded by `seed` itself (the channels get `seed`
/// and `seed + 1` as usual), so the whole run — corruption included — is a
/// pure function of `(protocol, config, seed)` and the returned
/// fingerprint replays.
pub fn stabilize_run(proto: impl DataLink, seed: u64, cfg: &StabilizeConfig) -> SeedOutcome {
    let mut sim = corrupted_simulation(proto, seed, cfg);
    drive_corrupted(&mut sim, seed, cfg)
}

/// Builds — but does not drive — the corrupted simulation for
/// `(protocol, seed, config)`. Callers that need to instrument the run
/// (the campaign runner attaches a telemetry registry here) can interpose
/// between this and [`drive_corrupted`]; [`stabilize_run`] is exactly the
/// two composed.
pub fn corrupted_simulation(proto: impl DataLink, seed: u64, cfg: &StabilizeConfig) -> Simulation {
    let mut builder = Simulation::builder(proto)
        .channel(cfg.discipline.clone())
        .seed(seed)
        .initial_corruption(cfg.severity, seed);
    if let Some(plan) = &cfg.fault_plan {
        builder = builder.fault_plan(plan.clone());
    }
    builder.build()
}

/// Drives a simulation built by [`corrupted_simulation`] to its verdict:
/// settle, deliver the workload with payloads on, settle again until every
/// real payload has landed, judge the retained execution.
pub fn drive_corrupted(sim: &mut Simulation, seed: u64, cfg: &StabilizeConfig) -> SeedOutcome {
    // Flush the poison. Everything recorded up to here — junk preloads,
    // phantom deliveries, acknowledgement exchanges — is the corrupted
    // prefix a stabilizing protocol is allowed to burn.
    sim.settle(cfg.settle_steps);
    let bound = sim
        .execution()
        .expect("initial_corruption retains the execution")
        .len();

    let sim_cfg = SimConfig {
        payloads: true,
        max_steps_per_message: cfg.max_steps_per_message,
        ..SimConfig::default()
    };
    let mut steps = 0;
    let verdict = match sim.deliver(cfg.messages, &sim_cfg) {
        Err(SimError::Stalled { diagnostic, .. }) => {
            steps = diagnostic.at_step;
            SeedVerdict::Stalled
        }
        Err(SimError::Violation(v)) => SeedVerdict::Diverged { last_violation: v },
        Ok(stats) => {
            steps = stats.steps;
            // `deliver` counts *any* message delivery toward its target, so
            // a late phantom can end a round before the real message lands.
            // Settle until every real payload (0..messages) is accounted
            // for; payloads are collision-free by construction (junk
            // payloads live at or above 2^40).
            let mut spent = 0u64;
            let budget = cfg.settle_steps.saturating_mul(8);
            while !workload_complete(sim, cfg.messages) && spent < budget {
                sim.settle(64);
                spent += 64;
            }
            if !workload_complete(sim, cfg.messages) {
                SeedVerdict::Stalled
            } else {
                let exec = sim.execution().expect("retained");
                match ConvergenceSpec::new(bound).check(exec) {
                    Convergence::Converged { stabilized_at } => {
                        SeedVerdict::Converged { stabilized_at }
                    }
                    Convergence::Diverged { last_violation } => {
                        SeedVerdict::Diverged { last_violation }
                    }
                }
            }
        }
    };
    SeedOutcome {
        seed,
        verdict,
        fingerprint: sim.execution_fingerprint(),
        corruption_events: bound,
        steps,
    }
}

fn workload_complete(sim: &Simulation, messages: u64) -> bool {
    let delivered = sim.delivered_payloads();
    (0..messages).all(|m| delivered.contains(&m))
}

/// Certifies a protocol over `seeds` distinct corrupted starts
/// (seeds `0..seeds`). `make` is called once per seed — pass a catalog
/// factory closure like `|| nonfifo_protocols::catalog::by_name("stabilizing-dl").unwrap()`.
pub fn certify<P, F>(make: F, seeds: u64, cfg: &StabilizeConfig) -> StabilizeReport
where
    P: DataLink,
    F: Fn() -> P,
{
    let mut report = StabilizeReport {
        seeds,
        converged: 0,
        diverged: 0,
        stalled: 0,
        max_stabilized_at: 0,
        outcomes: Vec::with_capacity(seeds as usize),
    };
    for seed in 0..seeds {
        let outcome = stabilize_run(make(), seed, cfg);
        match &outcome.verdict {
            SeedVerdict::Converged { stabilized_at } => {
                report.converged += 1;
                report.max_stabilized_at = report.max_stabilized_at.max(*stabilized_at);
            }
            SeedVerdict::Diverged { .. } => report.diverged += 1,
            SeedVerdict::Stalled => report.stalled += 1,
        }
        report.outcomes.push(outcome);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{NaiveCycle, StabilizingDl};

    #[test]
    fn stabilizing_dl_converges_from_corrupted_starts() {
        for severity in CorruptionSeverity::ALL {
            let cfg = StabilizeConfig {
                severity,
                ..StabilizeConfig::default()
            };
            let report = certify(StabilizingDl::new, 24, &cfg);
            assert!(
                report.certified(),
                "{severity}: {report}, first failure {:?}",
                report.first_failure()
            );
            assert!(report.to_result().is_ok());
        }
    }

    #[test]
    fn naive_cycle_is_flagged_as_non_stabilizing() {
        let cfg = StabilizeConfig::default();
        let report = certify(|| NaiveCycle::new(3), 24, &cfg);
        assert!(
            !report.certified(),
            "a FIFO-only cycle protocol must not survive corrupted starts: {report}"
        );
        let err = report.to_result().unwrap_err();
        assert!(matches!(err, NonFifoError::ConvergenceFailed { .. }));
        assert!(report.first_failure().is_some());
    }

    #[test]
    fn corrupted_runs_are_deterministic_per_seed() {
        let cfg = StabilizeConfig::default();
        let a = stabilize_run(StabilizingDl::new(), 7, &cfg);
        let b = stabilize_run(StabilizingDl::new(), 7, &cfg);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.corruption_events, b.corruption_events);
        let c = stabilize_run(StabilizingDl::new(), 8, &cfg);
        assert_ne!(a.fingerprint, c.fingerprint, "a different seed diverges");
    }

    #[test]
    fn corruption_composes_with_chaos_faults() {
        let plan = FaultPlan::parse("dup 0.1\ndrop 0.05").unwrap();
        let cfg = StabilizeConfig {
            fault_plan: Some(plan),
            ..StabilizeConfig::default()
        };
        let report = certify(StabilizingDl::new, 12, &cfg);
        assert!(
            report.certified(),
            "chaos faults on top of corruption: {report}, first failure {:?}",
            report.first_failure()
        );
    }

    #[test]
    fn stabilization_cut_stays_within_the_corrupted_prefix() {
        let cfg = StabilizeConfig::default();
        for seed in 0..8 {
            let outcome = stabilize_run(StabilizingDl::new(), seed, &cfg);
            if let SeedVerdict::Converged { stabilized_at } = outcome.verdict {
                assert!(
                    stabilized_at <= outcome.corruption_events,
                    "cut {stabilized_at} escaped the {}-event prefix",
                    outcome.corruption_events
                );
            } else {
                panic!("seed {seed} did not converge: {}", outcome.verdict);
            }
        }
    }
}
