//! End-to-end tests of the campaign service over real processes: the
//! daemon spawning `nonfifo worker` subprocesses per shard, the worker
//! subcommand speaking the wire protocol over its pipes, crash-retry, and
//! the full HTTP daemon driven exactly the way the CI serve-smoke job
//! drives it. The invariant under test everywhere: the served report is
//! byte-identical to single-process `nonfifo campaign` output.

use nonfifo_campaign::{
    CampaignPlan, CampaignRunner, CampaignService, PlanExpansion, ServiceConfig, ShardRecord,
    WireMsg,
};
use nonfifo_telemetry::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_nonfifo");

const PLAN: &str = "\
schema_version 1
scenario pipes
protocols abp seqnum
disciplines fifo prob:0.3
messages 6
seeds 0..3
";

fn batch_baseline() -> (String, String) {
    let plan = CampaignPlan::parse(PLAN).unwrap();
    let report = CampaignRunner::new(1).run(&plan.expand()).unwrap();
    (report.render(), report.aggregate_metrics().to_json())
}

fn total_runs() -> usize {
    CampaignPlan::parse(PLAN).unwrap().expand().len()
}

fn worker_service(extra: &[&str]) -> CampaignService {
    let mut worker_command = vec![BIN.to_string(), "worker".to_string()];
    worker_command.extend(extra.iter().map(|s| s.to_string()));
    CampaignService::new(ServiceConfig {
        workers: 0,
        worker_command,
        cache_path: None,
    })
    .unwrap()
}

#[test]
fn worker_processes_reproduce_batch_reports_at_1_2_4() {
    let (render, aggregate) = batch_baseline();
    for workers in [1usize, 2, 4] {
        let service = worker_service(&[]);
        let streamed = Mutex::new(0usize);
        let mut sink = |msg: &WireMsg| {
            if matches!(msg, WireMsg::Run { .. }) {
                *streamed.lock().unwrap() += 1;
            }
        };
        let report = service.run_campaign(PLAN, workers, &mut sink).unwrap();
        assert_eq!(
            streamed.into_inner().unwrap(),
            total_runs(),
            "{workers} workers: every run streamed"
        );
        let WireMsg::Report {
            render: r,
            aggregate: a,
            ..
        } = report
        else {
            panic!("expected report");
        };
        assert_eq!(r, render, "{workers} worker processes");
        assert_eq!(a.to_json(), aggregate, "{workers} worker processes");
        let snap = service.registry().snapshot();
        assert_eq!(snap.counters["service.retried_runs"], 0);
        assert_eq!(
            snap.gauges["service.active_workers"].high_water,
            workers.min(total_runs()) as u64
        );
    }
}

#[test]
fn killed_workers_are_retried_to_a_byte_identical_report() {
    let (render, aggregate) = batch_baseline();
    // Every worker dies (exit 9) after streaming two results, so most of
    // the campaign arrives through the daemon's in-process retry path.
    let service = worker_service(&["--die-after", "2"]);
    let mut sink = |_: &WireMsg| {};
    let report = service.run_campaign(PLAN, 3, &mut sink).unwrap();
    let WireMsg::Report {
        render: r,
        aggregate: a,
        ..
    } = report
    else {
        panic!("expected report");
    };
    assert_eq!(r, render, "report survives worker crashes unchanged");
    assert_eq!(a.to_json(), aggregate);
    let retried = service.registry().snapshot().counters["service.retried_runs"];
    assert_eq!(
        retried as usize,
        total_runs() - 3 * 2,
        "every run the three dying workers dropped was retried"
    );
}

#[test]
fn worker_subcommand_speaks_the_wire_protocol_over_its_pipes() {
    let plan = CampaignPlan::parse(PLAN).unwrap();
    let expansion = PlanExpansion::of_plan(&plan).unwrap();
    let shard = &expansion.shard_all(2)[1];

    let mut child = Command::new(BIN)
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(WireMsg::shard_assignment(PLAN, shard).to_line().as_bytes())
        .unwrap();
    let mut output = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut output)
        .unwrap();
    assert!(child.wait().unwrap().success());

    let records: Vec<ShardRecord> = output
        .lines()
        .map(|l| {
            WireMsg::parse_line(l)
                .unwrap()
                .into_shard_record()
                .expect("workers emit only Run lines")
        })
        .collect();
    assert_eq!(records, shard.execute(&expansion, |_| {}).records);
}

#[test]
fn worker_subcommand_rejects_garbage_with_an_error_line_and_exit_1() {
    let mut child = Command::new(BIN)
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"this is not a wire message\n")
        .unwrap();
    let mut output = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut output)
        .unwrap();
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(1), "usage errors exit 1");
    assert!(
        matches!(
            WireMsg::parse_line(output.lines().next().unwrap()).unwrap(),
            WireMsg::Error { .. }
        ),
        "parent-visible error line: {output:?}"
    );
}

/// One raw HTTP/1.1 request; returns (head, body). The server closes the
/// connection after each response, so reading to EOF collects everything —
/// including a full NDJSON campaign stream.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    (head.to_string(), body.to_string())
}

#[test]
fn http_daemon_serves_campaigns_byte_identical_to_batch() {
    let (render, aggregate) = batch_baseline();
    let mut daemon = Command::new(BIN)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Scrape the bound address from the banner line.
    let mut stdout = daemon.stdout.take().unwrap();
    let addr = {
        let mut banner = Vec::new();
        let mut byte = [0u8; 1];
        while !banner.ends_with(b"/\n") {
            assert_eq!(stdout.read(&mut byte).unwrap(), 1, "daemon died at startup");
            banner.push(byte[0]);
        }
        let banner = String::from_utf8(banner).unwrap();
        banner
            .trim()
            .strip_prefix("serving on http://")
            .and_then(|s| s.strip_suffix('/'))
            .expect("banner names the bound address")
            .to_string()
    };

    let (head, body) = http(&addr, "GET", "/healthz", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    // Cold submission: raw plan text, default worker count.
    let (head, body) = http(&addr, "POST", "/campaign", PLAN);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let msgs: Vec<WireMsg> = body
        .lines()
        .map(|l| WireMsg::parse_line(l).unwrap())
        .collect();
    let WireMsg::Report {
        render: r,
        aggregate: a,
        cache_hits,
    } = msgs.last().unwrap().clone()
    else {
        panic!("stream ends with the report: {body}");
    };
    assert_eq!(r, render, "served == batch");
    assert_eq!(a.to_json(), aggregate);
    assert_eq!(cache_hits, 0);
    let runs = msgs
        .iter()
        .filter(|m| matches!(m, WireMsg::Run { .. }))
        .count();
    assert_eq!(runs, total_runs(), "cold run streams every record");

    // Warm submission via a submit wire message: shared cache replays all.
    let submit = WireMsg::Submit {
        plan: PLAN.to_string(),
        workers: 4,
    }
    .to_line();
    let (head, body) = http(&addr, "POST", "/campaign", &submit);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let WireMsg::Report {
        render: warm_render,
        cache_hits: warm_hits,
        ..
    } = WireMsg::parse_line(body.lines().last().unwrap()).unwrap()
    else {
        panic!("warm stream ends with the report");
    };
    assert_eq!(warm_render, render, "warm replay byte-identical");
    assert_eq!(warm_hits as usize, total_runs());

    // Malformed plans are a 400 with a line-numbered error, pre-stream.
    let (head, body) = http(&addr, "POST", "/campaign", "scenario x\nwarble 1\n");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    let WireMsg::Error { message } = WireMsg::parse_line(body.trim()).unwrap() else {
        panic!("400 body is an error message: {body}");
    };
    assert!(message.contains("line 2"), "{message}");

    // Service metrics are exported over HTTP.
    let (head, body) = http(&addr, "GET", "/metrics", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let snapshot = Json::parse(body.trim()).unwrap();
    assert_eq!(
        snapshot
            .get("counters")
            .and_then(|c| c.get("service.campaigns_total"))
            .and_then(Json::as_u64),
        Some(2)
    );
    assert!(
        snapshot
            .get("gauges")
            .and_then(|g| g.get("service.active_workers"))
            .and_then(|g| g.get("high_water"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );
    assert!(
        snapshot
            .get("values")
            .and_then(|v| v.get("campaign.runs_per_sec"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );

    let (head, _) = http(&addr, "POST", "/shutdown", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            assert!(status.success(), "daemon exits cleanly on /shutdown");
            break;
        }
        assert!(Instant::now() < deadline, "daemon ignored /shutdown");
        std::thread::sleep(Duration::from_millis(50));
    }
}
