//! Name-based registries for protocols and channel substrates.
//!
//! Protocol resolution lives in [`nonfifo_protocols::catalog`] and channel
//! construction behind [`nonfifo_channel::Discipline`]; this module only
//! adapts CLI option spellings (`--loss`, `--q`, `--bound`, `--spread`) to
//! those factories and keeps the one substrate outside the discipline
//! family (the multipath virtual link).

use crate::args::{Args, ArgsError, CommonOpts};
use nonfifo_channel::{BoxedChannel, Discipline, FaultPlan};
use nonfifo_core::Simulation;
use nonfifo_ioa::Dir;
use nonfifo_protocols::{catalog, DataLink};
use nonfifo_transport::VirtualLinkBuilder;

/// Protocol names accepted by the CLI.
pub const PROTOCOLS: &[(&str, &str)] = catalog::PROTOCOLS;

/// Channel substrate names accepted by the CLI.
pub const CHANNELS: &[(&str, &str)] = &[
    ("fifo", "reliable FIFO (control substrate)"),
    ("lossy", "FIFO with loss (--loss, default 0.3)"),
    (
        "probabilistic",
        "PL2p: delayed with probability --q (default 0.3)",
    ),
    ("reorder", "bounded reorder distance (--bound, default 4)"),
    ("multipath", "two-route virtual link (--spread, default 8)"),
];

/// Builds a protocol factory from its CLI name.
///
/// # Errors
///
/// Fails on unknown names or out-of-range parameters.
pub fn protocol(name: &str) -> Result<Box<dyn DataLink>, ArgsError> {
    catalog::by_name(name).map_err(|e| ArgsError(e.to_string()))
}

/// Resolves a CLI channel name plus options to a [`Discipline`], or `None`
/// for the one substrate outside the discipline family (`multipath`).
fn discipline(name: &str, args: &Args, opts: &CommonOpts) -> Result<Option<Discipline>, ArgsError> {
    let d = match name {
        "fifo" => Discipline::Fifo,
        "lossy" => Discipline::LossyFifo {
            loss: args.option_or("loss", 0.3)?,
        },
        "probabilistic" => Discipline::Probabilistic { q: opts.q },
        "reorder" => Discipline::BoundedReorder { bound: opts.bound },
        "multipath" => return Ok(None),
        other => {
            return Err(ArgsError(format!(
                "unknown channel {other:?} (try: fifo, lossy, probabilistic, reorder, multipath)"
            )))
        }
    };
    d.validate()
        .map_err(|e| ArgsError(format!("--loss: {e}")))?;
    Ok(Some(d))
}

fn multipath_pair(args: &Args, seed: u64) -> Result<(BoxedChannel, BoxedChannel), ArgsError> {
    let spread: u64 = args.option_or("spread", 8)?;
    Ok((
        Box::new(
            VirtualLinkBuilder::new(Dir::Forward)
                .route(0)
                .route(spread)
                .seed(seed)
                .build(),
        ),
        Box::new(
            VirtualLinkBuilder::new(Dir::Backward)
                .route(0)
                .route(spread)
                .seed(seed.wrapping_add(1))
                .build(),
        ),
    ))
}

/// Builds a [`Simulation`] from CLI names and options.
///
/// # Errors
///
/// Fails on unknown names or bad option values.
pub fn simulation(
    proto_name: &str,
    channel_name: &str,
    args: &Args,
    opts: &CommonOpts,
) -> Result<Simulation, ArgsError> {
    let proto = protocol(proto_name)?;
    match discipline(channel_name, args, opts)? {
        Some(d) => Ok(Simulation::builder(proto)
            .channel(d)
            .seed(opts.seed)
            .build()),
        None => {
            let (fwd, bwd) = multipath_pair(args, opts.seed)?;
            Ok(Simulation::with_channels(proto, fwd, bwd))
        }
    }
}

/// Builds a chaos [`Simulation`]: FIFO channels wrapped in the seeded
/// fault-injection decorator in both directions.
///
/// # Errors
///
/// Fails on unknown protocol names.
pub fn chaos_simulation(
    proto_name: &str,
    plan: &FaultPlan,
    seed: u64,
) -> Result<Simulation, ArgsError> {
    let proto = protocol(proto_name)?;
    Ok(Simulation::builder(proto)
        .fault_plan(plan.clone())
        .seed(seed)
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_resolve() {
        for name in [
            "abp",
            "cycle3",
            "seqnum",
            "window4",
            "gbn2",
            "srej4",
            "outnumber5",
            "afek3",
        ] {
            assert!(protocol(name).is_ok(), "{name}");
        }
        assert!(protocol("cycle1").is_err());
        assert!(protocol("afek2").is_err());
        assert!(protocol("nope").is_err());
    }

    #[test]
    fn channel_names_resolve() {
        let args = Args::parse(Vec::<String>::new(), &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        for name in ["fifo", "lossy", "probabilistic", "reorder"] {
            assert!(discipline(name, &args, &opts).unwrap().is_some(), "{name}");
        }
        assert!(discipline("multipath", &args, &opts).unwrap().is_none());
        assert!(discipline("carrier-pigeon", &args, &opts).is_err());
    }

    #[test]
    fn bad_channel_options_error_instead_of_panicking() {
        // `--q` and `--bound` are range-checked by `CommonOpts`; `--loss`
        // stays channel-specific and is checked here.
        let args = Args::parse(["--loss", "2.0"], &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        let err = discipline("lossy", &args, &opts).unwrap_err();
        assert!(err.0.contains("loss"), "{err:?}");
    }

    #[test]
    fn simulation_builds_and_runs() {
        let args = Args::parse(["--q", "0.2", "--seed", "5"], &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        let mut sim = simulation("seqnum", "probabilistic", &args, &opts).unwrap();
        let stats = sim
            .deliver(20, &nonfifo_core::SimConfig::default())
            .unwrap();
        assert_eq!(stats.messages_delivered, 20);
    }

    #[test]
    fn multipath_still_builds() {
        let args = Args::parse(["--spread", "6"], &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        let mut sim = simulation("seqnum", "multipath", &args, &opts).unwrap();
        let stats = sim
            .deliver(10, &nonfifo_core::SimConfig::default())
            .unwrap();
        assert_eq!(stats.messages_delivered, 10);
    }
}
