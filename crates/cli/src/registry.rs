//! Name-based registries for protocols and channel substrates.

use crate::args::{Args, ArgsError, CommonOpts};
use nonfifo_channel::{BoxedChannel, FaultPlan};
use nonfifo_core::Simulation;
use nonfifo_ioa::Dir;
use nonfifo_protocols::{
    AfekFlush, AlternatingBit, DataLink, GoBackN, NaiveCycle, Outnumber, SelectiveReject,
    SequenceNumber, SlidingWindow,
};
use nonfifo_transport::VirtualLinkBuilder;

/// Protocol names accepted by the CLI.
pub const PROTOCOLS: &[(&str, &str)] = &[
    ("abp", "alternating bit [BSW69]: 2 headers, lossy-FIFO only"),
    ("cycle<k>", "naive k-label cycle (e.g. cycle3): FIFO only"),
    ("seqnum", "sequence numbers: n headers, safe everywhere"),
    (
        "window<w>",
        "selective-repeat sliding window (e.g. window4): 2w headers",
    ),
    (
        "gbn<w>",
        "go-back-n (e.g. gbn4): w+1 headers, cumulative acks",
    ),
    ("srej<w>", "selective reject (e.g. srej4): NAK-driven ARQ"),
    (
        "outnumber<L>",
        "AFWZ'88 reconstruction (e.g. outnumber5): exponential",
    ),
    (
        "afek<k>",
        "Afek'88 reconstruction (e.g. afek3): oracle-assisted, linear in transit",
    ),
];

/// Channel substrate names accepted by the CLI.
pub const CHANNELS: &[(&str, &str)] = &[
    ("fifo", "reliable FIFO (control substrate)"),
    ("lossy", "FIFO with loss (--loss, default 0.3)"),
    (
        "probabilistic",
        "PL2p: delayed with probability --q (default 0.3)",
    ),
    ("reorder", "bounded reorder distance (--bound, default 4)"),
    ("multipath", "two-route virtual link (--spread, default 8)"),
];

fn parse_suffix(name: &str, prefix: &str) -> Option<u32> {
    name.strip_prefix(prefix).and_then(|s| s.parse().ok())
}

/// Rejects out-of-range probabilities before they reach a channel
/// constructor, which would panic on them.
fn probability(option: &str, p: f64) -> Result<f64, ArgsError> {
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(ArgsError(format!("--{option} must be in [0, 1], got {p}")))
    }
}

/// Builds a protocol factory from its CLI name.
///
/// # Errors
///
/// Fails on unknown names or out-of-range parameters.
pub fn protocol(name: &str) -> Result<Box<dyn DataLink>, ArgsError> {
    if name == "abp" {
        return Ok(Box::new(AlternatingBit::new()));
    }
    if name == "seqnum" {
        return Ok(Box::new(SequenceNumber::new()));
    }
    if let Some(k) = parse_suffix(name, "cycle") {
        if k >= 2 {
            return Ok(Box::new(NaiveCycle::new(k)));
        }
    }
    if let Some(w) = parse_suffix(name, "window") {
        if w >= 1 {
            return Ok(Box::new(SlidingWindow::new(w)));
        }
    }
    if let Some(w) = parse_suffix(name, "gbn") {
        if w >= 1 {
            return Ok(Box::new(GoBackN::new(w)));
        }
    }
    if let Some(w) = parse_suffix(name, "srej") {
        if w >= 1 {
            return Ok(Box::new(SelectiveReject::new(w)));
        }
    }
    if let Some(l) = parse_suffix(name, "outnumber") {
        if l >= 3 {
            return Ok(Box::new(Outnumber::new(l)));
        }
    }
    if let Some(k) = parse_suffix(name, "afek") {
        if k >= 3 {
            return Ok(Box::new(AfekFlush::with_labels(k)));
        }
    }
    Err(ArgsError(format!(
        "unknown protocol {name:?} (try: abp, cycle3, seqnum, window4, gbn4, outnumber5, afek3)"
    )))
}

fn channel_pair(
    name: &str,
    args: &Args,
    opts: &CommonOpts,
) -> Result<(BoxedChannel, BoxedChannel), ArgsError> {
    use nonfifo_channel::{
        BoundedReorderChannel, FifoChannel, LossyFifoChannel, ProbabilisticChannel,
    };
    let seed = opts.seed;
    let pair: (BoxedChannel, BoxedChannel) = match name {
        "fifo" => (
            Box::new(FifoChannel::new(Dir::Forward)),
            Box::new(FifoChannel::new(Dir::Backward)),
        ),
        "lossy" => {
            let loss = probability("loss", args.option_or("loss", 0.3)?)?;
            (
                Box::new(LossyFifoChannel::new(Dir::Forward, loss, seed)),
                Box::new(LossyFifoChannel::new(
                    Dir::Backward,
                    loss,
                    seed.wrapping_add(1),
                )),
            )
        }
        "probabilistic" => (
            Box::new(ProbabilisticChannel::new(Dir::Forward, opts.q, seed)),
            Box::new(ProbabilisticChannel::new(
                Dir::Backward,
                opts.q,
                seed.wrapping_add(1),
            )),
        ),
        "reorder" => (
            Box::new(BoundedReorderChannel::new(Dir::Forward, opts.bound, seed)),
            Box::new(BoundedReorderChannel::new(
                Dir::Backward,
                opts.bound,
                seed.wrapping_add(1),
            )),
        ),
        "multipath" => {
            let spread: u64 = args.option_or("spread", 8)?;
            (
                Box::new(
                    VirtualLinkBuilder::new(Dir::Forward)
                        .route(0)
                        .route(spread)
                        .seed(seed)
                        .build(),
                ),
                Box::new(
                    VirtualLinkBuilder::new(Dir::Backward)
                        .route(0)
                        .route(spread)
                        .seed(seed.wrapping_add(1))
                        .build(),
                ),
            )
        }
        other => {
            return Err(ArgsError(format!(
                "unknown channel {other:?} (try: fifo, lossy, probabilistic, reorder, multipath)"
            )))
        }
    };
    Ok(pair)
}

/// Adapter: a boxed factory usable where `impl DataLink` is required.
struct Boxed(Box<dyn DataLink>);

impl std::fmt::Debug for Boxed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl DataLink for Boxed {
    fn name(&self) -> String {
        self.0.name()
    }
    fn forward_headers(&self) -> nonfifo_protocols::HeaderBound {
        self.0.forward_headers()
    }
    fn make(
        &self,
    ) -> (
        nonfifo_protocols::BoxedTransmitter,
        nonfifo_protocols::BoxedReceiver,
    ) {
        self.0.make()
    }
    fn uses_ghosts(&self) -> bool {
        self.0.uses_ghosts()
    }
}

/// Builds a [`Simulation`] from CLI names and options.
///
/// # Errors
///
/// Fails on unknown names or bad option values.
pub fn simulation(
    proto_name: &str,
    channel_name: &str,
    args: &Args,
    opts: &CommonOpts,
) -> Result<Simulation, ArgsError> {
    let proto = protocol(proto_name)?;
    let (fwd, bwd) = channel_pair(channel_name, args, opts)?;
    Ok(Simulation::with_channels(Boxed(proto), fwd, bwd))
}

/// Builds a chaos [`Simulation`]: FIFO channels wrapped in the seeded
/// fault-injection decorator in both directions.
///
/// # Errors
///
/// Fails on unknown protocol names.
pub fn chaos_simulation(
    proto_name: &str,
    plan: &FaultPlan,
    seed: u64,
) -> Result<Simulation, ArgsError> {
    let proto = protocol(proto_name)?;
    Ok(Simulation::chaos(Boxed(proto), plan, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_resolve() {
        for name in [
            "abp",
            "cycle3",
            "seqnum",
            "window4",
            "gbn2",
            "srej4",
            "outnumber5",
            "afek3",
        ] {
            assert!(protocol(name).is_ok(), "{name}");
        }
        assert!(protocol("cycle1").is_err());
        assert!(protocol("afek2").is_err());
        assert!(protocol("nope").is_err());
    }

    #[test]
    fn channel_names_resolve() {
        let args = Args::parse(Vec::<String>::new(), &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        for name in ["fifo", "lossy", "probabilistic", "reorder", "multipath"] {
            assert!(channel_pair(name, &args, &opts).is_ok(), "{name}");
        }
        assert!(channel_pair("carrier-pigeon", &args, &opts).is_err());
    }

    #[test]
    fn bad_channel_options_error_instead_of_panicking() {
        // `--q` and `--bound` are range-checked by `CommonOpts`; `--loss`
        // stays channel-specific and is checked here.
        let args = Args::parse(["--loss", "2.0"], &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        let err = channel_pair("lossy", &args, &opts).unwrap_err();
        assert!(err.0.contains("loss"), "{err:?}");
    }

    #[test]
    fn simulation_builds_and_runs() {
        let args = Args::parse(["--q", "0.2", "--seed", "5"], &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        let mut sim = simulation("seqnum", "probabilistic", &args, &opts).unwrap();
        let stats = sim
            .deliver(20, &nonfifo_core::SimConfig::default())
            .unwrap();
        assert_eq!(stats.messages_delivered, 20);
    }
}
