//! `nonfifo` — the command-line face of the reproduction.
//!
//! ```text
//! nonfifo simulate <protocol> <channel> [--messages N] [--seed S] [--q Q]
//!                  [--loss L] [--bound B] [--spread D] [--payloads]
//!                  [--metrics] [--metrics-out FILE] [--trace-out FILE]
//! nonfifo chaos    <protocol> --plan FILE [--seed S] [--messages N]
//!                  [--crash-tx S] [--crash-rx S] [--retry] [--dump FILE]
//!                  [--metrics] [--metrics-out FILE] [--trace-out FILE]
//! nonfifo attack   <protocol> [mf|pf|greedy] [--messages N] [--dump FILE]
//! nonfifo explore  <protocol> [--messages N] [--depth D] [--pool P]
//!                  [--max-states M] [--discipline nonfifo|reorder<b>|lossy]
//!                  [--parallel] [--threads N] [--por] [--differential]
//!                  [--visited ram|tiered|probabilistic]
//!                  [--memory-budget BYTES] [--compact-runs N]
//!                  [--no-shrink] [--metrics]
//!                  [--metrics-out FILE] [--trace-out FILE]
//! nonfifo campaign <plan-file> [--threads N] [--cache FILE]
//!                  [--metrics-out FILE]
//! nonfifo serve    [--addr HOST:PORT] [--workers N] [--cache FILE]
//!                  [--in-process]
//! nonfifo worker   [--die-after N]
//! nonfifo schedule <protocol> <attack-file> [--diagram]
//! nonfifo recheck  <trace-file> [--diagram]
//! nonfifo report   [--exp eN]
//! nonfifo list
//! ```
//!
//! Outcome-bearing subcommands (`explore`, `simulate`, `chaos`, `campaign`)
//! share one exit-code contract, applied in exactly one place
//! ([`exit_code`]) over the workspace-wide [`NonFifoError`]: 0 = clean run /
//! exhaustive certificate, 2 = counterexample or specification violation,
//! 3 = stall or exhausted state budget (inconclusive), 4 = differential
//! mismatch between engines, 1 = operational error (bad usage, I/O, parse).
//!
//! Telemetry flags are shared by `simulate`, `chaos`, and `explore`:
//! `--metrics` prints a human summary, `--metrics-out FILE` writes the
//! schema-versioned metrics JSON, and `--trace-out FILE` writes a Chrome
//! `trace_events` document. Telemetry never changes a run's outcome.

mod args;
mod registry;

use args::{Args, ArgsError, CommonOpts};
use nonfifo_adversary::{
    explore, shrink, Discipline, ExploreConfig, ExploreOutcome, Explorer, FalsifyOutcome,
    GreedyReplayAdversary, MfConfig, MfFalsifier, ParallelExplorer, PfConfig, PfFalsifier,
    VisitedSpec,
};
use nonfifo_core::{CrashEvent, CrashMode, NonFifoError, SimConfig, SimError, Station};
use nonfifo_telemetry::{Registry, TraceSink};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
nonfifo — executable reproduction of Mansour & Schieber (PODC 1989)

usage:
  nonfifo simulate <protocol> <channel> [--messages N] [--seed S] [--q Q]
                   [--loss L] [--bound B] [--spread D] [--payloads]
                   [--metrics] [--metrics-out FILE] [--trace-out FILE]
  nonfifo chaos    <protocol> --plan FILE [--seed S] [--messages N]
                   [--crash-tx S] [--crash-rx S] [--restore] [--retry]
                   [--backoff B] [--budget B] [--faults] [--dump FILE]
                   [--metrics] [--metrics-out FILE] [--trace-out FILE]
  nonfifo attack   <protocol> [mf|pf|greedy] [--messages N] [--dump FILE]
  nonfifo explore  <protocol> [--messages N] [--depth D] [--pool P]
                   [--max-states M] [--discipline nonfifo|reorder<b>|lossy]
                   [--parallel] [--threads N] [--por] [--differential]
                   [--visited ram|tiered|probabilistic]
                   [--memory-budget BYTES] [--compact-runs N]
                   [--no-shrink] [--metrics]
                   [--metrics-out FILE] [--trace-out FILE]
  nonfifo campaign <plan-file> [--threads N] [--cache FILE]
                   [--metrics-out FILE]
  nonfifo serve    [--addr HOST:PORT] [--workers N] [--cache FILE]
                   [--in-process]
  nonfifo worker   [--die-after N]
  nonfifo stabilize --protocol P [--seeds N] [--severity light|medium|heavy]
                   [--discipline D] [--messages M] [--budget B] [--plan FILE]
  nonfifo schedule <protocol> <attack-file> [--diagram]
  nonfifo recheck  <trace-file> [--diagram]
  nonfifo report   [--exp e1..e11,e13,e14,e15,e16]
  nonfifo list

explore exit codes: 0 certificate, 2 counterexample, 3 inconclusive
(state budget), 4 differential mismatch. stabilize exits 5 when the
protocol fails to converge from a corrupted start within the bound.

explore --por enables partial-order reduction (sleep-set deferral of
inert deliveries; effective under the nonfifo discipline): same
verdicts, far fewer states per scope. With --differential the reduced
run is checked against the full explorer (outcome kind, counterexample
depth, shrunk attack script) instead of the byte-report comparison the
flag performs between the sequential and parallel engines otherwise.

explore --visited picks the visited-set tier: ram (exact, in-RAM — the
default), tiered (exact, spills sorted disk runs when the resident
estimate exceeds --memory-budget bytes; reports stay byte-identical to
ram at any budget), or probabilistic (a fixed-footprint Bloom filter of
--memory-budget bytes; certificates are annotated with the bounded
false-dedup rate, exit codes unchanged). --memory-budget defaults to
1 GiB (2^30 bytes) and requires a non-ram tier; the effective budget —
default or not — is always printed in the scope banner. --compact-runs
(tiered only, default 8) sets how many spilled runs may accumulate
before a background streaming merge compacts them into one: lower
values probe fewer runs per level, higher values compact less often.
Reports are byte-identical at any setting.

telemetry: --metrics prints a summary table; --metrics-out writes the
schema-versioned metrics JSON; --trace-out writes a Chrome trace_events
JSON (load in chrome://tracing or Perfetto).

serve runs the campaign daemon: POST a plan (or a submit wire message)
to /campaign and read the NDJSON result stream; GET /metrics for the
service registry; POST /shutdown to exit. Each campaign shards across
`nonfifo worker` processes (--in-process uses threads instead); reports
are byte-identical to `nonfifo campaign` at any worker count. worker is
the internal per-shard subprocess; --die-after N is a crash-testing
hook that kills it after N streamed results.
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let code = exit_code(&e);
            if code == 1 {
                // Operational failure: the run never happened, so explain.
                eprintln!("error: {e}");
                eprintln!("\n{USAGE}");
            }
            // Outcome codes (2/3/4): the subcommand already reported the
            // finding in full; the code is the machine-readable verdict.
            ExitCode::from(code)
        }
    }
}

fn dispatch(raw: Vec<String>) -> Result<(), NonFifoError> {
    let args = Args::parse(
        raw,
        &[
            "payloads",
            "diagram",
            "restore",
            "retry",
            "faults",
            "parallel",
            "differential",
            "no-shrink",
            "por",
            "metrics",
            "in-process",
        ],
    )?;
    match args.positional(0) {
        Some("simulate") => cmd_simulate(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("attack") => Ok(cmd_attack(&args)?),
        Some("explore") => cmd_explore(&args),
        Some("campaign") => cmd_campaign(&args),
        Some("serve") => cmd_serve(&args),
        Some("worker") => cmd_worker(&args),
        Some("stabilize") => cmd_stabilize(&args),
        Some("schedule") => Ok(cmd_schedule(&args)?),
        Some("recheck") => Ok(cmd_recheck(&args)?),
        Some("report") => Ok(cmd_report(&args)?),
        Some("list") => {
            cmd_list();
            Ok(())
        }
        _ => Err(NonFifoError::Usage("missing or unknown subcommand".into())),
    }
}

/// The one exit-code mapping. Scripts branch on these, so a truncated
/// search must stay distinguishable from a certificate and a violation
/// from an operational failure.
fn exit_code(err: &NonFifoError) -> u8 {
    match err {
        NonFifoError::Usage(_) | NonFifoError::Io { .. } | NonFifoError::Plan(_) => 1,
        NonFifoError::Sim(SimError::Violation(_)) | NonFifoError::Counterexample { .. } => 2,
        NonFifoError::CampaignFailed { violations, .. } if *violations > 0 => 2,
        NonFifoError::Sim(SimError::Stalled { .. })
        | NonFifoError::Truncated { .. }
        | NonFifoError::CampaignFailed { .. } => 3,
        NonFifoError::DifferentialMismatch => 4,
        // Failing to *recover* is its own verdict: a clean-start
        // misbehavior earns 2, but a protocol that never converges from a
        // corrupted start earns 5 so scripts can tell the two apart.
        NonFifoError::ConvergenceFailed { .. } => 5,
    }
}

/// Builds the telemetry sinks the common options asked for. A registry is
/// created whenever any sink is requested (runs attach metrics and trace
/// through one handle); the trace sink only when `--trace-out` was given.
fn telemetry_sinks(opts: &CommonOpts) -> (Option<Arc<Registry>>, Option<Arc<TraceSink>>) {
    let registry = (opts.wants_metrics() || opts.wants_trace()).then(|| Arc::new(Registry::new()));
    let trace = opts.wants_trace().then(|| Arc::new(TraceSink::new()));
    (registry, trace)
}

/// Prints and/or writes whatever telemetry the run collected, as requested
/// by `--metrics`, `--metrics-out`, and `--trace-out`.
fn export_telemetry(
    opts: &CommonOpts,
    registry: Option<&Arc<Registry>>,
    trace: Option<&Arc<TraceSink>>,
) -> Result<(), ArgsError> {
    if let Some(registry) = registry {
        let snapshot = registry.snapshot();
        if opts.metrics_summary {
            println!("\nmetrics:\n{}", snapshot.summary());
        }
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, snapshot.to_json())
                .map_err(|e| ArgsError(format!("cannot write {path}: {e}")))?;
            println!("metrics written to {path}");
        }
    }
    if let (Some(trace), Some(path)) = (trace, &opts.trace_out) {
        std::fs::write(path, trace.to_chrome_json())
            .map_err(|e| ArgsError(format!("cannot write {path}: {e}")))?;
        println!("trace written to {path}");
    }
    Ok(())
}

fn cmd_list() {
    println!("protocols:");
    for (name, desc) in registry::PROTOCOLS {
        println!("  {name:<14} {desc}");
    }
    println!("\nchannels:");
    for (name, desc) in registry::CHANNELS {
        println!("  {name:<14} {desc}");
    }
}

fn cmd_simulate(args: &Args) -> Result<(), NonFifoError> {
    if args.positional_count() > 3 {
        return Err(ArgsError("simulate takes exactly two positionals".into()).into());
    }
    let proto = args
        .positional(1)
        .ok_or_else(|| ArgsError("simulate needs a protocol".into()))?;
    let channel = args
        .positional(2)
        .ok_or_else(|| ArgsError("simulate needs a channel".into()))?;
    let messages: u64 = args.option_or("messages", 100)?;
    let opts = CommonOpts::from_args(args)?;
    let mut sim = registry::simulation(proto, channel, args, &opts)?;
    let (metrics, trace) = telemetry_sinks(&opts);
    if let Some(registry) = &metrics {
        sim.attach_telemetry(Arc::clone(registry), trace.clone());
    }
    let cfg = SimConfig {
        payloads: args.flag("payloads"),
        ..SimConfig::default()
    };
    match sim.deliver(messages, &cfg) {
        Ok(stats) => {
            println!("{proto} over {channel}:");
            println!("  messages delivered : {}", stats.messages_delivered);
            println!("  forward packets    : {}", stats.packets_sent_forward);
            println!("  backward packets   : {}", stats.packets_sent_backward);
            println!("  distinct headers   : {}", stats.distinct_forward_packets);
            println!("  steps              : {}", stats.steps);
            println!("  peak space (bytes) : {}", stats.peak_space_bytes);
            println!("  in transit at end  : {}", stats.final_in_transit);
            if args.flag("payloads") {
                let expect: Vec<u64> = (0..messages).collect();
                println!(
                    "  payload order      : {}",
                    if stats.delivered_payloads == expect {
                        "intact"
                    } else {
                        "CORRUPT"
                    }
                );
            }
            export_telemetry(&opts, metrics.as_ref(), trace.as_ref())?;
            Ok(())
        }
        Err(e) => {
            println!("run failed: {e}");
            export_telemetry(&opts, metrics.as_ref(), trace.as_ref())?;
            Err(e.into())
        }
    }
}

fn cmd_chaos(args: &Args) -> Result<(), NonFifoError> {
    use nonfifo_channel::FaultPlan;
    let proto_name = args
        .positional(1)
        .ok_or_else(|| ArgsError("chaos needs a protocol".into()))?;
    let plan_path = args
        .option("plan")
        .ok_or_else(|| ArgsError("chaos needs --plan FILE".into()))?;
    let opts = CommonOpts::from_args(args)?;
    let seed = opts.seed;
    let messages: u64 = args.option_or("messages", 100)?;
    let text = std::fs::read_to_string(plan_path).map_err(|e| NonFifoError::io(plan_path, &e))?;
    // A malformed plan is a usage error at load time (exit 1), reported
    // with the file and line so the fix is one glance away — not a
    // mid-run surprise.
    let plan = FaultPlan::parse(&text)
        .map_err(|e| NonFifoError::Usage(format!("{plan_path}:{}: {}", e.line, e.message)))?;

    let mode = if args.flag("restore") {
        CrashMode::Restore
    } else {
        CrashMode::Amnesia
    };
    let mut crash_plan = Vec::new();
    if let Some(s) = args.option("crash-tx") {
        let at_step = s
            .parse::<u64>()
            .map_err(|e| ArgsError(format!("bad --crash-tx {s:?}: {e}")))?;
        crash_plan.push(CrashEvent {
            at_step,
            station: Station::Tx,
            mode,
        });
    }
    if let Some(s) = args.option("crash-rx") {
        let at_step = s
            .parse::<u64>()
            .map_err(|e| ArgsError(format!("bad --crash-rx {s:?}: {e}")))?;
        crash_plan.push(CrashEvent {
            at_step,
            station: Station::Rx,
            mode,
        });
    }
    let cfg = SimConfig {
        payloads: args.flag("payloads"),
        max_steps_per_message: args.option_or("budget", 100_000)?,
        crash_plan,
        restart_backoff: args.option_or("backoff", 0)?,
        retry_lost_messages: args.flag("retry"),
        ..SimConfig::default()
    };

    let mut sim = registry::chaos_simulation(proto_name, &plan, seed)?;
    let (metrics, trace) = telemetry_sinks(&opts);
    if let Some(registry) = &metrics {
        sim.attach_telemetry(Arc::clone(registry), trace.clone());
    }
    println!("chaos run: {proto_name}, seed {seed}, plan {plan_path}");
    if plan.is_quiet() && cfg.crash_plan.is_empty() {
        println!("  (the plan injects no faults and schedules no crashes)");
    }
    let result = sim.deliver(messages, &cfg);
    match &result {
        Ok(stats) => {
            println!("  messages delivered : {}", stats.messages_delivered);
            println!("  forward packets    : {}", stats.packets_sent_forward);
            println!("  backward packets   : {}", stats.packets_sent_backward);
            println!("  faults injected    : {}", stats.faults_injected);
            println!("  crashes applied    : {}", stats.crashes_applied);
            println!("  steps              : {}", stats.steps);
            println!("  fingerprint        : {:016x}", stats.fingerprint);
            if args.flag("faults") {
                for line in sim.fault_log() {
                    println!("  fault: {line}");
                }
            }
        }
        Err(SimError::Stalled { diagnostic, .. }) => {
            println!("outcome: STALLED");
            println!("{diagnostic}");
            let path = args.option("dump").unwrap_or("stall-repro.attack");
            std::fs::write(path, &diagnostic.repro_schedule)
                .map_err(|e| NonFifoError::io(path, &e))?;
            println!(
                "repro schedule written to {path} (replay with `nonfifo schedule {proto_name} {path}`)"
            );
        }
        Err(SimError::Violation(v)) => {
            println!("outcome: INVALID EXECUTION — {v}");
        }
    }
    // Faulted runs still export telemetry: the counters are exactly what a
    // post-mortem wants.
    export_telemetry(&opts, metrics.as_ref(), trace.as_ref())?;
    result.map(|_| ()).map_err(NonFifoError::from)
}

fn cmd_attack(args: &Args) -> Result<(), ArgsError> {
    let proto_name = args
        .positional(1)
        .ok_or_else(|| ArgsError("attack needs a protocol".into()))?;
    let proto = registry::protocol(proto_name)?;
    let adversary = args.positional(2).unwrap_or("mf");
    let messages: u64 = args.option_or("messages", 64)?;
    println!(
        "attacking {} ({}) with {adversary}…\n",
        proto.name(),
        proto.forward_headers()
    );
    let outcome = match adversary {
        "mf" => MfFalsifier::new(MfConfig {
            max_messages: messages,
            ..MfConfig::default()
        })
        .run(proto.as_ref()),
        "pf" => {
            let (outcome, costs) = PfFalsifier::new(PfConfig {
                messages,
                ..PfConfig::default()
            })
            .run(proto.as_ref());
            if !costs.is_empty() {
                println!("cost curve (in transit → extension sends):");
                for c in costs.iter().step_by(costs.len().div_ceil(8).max(1)) {
                    println!("  {:>5} → {:<5}", c.in_transit_before, c.extension_sends);
                }
                println!();
            }
            outcome
        }
        "greedy" => GreedyReplayAdversary {
            capture_messages: messages.min(32),
            ..GreedyReplayAdversary::default()
        }
        .run(proto.as_ref()),
        other => return Err(ArgsError(format!("unknown adversary {other:?}"))),
    };
    match outcome {
        FalsifyOutcome::Violation(report) => {
            let c = report.execution.counts();
            println!("INVALID EXECUTION: {}", report.violation);
            println!("  sm = {}, rm = {} (rm = sm + 1)", c.sm, c.rm);
            if let Some(path) = args.option("dump") {
                std::fs::write(path, nonfifo_ioa::text::write_text(&report.execution))
                    .map_err(|e| ArgsError(format!("cannot write {path}: {e}")))?;
                println!("  trace written to {path} (recheck with `nonfifo recheck {path}`)");
            }
        }
        FalsifyOutcome::Survived(report) => {
            println!("survived the adversary:");
            println!("  messages delivered : {}", report.messages_delivered);
            println!("  forward packets    : {}", report.forward_packets_sent);
            println!("  copies in transit  : {}", report.final_in_transit);
        }
        FalsifyOutcome::Stuck { delivered } => {
            println!("protocol wedged under an optimal channel after {delivered} messages");
        }
        FalsifyOutcome::BudgetExhausted {
            delivered,
            forward_packets_sent,
        } => {
            println!("safety held but cost exploded: {delivered} messages, {forward_packets_sent} packets");
        }
    }
    Ok(())
}

/// State count carried by a non-counterexample outcome.
fn states_of(outcome: &ExploreOutcome) -> Option<usize> {
    match outcome {
        ExploreOutcome::Exhausted { states } | ExploreOutcome::Truncated { states } => {
            Some(*states)
        }
        ExploreOutcome::Counterexample { .. } => None,
    }
}

/// Compares a `--por` outcome against the full oracle's: same outcome
/// kind, same shortest-counterexample depth, and — when the shrinker is
/// applicable (clean boot) — the same minimal attack script after
/// [`shrink`]. State counts are *expected* to differ (that is the
/// reduction); report bytes are not compared. Returns a description of the
/// first divergence, or `None` on agreement.
fn por_differential_mismatch(
    proto: &dyn nonfifo_protocols::DataLink,
    cfg: &ExploreConfig,
    reduced: &ExploreOutcome,
    full: &ExploreOutcome,
) -> Option<String> {
    match (reduced, full) {
        (
            ExploreOutcome::Counterexample {
                depth: dr,
                schedule: sr,
                ..
            },
            ExploreOutcome::Counterexample {
                depth: df,
                schedule: sf,
                ..
            },
        ) => {
            if dr != df {
                return Some(format!(
                    "shortest counterexample depths differ (reduced {dr}, full {df})"
                ));
            }
            // Engines may legitimately return different same-depth attacks;
            // the shrinker normalises both to a minimal script. Corrupted
            // starts skip this (the shrinker replays from a clean boot).
            if cfg.corrupt_start.is_none() {
                match (shrink(proto, sr), shrink(proto, sf)) {
                    (Ok(a), Ok(b)) => {
                        if a.schedule != b.schedule {
                            return Some("shrunk attack scripts differ".into());
                        }
                    }
                    (r, f) => {
                        return Some(format!(
                            "shrinker failed (reduced {:?}, full {:?})",
                            r.err(),
                            f.err()
                        ));
                    }
                }
            }
            None
        }
        (ExploreOutcome::Exhausted { .. }, ExploreOutcome::Exhausted { .. })
        | (ExploreOutcome::Truncated { .. }, ExploreOutcome::Truncated { .. }) => None,
        // A reduced certificate against a full truncation is the reduction
        // working as intended (same scope, smaller state count), not a
        // soundness violation — the full engine ran out of budget, it did
        // not disagree.
        (ExploreOutcome::Exhausted { .. }, ExploreOutcome::Truncated { .. }) => None,
        _ => Some(format!(
            "outcome kinds differ (reduced {}, full {})",
            outcome_kind(reduced),
            outcome_kind(full)
        )),
    }
}

fn outcome_kind(outcome: &ExploreOutcome) -> &'static str {
    match outcome {
        ExploreOutcome::Counterexample { .. } => "counterexample",
        ExploreOutcome::Exhausted { .. } => "certificate",
        ExploreOutcome::Truncated { .. } => "inconclusive",
    }
}

fn cmd_explore(args: &Args) -> Result<(), NonFifoError> {
    let proto_name = args
        .positional(1)
        .ok_or_else(|| ArgsError("explore needs a protocol".into()))?;
    let proto = registry::protocol(proto_name)?;
    let discipline: Discipline = match args.option("discipline") {
        None => Discipline::NonFifo,
        Some(s) => s.parse().map_err(ArgsError)?,
    };
    // `--states` is the historical spelling of `--max-states`.
    let default_states: usize = args.option_or("states", 500_000)?;
    let corrupt_start = match args.option("corrupt-start") {
        None => None,
        Some(s) => Some(
            s.parse::<u64>()
                .map_err(|_| ArgsError(format!("--corrupt-start needs a u64 seed, got {s:?}")))?,
        ),
    };
    let cfg = ExploreConfig {
        max_messages: args.option_or("messages", 3)?,
        max_depth: args.option_or("depth", 12)?,
        max_pool: args.option_or("pool", 5)?,
        max_states: args.option_or("max-states", default_states)?,
        discipline,
        corrupt_start,
        por: args.flag("por"),
    };
    let (spec, budget_defaulted) = {
        let mut spec: VisitedSpec = match args.option("visited") {
            None => VisitedSpec::Ram,
            Some(s) => s.parse().map_err(ArgsError)?,
        };
        let mut budget_defaulted = !matches!(spec, VisitedSpec::Ram);
        if let Some(text) = args.option("memory-budget") {
            let bytes: usize = text.parse().map_err(|_| {
                ArgsError(format!("--memory-budget needs a byte count, got {text:?}"))
            })?;
            if matches!(spec, VisitedSpec::Ram) {
                return Err(ArgsError(
                    "--memory-budget requires --visited tiered or probabilistic".into(),
                )
                .into());
            }
            spec = spec.with_budget(bytes);
            budget_defaulted = false;
        }
        if let Some(text) = args.option("compact-runs") {
            let runs: usize = text.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                ArgsError(format!(
                    "--compact-runs needs a positive run count, got {text:?}"
                ))
            })?;
            if !matches!(spec, VisitedSpec::Tiered { .. }) {
                return Err(ArgsError("--compact-runs requires --visited tiered".into()).into());
            }
            spec = spec.with_compact_runs(runs);
        }
        (spec, budget_defaulted)
    };
    if args.flag("differential") && !spec.is_exact() {
        // The probabilistic tier may certify with fewer states than the
        // exact oracle, so a byte-report comparison is meaningless.
        return Err(ArgsError("--differential requires an exact visited tier".into()).into());
    }
    let opts = CommonOpts::from_args(args)?;
    let (metrics, trace) = telemetry_sinks(&opts);
    let parallel = args.flag("parallel") || args.option("threads").is_some();
    let mut explorer = Explorer::new(cfg).visited(spec);
    if parallel {
        explorer = explorer.parallel(args.option_or("threads", 0)?);
    }
    if let Some(registry) = &metrics {
        explorer = explorer.with_telemetry(Arc::clone(registry), trace.clone());
    }
    let engine_label = match explorer.threads() {
        Some(t) => format!("parallel, {t} threads"),
        None => "sequential".to_string(),
    };
    println!(
        "exploring {} in scope msgs={} depth={} pool={} discipline={}{}{} ({engine_label}{})…",
        proto.name(),
        cfg.max_messages,
        cfg.max_depth,
        cfg.max_pool,
        cfg.discipline,
        cfg.corrupt_start
            .map(|s| format!(" corrupt-start={s}"))
            .unwrap_or_default(),
        if cfg.por { " por" } else { "" },
        match spec {
            VisitedSpec::Ram => String::new(),
            // The effective budget is always visible — in particular the
            // implicit 1 GiB default a bare `--visited tiered` picks.
            other if budget_defaulted => format!(", visited {other} [default budget]"),
            other => format!(", visited {other}"),
        },
    );
    let outcome = explorer.explore(proto.as_ref());
    if let Some(registry) = &metrics {
        if let ExploreOutcome::Counterexample { depth, .. } = &outcome {
            registry.set_value("explore.counterexample_depth", *depth as f64);
        }
    }
    if args.flag("differential") {
        if cfg.por {
            // The reduced run certifies with *fewer* states, so byte
            // reports cannot match; compare verdicts against the full
            // explorer instead — outcome kind, counterexample depth, and
            // (for clean scopes) the shrunk attack script.
            let full_cfg = ExploreConfig { por: false, ..cfg };
            let full = ParallelExplorer::new(0).explore(proto.as_ref(), &full_cfg);
            if let Some(mismatch) = por_differential_mismatch(proto.as_ref(), &cfg, &outcome, &full)
            {
                println!("DIFFERENTIAL MISMATCH between reduced and full explorers: {mismatch}");
                println!("--- reduced (--por) ---\n{}", outcome.report());
                println!("--- full oracle ---\n{}", full.report());
                export_telemetry(&opts, metrics.as_ref(), trace.as_ref())?;
                return Err(NonFifoError::DifferentialMismatch);
            }
            println!("differential: reduced and full explorers agree on the verdict");
            if let (Some(reduced_states), Some(full_states)) =
                (states_of(&outcome), states_of(&full))
            {
                let ratio = full_states as f64 / reduced_states.max(1) as f64;
                println!("reduction: {reduced_states} states vs {full_states} full ({ratio:.2}x)");
                if let Some(registry) = &metrics {
                    registry.set_value("explore.reduction_ratio", ratio);
                }
            }
        } else {
            let other = if parallel {
                explore(proto.as_ref(), &cfg)
            } else {
                ParallelExplorer::new(0).explore(proto.as_ref(), &cfg)
            };
            if outcome.report() != other.report() {
                println!("DIFFERENTIAL MISMATCH between sequential and parallel engines:");
                println!("--- this engine ---\n{}", outcome.report());
                println!("--- other engine ---\n{}", other.report());
                export_telemetry(&opts, metrics.as_ref(), trace.as_ref())?;
                return Err(NonFifoError::DifferentialMismatch);
            }
            println!("differential: sequential and parallel reports are byte-identical");
        }
    }
    match &outcome {
        ExploreOutcome::Counterexample {
            execution,
            depth,
            schedule,
        } => {
            println!("shortest invalid execution: {depth} adversary actions");
            let script = if args.flag("no-shrink") || cfg.corrupt_start.is_some() {
                // The shrinker replays candidates from a clean boot, which
                // would desynchronise a corrupted-start counterexample.
                schedule.clone()
            } else {
                let shrunk = shrink(proto.as_ref(), schedule)
                    .map_err(|e| ArgsError(format!("shrinker: {e}")))?;
                println!(
                    "shrinker: removed {} of {} steps ({} replays)",
                    shrunk.removed(),
                    shrunk.original_steps,
                    shrunk.attempts
                );
                shrunk.schedule
            };
            println!("\nattack script (replay with `nonfifo schedule {proto_name} <file>`):");
            print!("{}", script.to_text());
            println!("\n{}", nonfifo_ioa::diagram::render(execution));
        }
        ExploreOutcome::Exhausted { states } => {
            println!("certificate: no invalid execution in scope (exhaustive, {states} states)");
            if let Some(bound) = explorer.visited_set().false_dedup_bound() {
                println!(
                    "(probabilistic tier: certificate holds modulo a false-dedup \
                     probability ≤ {bound:.3e} per state — rerun with --visited \
                     tiered for an exact certificate)"
                );
            }
        }
        ExploreOutcome::Truncated { states } => {
            println!("inconclusive: state budget exhausted after {states} states");
            println!("(NOT a certificate — raise --max-states to cover the scope)");
        }
    }
    let visited = explorer.visited_set();
    if visited.spills() > 0 {
        // Every figure here is deterministic schedule-time accounting, so
        // this line is byte-identical across thread counts (CI diffs it).
        println!(
            "visited: {} spill(s), {} bytes on disk in {} run(s), {} bytes of \
             spill I/O, peak {} bytes resident (budget {})",
            visited.spills(),
            visited.disk_bytes(),
            visited.disk_runs(),
            visited.compaction_bytes(),
            visited.peak_memory_bytes(),
            match spec {
                VisitedSpec::Tiered { memory_budget, .. }
                | VisitedSpec::Probabilistic { memory_budget } => memory_budget,
                VisitedSpec::Ram => 0,
            },
        );
    }
    export_telemetry(&opts, metrics.as_ref(), trace.as_ref())?;
    match outcome {
        ExploreOutcome::Exhausted { .. } => Ok(()),
        ExploreOutcome::Counterexample { depth, .. } => Err(NonFifoError::Counterexample { depth }),
        ExploreOutcome::Truncated { states } => Err(NonFifoError::Truncated {
            states: states as u64,
        }),
    }
}

fn cmd_campaign(args: &Args) -> Result<(), NonFifoError> {
    use nonfifo_campaign::{CampaignCache, CampaignPlan, CampaignRunner, RunOutcome};
    let plan_path = args
        .positional(1)
        .ok_or_else(|| ArgsError("campaign needs a plan file".into()))?;
    if args.positional_count() > 2 {
        return Err(ArgsError("campaign takes exactly one positional".into()).into());
    }
    let threads: usize = args.option_or("threads", 0)?;
    let text = std::fs::read_to_string(plan_path).map_err(|e| NonFifoError::io(plan_path, &e))?;
    let plan = CampaignPlan::parse(&text)?;
    let runs = plan.expand();
    let mut cache = match args.option("cache") {
        Some(path) => CampaignCache::load(path)?,
        None => CampaignCache::new(),
    };
    let runner = CampaignRunner::new(threads);
    println!(
        "campaign: {} scenario(s), {} run(s), {} thread(s), plan {plan_path}",
        plan.scenarios.len(),
        runs.len(),
        runner.threads()
    );
    let started = std::time::Instant::now();
    let report = runner.run_with_cache(&runs, &mut cache)?;
    let elapsed = started.elapsed().as_secs_f64();
    println!("\n{}", report.render());
    println!(
        "outcome: {} delivered, {} stalled, {} violation(s), {} diverged",
        report.count(RunOutcome::Delivered),
        report.count(RunOutcome::Stalled),
        report.count(RunOutcome::Violation),
        report.count(RunOutcome::Diverged),
    );
    // Integer percentage, so CI smoke jobs can grep the hit rate.
    let percent = if runs.is_empty() {
        100
    } else {
        report.cache_hits * 100 / runs.len()
    };
    println!(
        "cache  : {} hits / {} runs ({percent}%)",
        report.cache_hits,
        runs.len()
    );
    if elapsed > 0.0 {
        println!(
            "timing : {:.2}s, {:.0} runs/sec",
            elapsed,
            runs.len() as f64 / elapsed
        );
    }
    if let Some(path) = args.option("cache") {
        cache.save(path)?;
        println!("cache written to {path} ({} entries)", cache.len());
    }
    if let Some(path) = args.option("metrics-out") {
        // The aggregate is a pure function of the run results — identical
        // at any thread count and for any cache state except the
        // campaign.cache_hits counter — so timing never goes in this file.
        std::fs::write(path, report.aggregate_metrics().to_json())
            .map_err(|e| NonFifoError::io(path, &e))?;
        println!("metrics written to {path}");
    }
    match report.worst() {
        None => Ok(()),
        Some(err) => {
            println!("verdict: {err}");
            Err(err)
        }
    }
}

/// `nonfifo serve`: the campaign daemon. Binds `--addr` (default
/// `127.0.0.1:7171`; port `0` asks the OS for a free one), prints the
/// actual bound address on its own line so scripts can scrape it, and
/// serves until `POST /shutdown`. Campaigns shard across spawned
/// `nonfifo worker` processes (this same binary) unless `--in-process`
/// routes execution onto daemon threads instead.
fn cmd_serve(args: &Args) -> Result<(), NonFifoError> {
    use nonfifo_campaign::{CampaignService, ServiceConfig};
    let addr = args.option("addr").unwrap_or("127.0.0.1:7171");
    let workers: usize = args.option_or("workers", 0)?;
    let worker_command = if args.flag("in-process") {
        Vec::new()
    } else {
        let exe = std::env::current_exe().map_err(|e| NonFifoError::Io {
            path: "current_exe".to_string(),
            message: e.to_string(),
        })?;
        vec![exe.to_string_lossy().into_owned(), "worker".to_string()]
    };
    let service = CampaignService::new(ServiceConfig {
        workers,
        worker_command,
        cache_path: args.option("cache").map(str::to_string),
    })?;
    let listener = std::net::TcpListener::bind(addr).map_err(|e| NonFifoError::Io {
        path: addr.to_string(),
        message: e.to_string(),
    })?;
    let local = listener.local_addr().map_err(|e| NonFifoError::Io {
        path: addr.to_string(),
        message: e.to_string(),
    })?;
    println!("serving on http://{local}/");
    println!(
        "workers: {} per campaign ({}); cache: {}",
        if workers == 0 {
            "per-core".to_string()
        } else {
            workers.to_string()
        },
        if args.flag("in-process") {
            "in-process threads"
        } else {
            "worker processes"
        },
        args.option("cache").unwrap_or("none"),
    );
    println!("routes : POST /campaign, GET /metrics, GET /healthz, POST /shutdown");
    service.serve(listener)?;
    println!("shutdown requested; exiting");
    Ok(())
}

/// `nonfifo worker`: the per-shard subprocess the daemon spawns. Speaks
/// only the wire protocol: one shard assignment line in on stdin, one
/// flushed result line out per completed run. `--die-after N` exits with
/// a failure status after N results — the deterministic crash hook the
/// worker-retry tests drive.
fn cmd_worker(args: &Args) -> Result<(), NonFifoError> {
    let die_after = match args.option("die-after") {
        Some(s) => Some(
            s.parse::<u64>()
                .map_err(|_| ArgsError(format!("--die-after needs a count, got {s:?}")))?,
        ),
        None => None,
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    nonfifo_campaign::run_worker(&mut input, &mut output, die_after)
}

fn cmd_stabilize(args: &Args) -> Result<(), NonFifoError> {
    use nonfifo_channel::{CorruptionSeverity, DisciplineError, FaultPlan};
    use nonfifo_core::{certify, StabilizeConfig};
    let proto_name = args
        .option("protocol")
        .ok_or_else(|| ArgsError("stabilize needs --protocol NAME".into()))?;
    registry::protocol(proto_name)?;
    let seeds: u64 = args.option_or("seeds", 1000)?;
    if seeds == 0 {
        return Err(ArgsError("--seeds must be at least 1".into()).into());
    }
    let mut cfg = StabilizeConfig::default();
    if let Some(s) = args.option("severity") {
        cfg.severity = s
            .parse::<CorruptionSeverity>()
            .map_err(|e| ArgsError(e.to_string()))?;
    }
    if let Some(d) = args.option("discipline") {
        cfg.discipline = d.parse().map_err(|e: DisciplineError| ArgsError(e.0))?;
    }
    cfg.messages = args.option_or("messages", cfg.messages)?;
    cfg.max_steps_per_message = args.option_or("budget", cfg.max_steps_per_message)?;
    if let Some(path) = args.option("plan") {
        let text = std::fs::read_to_string(path).map_err(|e| NonFifoError::io(path, &e))?;
        let plan = FaultPlan::parse(&text)
            .map_err(|e| NonFifoError::Usage(format!("{path}:{}: {}", e.line, e.message)))?;
        cfg.fault_plan = Some(plan);
    }
    println!(
        "stabilize: {proto_name}, {seeds} corrupted start(s), severity {}, channel {}, \
         {} message(s) per start",
        cfg.severity, cfg.discipline, cfg.messages
    );
    if let Some(plan) = &cfg.fault_plan {
        let flat: Vec<String> = plan.to_string().lines().map(str::to_string).collect();
        println!("chaos  : {}", flat.join("; "));
    }
    let started = std::time::Instant::now();
    let report = certify(
        || registry::protocol(proto_name).expect("validated before the sweep"),
        seeds,
        &cfg,
    );
    let elapsed = started.elapsed().as_secs_f64();
    println!("result : {report}");
    if let Some(failure) = report.first_failure() {
        println!(
            "first failure: seed {} — {} (fingerprint {:016x}, replayable)",
            failure.seed, failure.verdict, failure.fingerprint
        );
    }
    if elapsed > 0.0 {
        println!(
            "timing : {:.2}s, {:.0} runs/sec",
            elapsed,
            seeds as f64 / elapsed
        );
    }
    match report.to_result() {
        Ok(()) => {
            println!("verdict: CERTIFIED — every corrupted start converged");
            Ok(())
        }
        Err(err) => {
            println!("verdict: {err}");
            Err(err)
        }
    }
}

fn cmd_schedule(args: &Args) -> Result<(), ArgsError> {
    use nonfifo_adversary::Schedule;
    let proto_name = args
        .positional(1)
        .ok_or_else(|| ArgsError("schedule needs a protocol".into()))?;
    let path = args
        .positional(2)
        .ok_or_else(|| ArgsError("schedule needs an attack file".into()))?;
    let proto = registry::protocol(proto_name)?;
    let input =
        std::fs::read_to_string(path).map_err(|e| ArgsError(format!("cannot read {path}: {e}")))?;
    let schedule = Schedule::parse(&input).map_err(|e| ArgsError(format!("parse: {e}")))?;
    println!(
        "replaying {} adversary actions against {}…",
        schedule.steps().len(),
        proto.name()
    );
    // A schedule that aborts mid-run (a quiesce that never converges, a
    // send against a wedged transmitter) is an experimental outcome, not a
    // CLI usage error — machine-generated stall repros end exactly this way.
    let sys = match schedule.run(proto.as_ref()) {
        Ok(sys) => sys,
        Err(e) => {
            println!("outcome: ABORTED — {e}");
            return Ok(());
        }
    };
    let c = sys.counts();
    println!("counters: {c}");
    match sys.violation() {
        Some(v) => println!("outcome: INVALID EXECUTION — {v}"),
        None => println!("outcome: no violation"),
    }
    if args.flag("diagram") {
        println!("\n{}", nonfifo_ioa::diagram::render(sys.execution()));
    }
    Ok(())
}

fn cmd_recheck(args: &Args) -> Result<(), ArgsError> {
    use nonfifo_ioa::spec::{check_dl1_dl2, check_pl1, Validity};
    let path = args
        .positional(1)
        .ok_or_else(|| ArgsError("recheck needs a trace file".into()))?;
    let input =
        std::fs::read_to_string(path).map_err(|e| ArgsError(format!("cannot read {path}: {e}")))?;
    let exec =
        nonfifo_ioa::text::parse_text(&input).map_err(|e| ArgsError(format!("parse: {e}")))?;
    println!("events: {}", exec.len());
    println!("counters: {}", exec.counts());
    for dir in nonfifo_ioa::Dir::BOTH {
        match check_pl1(&exec, dir) {
            Ok(()) => println!("PL1 [{dir}]: ok"),
            Err(v) => println!("PL1 [{dir}]: VIOLATED — {v}"),
        }
    }
    match check_dl1_dl2(&exec) {
        Ok(_) => println!("DL1+DL2: ok"),
        Err(v) => println!("DL1+DL2: VIOLATED — {v}"),
    }
    println!("classification: {}", Validity::classify(&exec));
    if args.flag("diagram") {
        println!("\n{}", nonfifo_ioa::diagram::render(&exec));
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), ArgsError> {
    use nonfifo_campaign::experiments as cx;
    use nonfifo_core::experiments as ex;
    let seed = 20260705u64;
    let selected: Vec<String> = match args.option("exp") {
        Some(e) => vec![e.to_string()],
        None => (1..=11)
            .map(|i| format!("e{i}"))
            .chain(
                ["e13", "e14", "e15", "e16"]
                    .iter()
                    .map(|s| (*s).to_string()),
            )
            .collect(),
    };
    for exp in selected {
        match exp.as_str() {
            "e1" => println!("## E1\n\n{}", ex::e1_boundness(seed)),
            "e2" => println!("## E2\n\n{}", ex::e2_mf_falsifier()),
            "e3" => println!("## E3\n\n{}", ex::e3_naive_protocol()),
            "e4" => println!("## E4\n\n{}", ex::e4_pf_cost(120)),
            "e5" => println!("## E5\n\n{}", ex::e5_probabilistic_growth(seed)),
            "e6" => println!("## E6\n\n{}", ex::e6_seeding_lemma(12, 0.3, 50)),
            "e7" => println!("## E7\n\n{}", ex::e7_hoeffding(20_000, seed)),
            "e8" => println!("## E8\n\n{}", ex::e8_classic_break(seed)),
            "e9" => println!("## E9\n\n{}", ex::e9_window_ablation(150, seed)),
            "e10" => println!("## E10\n\n{}", ex::e10_transport(100)),
            "e11" => println!("## E11\n\n{}", ex::e11_exhaustive()),
            "e13" => println!("## E13\n\n{}", ex::e13_parallel_certification()),
            "e14" => println!("## E14\n\n{}", cx::e14_cost_vs_in_transit()),
            "e15" => println!("## E15\n\n{}", cx::e15_growth_campaign()),
            "e16" => println!("## E16\n\n{}", cx::e16_convergence_campaign()),
            other => return Err(ArgsError(format!("unknown experiment {other:?}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_distinguish_all_outcomes() {
        assert_eq!(exit_code(&NonFifoError::Usage("bad".into())), 1);
        assert_eq!(
            exit_code(&NonFifoError::Io {
                path: "x".into(),
                message: "gone".into()
            }),
            1
        );
        assert_eq!(exit_code(&NonFifoError::Counterexample { depth: 6 }), 2);
        assert_eq!(exit_code(&NonFifoError::Truncated { states: 42 }), 3);
        assert_eq!(exit_code(&NonFifoError::DifferentialMismatch), 4);
        // Campaign verdicts follow the single-run rules: any violation is a
        // counterexample (2); stalls alone are inconclusive (3).
        assert_eq!(
            exit_code(&NonFifoError::CampaignFailed {
                violations: 1,
                stalls: 5
            }),
            2
        );
        assert_eq!(
            exit_code(&NonFifoError::CampaignFailed {
                violations: 0,
                stalls: 1
            }),
            3
        );
        // Convergence failure is its own verdict: distinguishable from
        // both a clean-start violation (2) and a stall (3).
        assert_eq!(
            exit_code(&NonFifoError::ConvergenceFailed {
                diverged: 3,
                stalled: 1,
                seeds: 24
            }),
            5
        );
    }

    #[test]
    fn stabilize_flags_parse() {
        let args = Args::parse(
            [
                "stabilize",
                "--protocol",
                "stabilizing-dl",
                "--seeds",
                "50",
                "--severity",
                "heavy",
                "--discipline",
                "prob:0.3",
            ],
            &[],
        )
        .unwrap();
        assert_eq!(args.option("protocol"), Some("stabilizing-dl"));
        assert_eq!(args.option_or("seeds", 0u64).unwrap(), 50);
        assert_eq!(
            args.option("severity")
                .unwrap()
                .parse::<nonfifo_channel::CorruptionSeverity>(),
            Ok(nonfifo_channel::CorruptionSeverity::Heavy)
        );
    }

    #[test]
    fn explore_flags_parse() {
        let args = Args::parse(
            [
                "explore",
                "abp",
                "--parallel",
                "--threads",
                "8",
                "--max-states",
                "1000",
                "--differential",
                "--discipline",
                "reorder2",
            ],
            &["parallel", "differential", "no-shrink"],
        )
        .unwrap();
        assert!(args.flag("parallel"));
        assert!(args.flag("differential"));
        assert!(!args.flag("no-shrink"));
        assert_eq!(args.option_or("threads", 0usize).unwrap(), 8);
        assert_eq!(args.option_or("max-states", 0usize).unwrap(), 1000);
        assert_eq!(
            args.option("discipline").unwrap().parse::<Discipline>(),
            Ok(Discipline::BoundedReorder(2))
        );
    }
}
