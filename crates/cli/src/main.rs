//! `nonfifo` — the command-line face of the reproduction.
//!
//! ```text
//! nonfifo simulate <protocol> <channel> [--messages N] [--seed S] [--q Q]
//!                  [--loss L] [--bound B] [--spread D] [--payloads]
//! nonfifo chaos    <protocol> --plan FILE [--seed S] [--messages N]
//!                  [--crash-tx S] [--crash-rx S] [--retry] [--dump FILE]
//! nonfifo attack   <protocol> [mf|pf|greedy] [--messages N] [--dump FILE]
//! nonfifo explore  <protocol> [--messages N] [--depth D] [--pool P]
//! nonfifo schedule <protocol> <attack-file> [--diagram]
//! nonfifo recheck  <trace-file> [--diagram]
//! nonfifo report   [--exp eN]
//! nonfifo list
//! ```

mod args;
mod registry;

use args::{Args, ArgsError};
use nonfifo_adversary::{
    explore, ExploreConfig, ExploreOutcome, FalsifyOutcome, GreedyReplayAdversary, MfConfig,
    MfFalsifier, PfConfig, PfFalsifier,
};
use nonfifo_core::{CrashEvent, CrashMode, SimConfig, SimError, Station};
use std::process::ExitCode;

const USAGE: &str = "\
nonfifo — executable reproduction of Mansour & Schieber (PODC 1989)

usage:
  nonfifo simulate <protocol> <channel> [--messages N] [--seed S] [--q Q]
                   [--loss L] [--bound B] [--spread D] [--payloads]
  nonfifo chaos    <protocol> --plan FILE [--seed S] [--messages N]
                   [--crash-tx S] [--crash-rx S] [--restore] [--retry]
                   [--backoff B] [--budget B] [--faults] [--dump FILE]
  nonfifo attack   <protocol> [mf|pf|greedy] [--messages N] [--dump FILE]
  nonfifo explore  <protocol> [--messages N] [--depth D] [--pool P]
  nonfifo schedule <protocol> <attack-file> [--diagram]
  nonfifo recheck  <trace-file> [--diagram]
  nonfifo report   [--exp e1..e11]
  nonfifo list
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(raw: Vec<String>) -> Result<(), ArgsError> {
    let args = Args::parse(raw, &["payloads", "diagram", "restore", "retry", "faults"])?;
    match args.positional(0) {
        Some("simulate") => cmd_simulate(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("attack") => cmd_attack(&args),
        Some("explore") => cmd_explore(&args),
        Some("schedule") => cmd_schedule(&args),
        Some("recheck") => cmd_recheck(&args),
        Some("report") => cmd_report(&args),
        Some("list") => {
            cmd_list();
            Ok(())
        }
        _ => Err(ArgsError("missing or unknown subcommand".into())),
    }
}

fn cmd_list() {
    println!("protocols:");
    for (name, desc) in registry::PROTOCOLS {
        println!("  {name:<14} {desc}");
    }
    println!("\nchannels:");
    for (name, desc) in registry::CHANNELS {
        println!("  {name:<14} {desc}");
    }
}

fn cmd_simulate(args: &Args) -> Result<(), ArgsError> {
    if args.positional_count() > 3 {
        return Err(ArgsError("simulate takes exactly two positionals".into()));
    }
    let proto = args
        .positional(1)
        .ok_or_else(|| ArgsError("simulate needs a protocol".into()))?;
    let channel = args
        .positional(2)
        .ok_or_else(|| ArgsError("simulate needs a channel".into()))?;
    let messages: u64 = args.option_or("messages", 100)?;
    let mut sim = registry::simulation(proto, channel, args)?;
    let cfg = SimConfig {
        payloads: args.flag("payloads"),
        ..SimConfig::default()
    };
    match sim.deliver(messages, &cfg) {
        Ok(stats) => {
            println!("{proto} over {channel}:");
            println!("  messages delivered : {}", stats.messages_delivered);
            println!("  forward packets    : {}", stats.packets_sent_forward);
            println!("  backward packets   : {}", stats.packets_sent_backward);
            println!("  distinct headers   : {}", stats.distinct_forward_packets);
            println!("  steps              : {}", stats.steps);
            println!("  peak space (bytes) : {}", stats.peak_space_bytes);
            println!("  in transit at end  : {}", stats.final_in_transit);
            if args.flag("payloads") {
                let expect: Vec<u64> = (0..messages).collect();
                println!(
                    "  payload order      : {}",
                    if stats.delivered_payloads == expect {
                        "intact"
                    } else {
                        "CORRUPT"
                    }
                );
            }
            Ok(())
        }
        Err(e) => Err(ArgsError(format!("run failed: {e}"))),
    }
}

fn cmd_chaos(args: &Args) -> Result<(), ArgsError> {
    use nonfifo_channel::FaultPlan;
    let proto_name = args
        .positional(1)
        .ok_or_else(|| ArgsError("chaos needs a protocol".into()))?;
    let plan_path = args
        .option("plan")
        .ok_or_else(|| ArgsError("chaos needs --plan FILE".into()))?;
    let seed: u64 = args.option_or("seed", 0)?;
    let messages: u64 = args.option_or("messages", 100)?;
    let text = std::fs::read_to_string(plan_path)
        .map_err(|e| ArgsError(format!("cannot read {plan_path}: {e}")))?;
    let plan = FaultPlan::parse(&text).map_err(|e| ArgsError(format!("plan: {e}")))?;

    let mode = if args.flag("restore") {
        CrashMode::Restore
    } else {
        CrashMode::Amnesia
    };
    let mut crash_plan = Vec::new();
    if let Some(s) = args.option("crash-tx") {
        let at_step = s
            .parse::<u64>()
            .map_err(|e| ArgsError(format!("bad --crash-tx {s:?}: {e}")))?;
        crash_plan.push(CrashEvent {
            at_step,
            station: Station::Tx,
            mode,
        });
    }
    if let Some(s) = args.option("crash-rx") {
        let at_step = s
            .parse::<u64>()
            .map_err(|e| ArgsError(format!("bad --crash-rx {s:?}: {e}")))?;
        crash_plan.push(CrashEvent {
            at_step,
            station: Station::Rx,
            mode,
        });
    }
    let cfg = SimConfig {
        payloads: args.flag("payloads"),
        max_steps_per_message: args.option_or("budget", 100_000)?,
        crash_plan,
        restart_backoff: args.option_or("backoff", 0)?,
        retry_lost_messages: args.flag("retry"),
        ..SimConfig::default()
    };

    let mut sim = registry::chaos_simulation(proto_name, &plan, seed)?;
    println!("chaos run: {proto_name}, seed {seed}, plan {plan_path}");
    if plan.is_quiet() && cfg.crash_plan.is_empty() {
        println!("  (the plan injects no faults and schedules no crashes)");
    }
    match sim.deliver(messages, &cfg) {
        Ok(stats) => {
            println!("  messages delivered : {}", stats.messages_delivered);
            println!("  forward packets    : {}", stats.packets_sent_forward);
            println!("  backward packets   : {}", stats.packets_sent_backward);
            println!("  faults injected    : {}", stats.faults_injected);
            println!("  crashes applied    : {}", stats.crashes_applied);
            println!("  steps              : {}", stats.steps);
            println!("  fingerprint        : {:016x}", stats.fingerprint);
            if args.flag("faults") {
                for line in sim.fault_log() {
                    println!("  fault: {line}");
                }
            }
            Ok(())
        }
        Err(SimError::Stalled { diagnostic, .. }) => {
            println!("outcome: STALLED");
            println!("{diagnostic}");
            let path = args.option("dump").unwrap_or("stall-repro.attack");
            std::fs::write(path, &diagnostic.repro_schedule)
                .map_err(|e| ArgsError(format!("cannot write {path}: {e}")))?;
            println!(
                "repro schedule written to {path} (replay with `nonfifo schedule {proto_name} {path}`)"
            );
            Ok(())
        }
        Err(SimError::Violation(v)) => {
            println!("outcome: INVALID EXECUTION — {v}");
            Ok(())
        }
    }
}

fn cmd_attack(args: &Args) -> Result<(), ArgsError> {
    let proto_name = args
        .positional(1)
        .ok_or_else(|| ArgsError("attack needs a protocol".into()))?;
    let proto = registry::protocol(proto_name)?;
    let adversary = args.positional(2).unwrap_or("mf");
    let messages: u64 = args.option_or("messages", 64)?;
    println!(
        "attacking {} ({}) with {adversary}…\n",
        proto.name(),
        proto.forward_headers()
    );
    let outcome = match adversary {
        "mf" => MfFalsifier::new(MfConfig {
            max_messages: messages,
            ..MfConfig::default()
        })
        .run(proto.as_ref()),
        "pf" => {
            let (outcome, costs) = PfFalsifier::new(PfConfig {
                messages,
                ..PfConfig::default()
            })
            .run(proto.as_ref());
            if !costs.is_empty() {
                println!("cost curve (in transit → extension sends):");
                for c in costs.iter().step_by(costs.len().div_ceil(8).max(1)) {
                    println!("  {:>5} → {:<5}", c.in_transit_before, c.extension_sends);
                }
                println!();
            }
            outcome
        }
        "greedy" => GreedyReplayAdversary {
            capture_messages: messages.min(32),
            ..GreedyReplayAdversary::default()
        }
        .run(proto.as_ref()),
        other => return Err(ArgsError(format!("unknown adversary {other:?}"))),
    };
    match outcome {
        FalsifyOutcome::Violation(report) => {
            let c = report.execution.counts();
            println!("INVALID EXECUTION: {}", report.violation);
            println!("  sm = {}, rm = {} (rm = sm + 1)", c.sm, c.rm);
            if let Some(path) = args.option("dump") {
                std::fs::write(path, nonfifo_ioa::text::write_text(&report.execution))
                    .map_err(|e| ArgsError(format!("cannot write {path}: {e}")))?;
                println!("  trace written to {path} (recheck with `nonfifo recheck {path}`)");
            }
        }
        FalsifyOutcome::Survived(report) => {
            println!("survived the adversary:");
            println!("  messages delivered : {}", report.messages_delivered);
            println!("  forward packets    : {}", report.forward_packets_sent);
            println!("  copies in transit  : {}", report.final_in_transit);
        }
        FalsifyOutcome::Stuck { delivered } => {
            println!("protocol wedged under an optimal channel after {delivered} messages");
        }
        FalsifyOutcome::BudgetExhausted {
            delivered,
            forward_packets_sent,
        } => {
            println!("safety held but cost exploded: {delivered} messages, {forward_packets_sent} packets");
        }
    }
    Ok(())
}

fn cmd_explore(args: &Args) -> Result<(), ArgsError> {
    let proto_name = args
        .positional(1)
        .ok_or_else(|| ArgsError("explore needs a protocol".into()))?;
    let proto = registry::protocol(proto_name)?;
    let cfg = ExploreConfig {
        max_messages: args.option_or("messages", 3)?,
        max_depth: args.option_or("depth", 12)?,
        max_pool: args.option_or("pool", 5)?,
        max_states: args.option_or("states", 500_000)?,
    };
    println!(
        "exhaustively exploring {} in scope msgs={} depth={} pool={}…",
        proto.name(),
        cfg.max_messages,
        cfg.max_depth,
        cfg.max_pool
    );
    match explore(proto.as_ref(), &cfg) {
        ExploreOutcome::Counterexample {
            execution,
            depth,
            schedule,
        } => {
            println!("shortest invalid execution: {depth} adversary actions");
            println!("\nattack script (replay with `nonfifo schedule {proto_name} <file>`):");
            print!("{}", schedule.to_text());
            println!("\n{}", nonfifo_ioa::diagram::render(&execution));
        }
        ExploreOutcome::Exhausted { states } => {
            println!("no invalid execution in scope (exhaustive, {states} states)");
        }
        ExploreOutcome::Truncated { states } => {
            println!("inconclusive: state budget exhausted after {states} states");
        }
    }
    Ok(())
}

fn cmd_schedule(args: &Args) -> Result<(), ArgsError> {
    use nonfifo_adversary::Schedule;
    let proto_name = args
        .positional(1)
        .ok_or_else(|| ArgsError("schedule needs a protocol".into()))?;
    let path = args
        .positional(2)
        .ok_or_else(|| ArgsError("schedule needs an attack file".into()))?;
    let proto = registry::protocol(proto_name)?;
    let input =
        std::fs::read_to_string(path).map_err(|e| ArgsError(format!("cannot read {path}: {e}")))?;
    let schedule = Schedule::parse(&input).map_err(|e| ArgsError(format!("parse: {e}")))?;
    println!(
        "replaying {} adversary actions against {}…",
        schedule.steps().len(),
        proto.name()
    );
    // A schedule that aborts mid-run (a quiesce that never converges, a
    // send against a wedged transmitter) is an experimental outcome, not a
    // CLI usage error — machine-generated stall repros end exactly this way.
    let sys = match schedule.run(proto.as_ref()) {
        Ok(sys) => sys,
        Err(e) => {
            println!("outcome: ABORTED — {e}");
            return Ok(());
        }
    };
    let c = sys.counts();
    println!("counters: {c}");
    match sys.violation() {
        Some(v) => println!("outcome: INVALID EXECUTION — {v}"),
        None => println!("outcome: no violation"),
    }
    if args.flag("diagram") {
        println!("\n{}", nonfifo_ioa::diagram::render(sys.execution()));
    }
    Ok(())
}

fn cmd_recheck(args: &Args) -> Result<(), ArgsError> {
    use nonfifo_ioa::spec::{check_dl1_dl2, check_pl1, Validity};
    let path = args
        .positional(1)
        .ok_or_else(|| ArgsError("recheck needs a trace file".into()))?;
    let input =
        std::fs::read_to_string(path).map_err(|e| ArgsError(format!("cannot read {path}: {e}")))?;
    let exec =
        nonfifo_ioa::text::parse_text(&input).map_err(|e| ArgsError(format!("parse: {e}")))?;
    println!("events: {}", exec.len());
    println!("counters: {}", exec.counts());
    for dir in nonfifo_ioa::Dir::BOTH {
        match check_pl1(&exec, dir) {
            Ok(()) => println!("PL1 [{dir}]: ok"),
            Err(v) => println!("PL1 [{dir}]: VIOLATED — {v}"),
        }
    }
    match check_dl1_dl2(&exec) {
        Ok(_) => println!("DL1+DL2: ok"),
        Err(v) => println!("DL1+DL2: VIOLATED — {v}"),
    }
    println!("classification: {}", Validity::classify(&exec));
    if args.flag("diagram") {
        println!("\n{}", nonfifo_ioa::diagram::render(&exec));
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), ArgsError> {
    use nonfifo_core::experiments as ex;
    let seed = 20260705u64;
    let selected: Vec<String> = match args.option("exp") {
        Some(e) => vec![e.to_string()],
        None => (1..=11).map(|i| format!("e{i}")).collect(),
    };
    for exp in selected {
        match exp.as_str() {
            "e1" => println!("## E1\n\n{}", ex::e1_boundness(seed)),
            "e2" => println!("## E2\n\n{}", ex::e2_mf_falsifier()),
            "e3" => println!("## E3\n\n{}", ex::e3_naive_protocol()),
            "e4" => println!("## E4\n\n{}", ex::e4_pf_cost(120)),
            "e5" => println!("## E5\n\n{}", ex::e5_probabilistic_growth(seed)),
            "e6" => println!("## E6\n\n{}", ex::e6_seeding_lemma(12, 0.3, 50)),
            "e7" => println!("## E7\n\n{}", ex::e7_hoeffding(20_000, seed)),
            "e8" => println!("## E8\n\n{}", ex::e8_classic_break(seed)),
            "e9" => println!("## E9\n\n{}", ex::e9_window_ablation(150, seed)),
            "e10" => println!("## E10\n\n{}", ex::e10_transport(100)),
            "e11" => println!("## E11\n\n{}", ex::e11_exhaustive()),
            other => return Err(ArgsError(format!("unknown experiment {other:?}"))),
        }
    }
    Ok(())
}
