//! A small dependency-free argument parser: positional arguments plus
//! `--flag` and `--key value` options.

use std::collections::BTreeMap;
use std::fmt;

/// An argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgsError {}

/// Parsed arguments: positionals in order, options by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments. `bool_flags` names the options that take no
    /// value; every other `--name` consumes the following token.
    ///
    /// # Errors
    ///
    /// Fails on a value-taking option with no following token.
    pub fn parse<I, S>(raw: I, bool_flags: &[&str]) -> Result<Args, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgsError(format!("--{name} needs a value")))?;
                    out.options.insert(name.to_string(), value);
                }
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// The value of `--name`, if given.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// True if the boolean flag `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name` parsed as `T`, or `default`.
    ///
    /// # Errors
    ///
    /// Fails if the value is present but unparsable.
    pub fn option_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.option(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError(format!("--{name}: cannot parse {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positionals_and_options() {
        let a = Args::parse(["attack", "abp", "--seed", "7", "--diagram"], &["diagram"]).unwrap();
        assert_eq!(a.positional(0), Some("attack"));
        assert_eq!(a.positional(1), Some("abp"));
        assert_eq!(a.positional_count(), 2);
        assert_eq!(a.option("seed"), Some("7"));
        assert!(a.flag("diagram"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn typed_options_with_defaults() {
        let a = Args::parse(["--q", "0.25"], &[]).unwrap();
        assert_eq!(a.option_or("q", 0.5f64).unwrap(), 0.25);
        assert_eq!(a.option_or("seed", 42u64).unwrap(), 42);
        assert!(a.option_or::<u64>("q", 0).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(["--seed"], &[]).unwrap_err();
        assert!(err.to_string().contains("--seed"));
    }

    #[test]
    fn empty_input_is_fine() {
        let a = Args::parse(Vec::<String>::new(), &[]).unwrap();
        assert_eq!(a.positional(0), None);
    }
}
