//! A small dependency-free argument parser: positional arguments plus
//! `--flag` and `--key value` options.

use std::collections::BTreeMap;
use std::fmt;

/// An argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgsError {}

impl From<ArgsError> for nonfifo_core::NonFifoError {
    fn from(e: ArgsError) -> Self {
        nonfifo_core::NonFifoError::Usage(e.0)
    }
}

/// Parsed arguments: positionals in order, options by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments. `bool_flags` names the options that take no
    /// value; every other `--name` consumes the following token.
    ///
    /// # Errors
    ///
    /// Fails on a value-taking option with no following token.
    pub fn parse<I, S>(raw: I, bool_flags: &[&str]) -> Result<Args, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgsError(format!("--{name} needs a value")))?;
                    out.options.insert(name.to_string(), value);
                }
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// The value of `--name`, if given.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// True if the boolean flag `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name` parsed as `T`, or `default`.
    ///
    /// # Errors
    ///
    /// Fails if the value is present but unparsable.
    pub fn option_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError> {
        match self.option(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError(format!("--{name}: cannot parse {v:?}"))),
        }
    }
}

/// Options shared by every run-producing subcommand (`simulate`, `chaos`,
/// `explore`): the determinism knobs and the telemetry export paths,
/// parsed and range-checked in one place so no channel constructor or
/// file writer ever sees an unvalidated value (and none of them panic).
#[derive(Debug, Clone, PartialEq)]
pub struct CommonOpts {
    /// RNG seed for seeded substrates (`--seed`, default 0).
    pub seed: u64,
    /// Delay probability for PL2p channels (`--q`, default 0.3, in \[0, 1\]).
    pub q: f64,
    /// Reorder distance bound (`--bound`, default 4, at least 1).
    pub bound: u64,
    /// Where to write the metrics snapshot JSON (`--metrics-out FILE`).
    pub metrics_out: Option<String>,
    /// Where to write the Chrome trace JSON (`--trace-out FILE`).
    pub trace_out: Option<String>,
    /// Print the human-readable metrics summary after the run (`--metrics`).
    pub metrics_summary: bool,
}

impl CommonOpts {
    /// Extracts and validates the common options.
    ///
    /// # Errors
    ///
    /// Fails on unparsable values, `--q` outside `[0, 1]`, or `--bound 0`.
    pub fn from_args(args: &Args) -> Result<CommonOpts, ArgsError> {
        let q: f64 = args.option_or("q", 0.3)?;
        if !(0.0..=1.0).contains(&q) {
            return Err(ArgsError(format!("--q must be in [0, 1], got {q}")));
        }
        let bound: u64 = args.option_or("bound", 4)?;
        if bound < 1 {
            return Err(ArgsError("--bound must be at least 1".into()));
        }
        Ok(CommonOpts {
            seed: args.option_or("seed", 0)?,
            q,
            bound,
            metrics_out: args.option("metrics-out").map(str::to_string),
            trace_out: args.option("trace-out").map(str::to_string),
            metrics_summary: args.flag("metrics"),
        })
    }

    /// True if any metrics sink was requested (file export or summary).
    pub fn wants_metrics(&self) -> bool {
        self.metrics_out.is_some() || self.metrics_summary
    }

    /// True if a trace sink was requested.
    pub fn wants_trace(&self) -> bool {
        self.trace_out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positionals_and_options() {
        let a = Args::parse(["attack", "abp", "--seed", "7", "--diagram"], &["diagram"]).unwrap();
        assert_eq!(a.positional(0), Some("attack"));
        assert_eq!(a.positional(1), Some("abp"));
        assert_eq!(a.positional_count(), 2);
        assert_eq!(a.option("seed"), Some("7"));
        assert!(a.flag("diagram"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn typed_options_with_defaults() {
        let a = Args::parse(["--q", "0.25"], &[]).unwrap();
        assert_eq!(a.option_or("q", 0.5f64).unwrap(), 0.25);
        assert_eq!(a.option_or("seed", 42u64).unwrap(), 42);
        assert!(a.option_or::<u64>("q", 0).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(["--seed"], &[]).unwrap_err();
        assert!(err.to_string().contains("--seed"));
    }

    #[test]
    fn empty_input_is_fine() {
        let a = Args::parse(Vec::<String>::new(), &[]).unwrap();
        assert_eq!(a.positional(0), None);
    }

    #[test]
    fn common_opts_defaults_and_overrides() {
        let a = Args::parse(Vec::<String>::new(), &[]).unwrap();
        let opts = CommonOpts::from_args(&a).unwrap();
        assert_eq!(opts.seed, 0);
        assert_eq!(opts.bound, 4);
        assert!((opts.q - 0.3).abs() < 1e-12);
        assert!(!opts.wants_metrics());
        assert!(!opts.wants_trace());

        let a = Args::parse(
            [
                "--seed",
                "7",
                "--q",
                "0.5",
                "--bound",
                "2",
                "--metrics-out",
                "m.json",
                "--trace-out",
                "t.json",
                "--metrics",
            ],
            &["metrics"],
        )
        .unwrap();
        let opts = CommonOpts::from_args(&a).unwrap();
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.bound, 2);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert!(opts.metrics_summary);
        assert!(opts.wants_metrics());
        assert!(opts.wants_trace());
    }

    #[test]
    fn common_opts_reject_out_of_range_values() {
        for raw in [&["--q", "1.5"][..], &["--q", "-0.1"], &["--bound", "0"]] {
            let a = Args::parse(raw.iter().map(|s| s.to_string()), &[]).unwrap();
            let err = CommonOpts::from_args(&a).unwrap_err();
            assert!(err.0.contains(&raw[0][2..]), "{err:?}");
        }
    }
}
