//! A multipath virtual link: per-route FIFO, globally non-FIFO.

use nonfifo_channel::{Channel, ChannelIntrospect, FaultObserver};
use nonfifo_ioa::{CopyId, Dir, Header, Packet};
use nonfifo_rng::StdRng;
use std::collections::VecDeque;

/// How packets are sprayed across routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Route `i`, `i+1`, … cyclically (deterministic multipath).
    RoundRobin,
    /// Uniformly random route per packet (seeded).
    Random,
}

#[derive(Debug, Clone)]
struct Route {
    latency: u64,
    // (packet, copy, deliverable_at); FIFO per route.
    queue: VecDeque<(Packet, CopyId, u64)>,
    failed: bool,
}

/// A virtual link made of parallel FIFO routes with distinct latencies.
///
/// The spread of latencies controls "how non-FIFO" the link is: with one
/// route (or equal latencies) it is FIFO; with a wide spread a packet on a
/// slow route is overtaken by everything sent later on fast routes — the
/// stale copies the paper's adversary needs arise naturally.
///
/// # Example
///
/// ```
/// use nonfifo_channel::Channel;
/// use nonfifo_ioa::{Dir, Header, Packet};
/// use nonfifo_transport::VirtualLinkBuilder;
///
/// let mut link = VirtualLinkBuilder::new(Dir::Forward)
///     .route(0)   // fast path
///     .route(5)   // slow path
///     .build();
/// let a = link.send(Packet::header_only(Header::new(0))); // fast route
/// let b = link.send(Packet::header_only(Header::new(1))); // slow route
/// let c = link.send(Packet::header_only(Header::new(2))); // fast route
/// // The fast-route packets arrive first; the slow one is overtaken.
/// assert_eq!(link.poll_deliver(), Some((Packet::header_only(Header::new(0)), a)));
/// assert_eq!(link.poll_deliver(), Some((Packet::header_only(Header::new(2)), c)));
/// assert_eq!(link.poll_deliver(), None); // b needs 5 ticks
/// for _ in 0..5 { link.tick(); }
/// assert_eq!(link.poll_deliver(), Some((Packet::header_only(Header::new(1)), b)));
/// ```
#[derive(Debug, Clone)]
pub struct VirtualLink {
    dir: Dir,
    routes: Vec<Route>,
    policy: RoutePolicy,
    rng: StdRng,
    next_route: usize,
    now: u64,
    next_copy: u64,
    sent: u64,
    delivered: u64,
    drops: Vec<(Packet, CopyId)>,
}

/// Builder for [`VirtualLink`].
#[derive(Debug, Clone)]
pub struct VirtualLinkBuilder {
    dir: Dir,
    latencies: Vec<u64>,
    policy: RoutePolicy,
    seed: u64,
}

impl VirtualLinkBuilder {
    /// Starts a builder for a link in direction `dir`.
    pub fn new(dir: Dir) -> Self {
        VirtualLinkBuilder {
            dir,
            latencies: Vec::new(),
            policy: RoutePolicy::RoundRobin,
            seed: 0,
        }
    }

    /// Adds a route with the given latency (in ticks).
    pub fn route(mut self, latency: u64) -> Self {
        self.latencies.push(latency);
        self
    }

    /// Sets the spraying policy (default round-robin).
    pub fn policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the RNG seed for [`RoutePolicy::Random`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the link.
    ///
    /// # Panics
    ///
    /// Panics if no routes were added.
    pub fn build(self) -> VirtualLink {
        assert!(
            !self.latencies.is_empty(),
            "a link needs at least one route"
        );
        VirtualLink {
            dir: self.dir,
            routes: self
                .latencies
                .into_iter()
                .map(|latency| Route {
                    latency,
                    queue: VecDeque::new(),
                    failed: false,
                })
                .collect(),
            policy: self.policy,
            rng: StdRng::seed_from_u64(self.seed),
            next_route: 0,
            now: 0,
            next_copy: 0,
            sent: 0,
            delivered: 0,
            drops: Vec::new(),
        }
    }
}

impl VirtualLink {
    /// Number of routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Fails route `index`: everything queued on it is dropped and future
    /// traffic avoids it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or if this would fail the last
    /// live route (the link must keep satisfying PL2-style liveness).
    pub fn fail_route(&mut self, index: usize) {
        assert!(index < self.routes.len(), "route {index} out of range");
        let live = self.routes.iter().filter(|r| !r.failed).count();
        assert!(
            live > 1 || self.routes[index].failed,
            "cannot fail the last live route"
        );
        let route = &mut self.routes[index];
        if route.failed {
            return;
        }
        route.failed = true;
        for (packet, copy, _) in route.queue.drain(..) {
            self.drops.push((packet, copy));
        }
    }

    fn pick_route(&mut self) -> usize {
        let live: Vec<usize> = self
            .routes
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.failed)
            .map(|(i, _)| i)
            .collect();
        match self.policy {
            RoutePolicy::RoundRobin => {
                let idx = live[self.next_route % live.len()];
                self.next_route = (self.next_route + 1) % live.len();
                idx
            }
            RoutePolicy::Random => live[self.rng.gen_range(0..live.len())],
        }
    }
}

impl Channel for VirtualLink {
    fn dir(&self) -> Dir {
        self.dir
    }

    fn send(&mut self, packet: Packet) -> CopyId {
        let copy = CopyId::from_raw(self.next_copy);
        self.next_copy += 1;
        self.sent += 1;
        let i = self.pick_route();
        let ready = self.now + self.routes[i].latency;
        self.routes[i].queue.push_back((packet, copy, ready));
        copy
    }

    fn poll_deliver(&mut self) -> Option<(Packet, CopyId)> {
        // Deliver the ready packet with the earliest deliverable time;
        // ties break by route index (deterministic).
        let now = self.now;
        let best = self
            .routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.queue
                    .front()
                    .filter(|&&(_, _, ready)| ready <= now)
                    .map(|&(_, _, ready)| (ready, i))
            })
            .min()?;
        let (_, i) = best;
        let (packet, copy, _) = self.routes[i].queue.pop_front().expect("front exists");
        self.delivered += 1;
        Some((packet, copy))
    }

    fn tick(&mut self) {
        self.now += 1;
    }

    fn in_transit_len(&self) -> usize {
        self.routes.iter().map(|r| r.queue.len()).sum()
    }

    fn total_sent(&self) -> u64 {
        self.sent
    }

    fn total_delivered(&self) -> u64 {
        self.delivered
    }
}

impl ChannelIntrospect for VirtualLink {
    fn header_copies(&self, h: Header) -> usize {
        self.routes
            .iter()
            .flat_map(|r| r.queue.iter())
            .filter(|(p, _, _)| p.header() == h)
            .count()
    }

    fn packet_copies(&self, p: Packet) -> usize {
        self.routes
            .iter()
            .flat_map(|r| r.queue.iter())
            .filter(|(q, _, _)| *q == p)
            .count()
    }

    fn header_copies_older_than(&self, h: Header, watermark: CopyId) -> usize {
        self.routes
            .iter()
            .flat_map(|r| r.queue.iter())
            .filter(|(p, c, _)| p.header() == h && *c < watermark)
            .count()
    }
}

impl FaultObserver for VirtualLink {
    fn drain_drops(&mut self) -> Vec<(Packet, CopyId)> {
        std::mem::take(&mut self.drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_ioa::{Event, Execution};

    fn p(h: u32) -> Packet {
        Packet::header_only(Header::new(h))
    }

    fn two_path(spread: u64) -> VirtualLink {
        VirtualLinkBuilder::new(Dir::Forward)
            .route(0)
            .route(spread)
            .build()
    }

    #[test]
    fn single_route_is_fifo() {
        let mut link = VirtualLinkBuilder::new(Dir::Forward).route(2).build();
        for i in 0..10 {
            link.send(p(i));
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            link.tick();
            while let Some((pkt, _)) = link.poll_deliver() {
                got.push(pkt.header().index());
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn latency_spread_reorders() {
        let mut link = two_path(4);
        link.send(p(0)); // fast
        link.send(p(1)); // slow
        link.send(p(2)); // fast
        let mut got = Vec::new();
        for _ in 0..10 {
            while let Some((pkt, _)) = link.poll_deliver() {
                got.push(pkt.header().index());
            }
            link.tick();
        }
        assert_eq!(got, vec![0, 2, 1], "slow-route packet overtaken");
    }

    #[test]
    fn per_route_fifo_is_preserved() {
        let mut link = two_path(3);
        for i in 0..40 {
            link.send(p(i));
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            while let Some((pkt, _)) = link.poll_deliver() {
                got.push(pkt.header().index());
            }
            link.tick();
        }
        assert_eq!(got.len(), 40);
        // Even-index packets went to route 0, odd to route 1 (round robin);
        // each class must arrive in order.
        let evens: Vec<u32> = got.iter().copied().filter(|x| x % 2 == 0).collect();
        let odds: Vec<u32> = got.iter().copied().filter(|x| x % 2 == 1).collect();
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pl1_holds_with_failures() {
        let mut link = VirtualLinkBuilder::new(Dir::Forward)
            .route(0)
            .route(2)
            .route(5)
            .policy(RoutePolicy::Random)
            .seed(9)
            .build();
        let mut exec = Execution::new();
        for i in 0..60 {
            let pkt = p(i % 4);
            let copy = link.send(pkt);
            exec.push(Event::SendPkt {
                dir: Dir::Forward,
                packet: pkt,
                copy,
            });
            if i == 30 {
                link.fail_route(2);
            }
            while let Some((pkt, copy)) = link.poll_deliver() {
                exec.push(Event::ReceivePkt {
                    dir: Dir::Forward,
                    packet: pkt,
                    copy,
                });
            }
            for (pkt, copy) in link.drain_drops() {
                exec.push(Event::DropPkt {
                    dir: Dir::Forward,
                    packet: pkt,
                    copy,
                });
            }
            link.tick();
        }
        nonfifo_ioa::spec::check_pl1(&exec, Dir::Forward).expect("PL1");
    }

    #[test]
    fn failed_route_traffic_is_dropped_once() {
        let mut link = two_path(10);
        link.send(p(0)); // fast route
        link.send(p(1)); // slow route
        link.fail_route(1);
        assert_eq!(link.drain_drops().len(), 1);
        assert_eq!(link.in_transit_len(), 1);
        // Idempotent.
        link.fail_route(1);
        assert!(link.drain_drops().is_empty());
        // All future traffic uses the surviving route.
        link.send(p(2));
        link.send(p(3));
        let mut got = Vec::new();
        while let Some((pkt, _)) = link.poll_deliver() {
            got.push(pkt.header().index());
        }
        assert_eq!(got, vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "last live route")]
    fn cannot_fail_everything() {
        let mut link = two_path(1);
        link.fail_route(0);
        link.fail_route(1);
    }

    #[test]
    #[should_panic(expected = "at least one route")]
    fn builder_rejects_empty() {
        let _ = VirtualLinkBuilder::new(Dir::Forward).build();
    }
}
