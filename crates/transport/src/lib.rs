//! Transport-layer extension of the `nonfifo` reproduction.
//!
//! The paper closes its introduction with: *"we remark that all our results
//! can be extended to transport layer protocols (see \[Tan81\]) over non-FIFO
//! virtual links. Recall that the task of the transport layer is to
//! establish reliable host to host communication."* This crate supplies the
//! substrate for that remark: a [`VirtualLink`] — a multi-hop, multi-path
//! network path whose non-FIFO behaviour *emerges* from routing rather than
//! being assumed. Each route is individually FIFO with its own latency;
//! spraying packets across routes with different latencies reorders them,
//! and a route failure deletes everything queued on it.
//!
//! A `VirtualLink` implements [`Channel`](nonfifo_channel::Channel), so every data-link protocol in
//! the workspace doubles as a transport protocol over it, and every theorem
//! of the paper bites identically: bounded-header transport protocols alias
//! under enough latency spread (experiment E10), unbounded sequence numbers
//! stay correct.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod virtual_link;

pub use virtual_link::{RoutePolicy, VirtualLink, VirtualLinkBuilder};
