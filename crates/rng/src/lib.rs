//! Self-contained deterministic randomness for the `nonfifo` workspace.
//!
//! Every stochastic component of the reproduction — probabilistic channels,
//! randomized adversary schedules, Monte-Carlo experiments, and the chaos
//! fault-injection layer — must be **bit-reproducible from a seed alone**,
//! on any machine, forever. An external PRNG crate can change its stream
//! between versions (and `rand`'s `StdRng` explicitly reserves the right
//! to); this crate pins the generator in-tree instead:
//!
//! - seed expansion: SplitMix64 (Steele, Lea & Flood 2014),
//! - stream: xoshiro256++ 1.0 (Blackman & Vigna 2019), public domain
//!   reference constants,
//! - `f64` doubles take the conventional 53 high bits.
//!
//! The API mirrors the small slice of `rand` the workspace used
//! (`seed_from_u64`, `gen_bool`, `gen_range`), so call sites read the same.
//!
//! # Example
//!
//! ```
//! use nonfifo_rng::StdRng;
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The workspace's standard deterministic generator: xoshiro256++ seeded
/// through SplitMix64.
///
/// `Clone` forks the full state: a clone replays the identical stream, which
/// the boundness oracle and the chaos replay machinery rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Expands a 64-bit seed into the full 256-bit state via SplitMix64
    /// (the seeding procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next 64 uniformly distributed bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform double in `[0, 1)` (53 high bits of one output).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: true with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` (NaN included).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        // Consume one draw even at the endpoints so stream positions never
        // depend on the probability value.
        let draw = self.next_f64();
        draw < p
    }

    /// A uniform index in `[range.start, range.end)`, via Lemire-style
    /// rejection so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_below(span) as usize)
    }

    /// A uniform draw in `[0, bound)` for `bound ≥ 1`.
    fn next_below(&mut self, bound: u64) -> u64 {
        // Rejection sampling over the top bits: unbiased and cheap for the
        // small bounds the workspace uses.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // xoshiro256++ with SplitMix64(0) seeding: the stream must never
        // change — chaos replays and experiment tables depend on it.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // Distinct seeds give distinct streams.
        assert_ne!(first[0], StdRng::seed_from_u64(1).next_u64());
    }

    #[test]
    fn stream_is_pinned() {
        // Golden values: if these move, every seeded experiment in the
        // repository silently changes. Do not update without a changelog
        // entry.
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 15021278609987233951);
        assert_eq!(rng.next_u64(), 5881210131331364753);
    }

    #[test]
    fn doubles_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_frequencies() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..5)] += 1;
        }
        for c in counts {
            assert!((1600..2400).contains(&c), "counts = {counts:?}");
        }
        assert_eq!(rng.gen_range(3..4), 3);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = StdRng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        StdRng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn rejects_empty_range() {
        StdRng::seed_from_u64(0).gen_range(3..3);
    }
}
