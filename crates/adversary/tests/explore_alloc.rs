//! Allocation regression pin for the exploration hot path.
//!
//! The zero-copy engine promises that steady-state expansion — pop a
//! recycled [`System`], refill it with `assign_from`, apply an action, hash
//! it, merge it — performs no heap allocation once the arena's buffers have
//! warmed up. This pin makes that promise falsifiable: a counting global
//! allocator measures a warm exploration end to end, and the budget is a
//! small constant (the per-run root-system setup), not a function of the
//! hundreds of expansions the scope performs. A regression that puts even
//! one allocation back into the per-expansion loop blows the budget by an
//! order of magnitude.

use nonfifo_adversary::{ExploreArena, ExploreConfig, ParallelExplorer};
use nonfifo_protocols::SequenceNumber;
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static TRACED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static IN_HOOK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn maybe_trace() {
    if !TRACE.load(Ordering::Relaxed) {
        return;
    }
    IN_HOOK.with(|flag| {
        if flag.get() {
            return;
        }
        flag.set(true);
        if TRACED.fetch_add(1, Ordering::Relaxed).is_multiple_of(97) {
            let bt = std::backtrace::Backtrace::force_capture();
            eprintln!("=== sampled allocation ===\n{bt}");
        }
        flag.set(false);
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        maybe_trace();
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        maybe_trace();
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_exploration_allocates_a_small_constant() {
    // The sequence-number certificate scope: a few hundred expansions, no
    // violation (so no schedule materialization muddies the count), single
    // thread (so no spawn overhead either — the promise under test is the
    // expansion loop itself).
    let explorer = ParallelExplorer::new(1);
    let cfg = ExploreConfig::default();
    let mut arena = ExploreArena::new();

    // Warm-up: the first runs grow every buffer the engine will ever need
    // for this scope (shards, pools, scratches, the path arena).
    let cold = explorer.explore_in(&SequenceNumber::new(), &cfg, &mut arena);
    explorer.explore_in(&SequenceNumber::new(), &cfg, &mut arena);

    let before = allocations();
    let warm = explorer.explore_in(&SequenceNumber::new(), &cfg, &mut arena);
    let spent = allocations() - before;

    assert_eq!(
        cold.report(),
        warm.report(),
        "warming must not change results"
    );

    // Per-run constant: constructing the root system (boxed automata) and
    // nothing else. The scope performs several hundred expansions, so a
    // single stray allocation per expansion lands far above this bar.
    assert!(
        spent <= 32,
        "warm exploration allocated {spent} times; the expansion loop is \
         supposed to run allocation-free on recycled arena buffers"
    );
}

#[test]
#[ignore]
fn diagnose_allocation_sources() {
    let explorer = ParallelExplorer::new(1);
    let cfg = ExploreConfig::default();
    let mut arena = ExploreArena::new();
    for run in 0..6 {
        let before = allocations();
        explorer.explore_in(&SequenceNumber::new(), &cfg, &mut arena);
        println!("run {run}: {} allocations", allocations() - before);
    }
}
