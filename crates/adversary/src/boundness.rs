//! Empirical boundness and product-state counting — the Theorem 2.1
//! experiments.
//!
//! Theorem 2.1: any protocol `(Aᵗ, Aʳ)` is `kₜ·kᵣ`-bounded, where `kₜ` and
//! `kᵣ` are the automata state counts — boundness is an abstraction of
//! space. We probe this empirically: drive a protocol through a randomized
//! (seeded) channel schedule, sample the boundness extension after every
//! `send_msg` via the [`BoundnessOracle`], and count the distinct product
//! control states `(fingerprint(Aᵗ), fingerprint(Aʳ))` visited. For a
//! finite-state protocol the maximum extension length must stay below the
//! product-state count; for protocols with unbounded state (the naive
//! sequence-number protocol) the product count itself grows with `n` — the
//! space the paper says they must pay.

use crate::oracle::BoundnessOracle;
use crate::system::{Disposition, System};
use nonfifo_ioa::SpecViolation;
use nonfifo_protocols::DataLink;
use nonfifo_rng::StdRng;
use std::collections::BTreeSet;

/// Configuration of a boundness probe.
#[derive(Debug, Clone, Copy)]
pub struct BoundnessProbeConfig {
    /// Messages to sample.
    pub messages: u64,
    /// Probability a fresh forward copy is delivered (vs. parked) under
    /// the randomized schedule.
    pub deliver_probability: f64,
    /// RNG seed.
    pub seed: u64,
    /// Scheduler steps allowed per message.
    pub max_steps_per_message: u64,
    /// Oracle step budget.
    pub oracle_steps: u64,
}

impl Default for BoundnessProbeConfig {
    fn default() -> Self {
        BoundnessProbeConfig {
            messages: 32,
            deliver_probability: 0.5,
            seed: 0,
            max_steps_per_message: 20_000,
            oracle_steps: 100_000,
        }
    }
}

/// The result of a boundness probe.
#[derive(Debug, Clone)]
pub struct BoundnessEstimate {
    /// Extension lengths (`spᵗ→ʳ(β)`) sampled after each `send_msg`.
    pub extension_samples: Vec<u64>,
    /// Distinct transmitter control states observed.
    pub tx_states: u64,
    /// Distinct receiver control states observed.
    pub rx_states: u64,
    /// Distinct product states observed.
    pub product_states: u64,
    /// Safety violation, if one occurred under the randomized schedule.
    pub violation: Option<SpecViolation>,
}

impl BoundnessEstimate {
    /// The empirical boundness: the largest sampled extension.
    pub fn max_extension(&self) -> u64 {
        self.extension_samples.iter().copied().max().unwrap_or(0)
    }

    /// Theorem 2.1's inequality, on the observed quantities: the empirical
    /// boundness is at most the observed product-state count. (Observed
    /// states lower-bound the true `kₜ·kᵣ`, so a `true` here is consistent
    /// with — not a proof of — the theorem; a `false` for a genuinely
    /// finite-state protocol would refute the implementation.)
    pub fn consistent_with_theorem_2_1(&self) -> bool {
        self.max_extension() <= self.tx_states * self.rx_states
    }
}

/// Probes the boundness of a protocol under a randomized schedule.
///
/// # Example
///
/// ```
/// use nonfifo_adversary::boundness::{probe, BoundnessProbeConfig};
/// use nonfifo_protocols::AlternatingBit;
///
/// let est = probe(&AlternatingBit::new(), &BoundnessProbeConfig::default());
/// assert!(est.consistent_with_theorem_2_1());
/// ```
pub fn probe(proto: &dyn DataLink, cfg: &BoundnessProbeConfig) -> BoundnessEstimate {
    let oracle = BoundnessOracle::new(cfg.oracle_steps);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sys = System::new(proto);
    let mut extension_samples = Vec::new();
    let mut tx_states = BTreeSet::new();
    let mut rx_states = BTreeSet::new();
    let mut product_states = BTreeSet::new();

    let mut note_states = |sys: &System| {
        let t = sys.tx.state_fingerprint();
        let r = sys.rx.state_fingerprint();
        tx_states.insert(t);
        rx_states.insert(r);
        product_states.insert((t, r));
    };

    note_states(&sys);
    'outer: for _ in 0..cfg.messages {
        sys.send_msg();
        // Sample the boundness extension for the outstanding message.
        if let Some(ext) = oracle.extension(&sys) {
            extension_samples.push(ext.forward_sends());
        }
        let mut steps = 0;
        while sys.counts().rm < sys.counts().sm {
            if steps >= cfg.max_steps_per_message {
                // Fall back to an optimal channel so the run can continue.
                if !sys.run_to_quiescence(cfg.max_steps_per_message) {
                    break 'outer;
                }
                break;
            }
            let deliver = cfg.deliver_probability;
            sys.step(|_pkt, _copy, _ch| {
                if rng.gen_bool(deliver) {
                    Disposition::Deliver
                } else {
                    Disposition::Park
                }
            });
            note_states(&sys);
            if sys.violation().is_some() {
                break 'outer;
            }
            steps += 1;
        }
    }

    BoundnessEstimate {
        extension_samples,
        tx_states: tx_states.len() as u64,
        rx_states: rx_states.len() as u64,
        product_states: product_states.len() as u64,
        violation: sys.violation(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{AlternatingBit, NaiveCycle, SequenceNumber};

    #[test]
    fn alternating_bit_is_tightly_bounded() {
        let est = probe(&AlternatingBit::new(), &BoundnessProbeConfig::default());
        assert_eq!(est.violation, None, "loss-only schedule is its domain");
        // Control states: bit × pending for tx, expected bit for rx.
        assert!(est.tx_states <= 4, "tx states {}", est.tx_states);
        assert!(est.rx_states <= 2, "rx states {}", est.rx_states);
        // Its extensions are a single packet.
        assert_eq!(est.max_extension(), 1);
        assert!(est.consistent_with_theorem_2_1());
    }

    #[test]
    fn naive_cycle_states_scale_with_k() {
        let est = probe(&NaiveCycle::new(4), &BoundnessProbeConfig::default());
        assert_eq!(est.violation, None);
        assert!(est.tx_states <= 8);
        assert!(est.rx_states <= 4);
        assert!(est.consistent_with_theorem_2_1());
    }

    #[test]
    fn sequence_number_states_grow_with_messages() {
        // The paper's point: n headers buy O(log n) space — the automaton
        // is NOT finite-state, and the product-state count grows with n.
        let cfg = BoundnessProbeConfig {
            messages: 24,
            ..BoundnessProbeConfig::default()
        };
        let est = probe(&SequenceNumber::new(), &cfg);
        assert_eq!(est.violation, None);
        assert!(
            est.rx_states >= 24,
            "seqnum receiver visits a state per message, got {}",
            est.rx_states
        );
        // Extensions stay constant-size even though states grow.
        assert!(est.max_extension() <= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = BoundnessProbeConfig::default();
        let a = probe(&AlternatingBit::new(), &cfg);
        let b = probe(&AlternatingBit::new(), &cfg);
        assert_eq!(a.extension_samples, b.extension_samples);
        assert_eq!(a.product_states, b.product_states);
    }
}
