//! The unified exploration facade.
//!
//! Historically callers picked an engine by picking an entry point —
//! [`explore_with_stats`](crate::explore_with_stats) for the sequential
//! oracle, [`ParallelExplorer`] for the level-synchronized engine — and
//! each entry point hard-wired its own visited-set construction. The
//! [`Explorer`] facade owns all three decisions in one place: the
//! [`ExploreConfig`] scope, the engine choice, and the [`VisitedSpec`]
//! tier (plus the arena the tier lives in), with telemetry attached once
//! and flowing to whichever engine runs.
//!
//! The historical entry points remain as thin delegating wrappers —
//! `explore_with_stats` builds a default facade, and
//! [`ParallelExplorer::explore`] remains thin over
//! [`ParallelExplorer::explore_in`], the engine the facade's parallel path
//! drives — so every existing pin and differential harness keeps its
//! meaning.
//!
//! ```
//! use nonfifo_adversary::{ExploreConfig, Explorer, VisitedSpec};
//! use nonfifo_protocols::SequenceNumber;
//!
//! // Sequential engine, exact disk-spilling tier under a 64 KiB budget:
//! // the report is byte-identical to the default in-RAM run.
//! let mut tiered = Explorer::new(ExploreConfig::default())
//!     .visited(VisitedSpec::tiered(64 * 1024));
//! let mut ram = Explorer::new(ExploreConfig::default());
//! let proto = SequenceNumber::new();
//! assert_eq!(tiered.explore(&proto).report(), ram.explore(&proto).report());
//! ```

use crate::codec::EncodedState;
use crate::explore::{run_sequential, ExploreConfig, ExploreOutcome, ExploreStats};
use crate::explore_par::{ExploreArena, ParallelExplorer};
use crate::visited::{VisitedSet, VisitedSpec};
use nonfifo_protocols::DataLink;
use nonfifo_telemetry::{Registry, TraceSink};
use std::sync::Arc;
use std::time::Instant;

/// One front door for exhaustive exploration: owns the scope config, the
/// engine choice (sequential oracle or level-synchronized parallel), the
/// visited-tier spec, the reusable [`ExploreArena`], and the telemetry
/// sinks. Build it fluent-style, then call
/// [`explore`](Explorer::explore) any number of times — runs reuse the
/// arena's warmed buffers, and after each run the visited set stays
/// readable through [`visited_set`](Explorer::visited_set) for spill and
/// false-dedup introspection.
#[derive(Debug)]
pub struct Explorer {
    cfg: ExploreConfig,
    /// `None` = the sequential oracle; `Some(n)` = the parallel engine on
    /// `n` resolved worker threads.
    threads: Option<usize>,
    spec: VisitedSpec,
    registry: Option<Arc<Registry>>,
    trace: Option<Arc<TraceSink>>,
    arena: ExploreArena,
    last_stats: ExploreStats,
}

impl Explorer {
    /// A facade over `cfg` in the default configuration: sequential
    /// engine, exact in-RAM visited tier, no telemetry.
    pub fn new(cfg: ExploreConfig) -> Self {
        Explorer {
            cfg,
            threads: None,
            spec: VisitedSpec::Ram,
            registry: None,
            trace: None,
            arena: ExploreArena::new(),
            last_stats: ExploreStats::default(),
        }
    }

    /// Switches to the parallel engine on `threads` workers (`0` = one per
    /// available core, resolved immediately).
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = Some(ParallelExplorer::new(threads).threads());
        self
    }

    /// Switches (back) to the sequential oracle engine.
    pub fn sequential(mut self) -> Self {
        self.threads = None;
        self
    }

    /// Selects the visited tier runs deduplicate through. Exact tiers
    /// ([`VisitedSpec::is_exact`]) produce reports byte-identical to the
    /// default at any budget; the probabilistic tier's certificates hold
    /// modulo [`VisitedSet::false_dedup_bound`].
    pub fn visited(mut self, spec: VisitedSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Attaches a metrics registry (and optionally a trace sink) that
    /// every subsequent run records into, whichever engine runs.
    /// Telemetry never feeds back into the search — outcomes stay
    /// byte-identical with it on or off.
    pub fn with_telemetry(
        mut self,
        registry: Arc<Registry>,
        trace: Option<Arc<TraceSink>>,
    ) -> Self {
        self.registry = Some(registry);
        self.trace = trace;
        self
    }

    /// The scope this facade explores.
    pub fn config(&self) -> &ExploreConfig {
        &self.cfg
    }

    /// Resolved worker threads of the parallel engine, or `None` for the
    /// sequential oracle.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The visited-tier spec runs are built on.
    pub fn visited_spec(&self) -> VisitedSpec {
        self.spec
    }

    /// The visited set of the most recent run: spill count, disk bytes,
    /// peak resident bytes, and — on the probabilistic tier — the
    /// false-dedup bound the certificate must be annotated with.
    pub fn visited_set(&self) -> &dyn VisitedSet {
        self.arena.visited()
    }

    /// Side statistics of the most recent run. The parallel engine reports
    /// its pruning through telemetry counters instead, so this is
    /// meaningful after sequential runs only.
    pub fn last_stats(&self) -> ExploreStats {
        self.last_stats
    }

    /// Explores `proto` within the configured scope. Same outcome contract
    /// as [`explore`](crate::explore()): shortest counterexample,
    /// certificate, or truncation — deterministic in (protocol, config,
    /// spec), whatever the engine or thread count.
    pub fn explore(&mut self, proto: &dyn DataLink) -> ExploreOutcome {
        self.explore_with_stats(proto).0
    }

    /// [`explore`](Explorer::explore), also returning the run's
    /// [`ExploreStats`].
    pub fn explore_with_stats(&mut self, proto: &dyn DataLink) -> (ExploreOutcome, ExploreStats) {
        self.arena.install_visited(self.spec);
        self.last_stats = ExploreStats::default();
        let outcome = match self.threads {
            Some(threads) => {
                let mut engine = ParallelExplorer::new(threads);
                if let Some(registry) = &self.registry {
                    engine = engine.with_telemetry(Arc::clone(registry), self.trace.clone());
                }
                engine.explore_in(proto, &self.cfg, &mut self.arena)
            }
            None => {
                let started = Instant::now();
                self.arena.visited_mut().clear();
                let (outcome, stats) = run_sequential(proto, &self.cfg, self.arena.visited_mut());
                self.last_stats = stats;
                if let Some(registry) = &self.registry {
                    // The sequential oracle is uninstrumented (it is the
                    // reference implementation); record the coarse counters
                    // after the fact so metrics are meaningful on both
                    // engines.
                    registry.counter("explore.pruned_states").add(stats.pruned);
                    if let ExploreOutcome::Exhausted { states }
                    | ExploreOutcome::Truncated { states } = &outcome
                    {
                        registry.counter("explore.states").add(*states as u64);
                        let secs = started.elapsed().as_secs_f64();
                        if secs > 0.0 {
                            registry.set_value("explore.states_per_sec", *states as f64 / secs);
                        }
                    }
                    let visited = self.arena.visited();
                    registry
                        .gauge("explore.visited_bytes")
                        .set(visited.peak_memory_bytes() as u64);
                    registry
                        .gauge("explore.codec_bytes_per_state")
                        .set(EncodedState::BYTES as u64);
                    if visited.spills() > 0 {
                        registry
                            .counter("explore.visited_spills")
                            .add(visited.spills());
                    }
                    if visited.disk_runs() > 0 {
                        registry.gauge("explore.disk_runs").set(visited.disk_runs());
                    }
                    if visited.compaction_bytes() > 0 {
                        registry
                            .counter("explore.compaction_bytes")
                            .add(visited.compaction_bytes());
                    }
                }
                outcome
            }
        };
        (outcome, self.last_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_with_stats, Discipline};
    use nonfifo_protocols::{AlternatingBit, SequenceNumber};

    #[test]
    fn facade_defaults_match_the_historical_entry_points() {
        let cfg = ExploreConfig::default();
        for proto in [
            &SequenceNumber::new() as &dyn DataLink,
            &AlternatingBit::new(),
        ] {
            let (legacy, legacy_stats) = explore_with_stats(proto, &cfg);
            let mut facade = Explorer::new(cfg);
            let (outcome, stats) = facade.explore_with_stats(proto);
            assert_eq!(legacy.report(), outcome.report(), "{}", proto.name());
            assert_eq!(legacy_stats, stats);

            let par = ParallelExplorer::new(4).explore(proto, &cfg);
            let mut par_facade = Explorer::new(cfg).parallel(4);
            assert_eq!(
                par.report(),
                par_facade.explore(proto).report(),
                "{}",
                proto.name()
            );
        }
    }

    #[test]
    fn tier_choice_is_invisible_in_exact_modes() {
        let cfg = ExploreConfig {
            discipline: Discipline::LossyFifo,
            ..ExploreConfig::default()
        };
        let proto = AlternatingBit::new();
        let reference = Explorer::new(cfg).explore(&proto).report();
        // A 128-byte budget forces a spill every dozen states in this scope.
        let mut tiered = Explorer::new(cfg).visited(VisitedSpec::tiered(128));
        assert_eq!(tiered.explore(&proto).report(), reference);
        assert!(
            tiered.visited_set().spills() > 0,
            "tiny budget must have spilled"
        );
        let mut par_tiered = Explorer::new(cfg)
            .parallel(4)
            .visited(VisitedSpec::tiered(128));
        assert_eq!(par_tiered.explore(&proto).report(), reference);
    }

    #[test]
    fn facade_runs_reuse_one_arena_across_engines_and_tiers() {
        let cfg = ExploreConfig::default();
        let proto = SequenceNumber::new();
        let reference = Explorer::new(cfg).explore(&proto).report();
        let mut facade = Explorer::new(cfg);
        for _ in 0..2 {
            facade = facade.sequential();
            assert_eq!(facade.explore(&proto).report(), reference);
            facade = facade.parallel(2);
            assert_eq!(facade.explore(&proto).report(), reference);
            facade = facade.visited(VisitedSpec::tiered(4096));
            assert_eq!(facade.explore(&proto).report(), reference);
            facade = facade.visited(VisitedSpec::Ram);
        }
    }

    #[test]
    fn probabilistic_runs_report_a_bound() {
        let cfg = ExploreConfig::default();
        let proto = SequenceNumber::new();
        let mut facade = Explorer::new(cfg).visited(VisitedSpec::Probabilistic {
            memory_budget: 1 << 20,
        });
        let outcome = facade.explore(&proto);
        let bound = facade
            .visited_set()
            .false_dedup_bound()
            .expect("probabilistic tier reports a bound");
        assert!((0.0..1.0).contains(&bound));
        // An ample filter over this small scope misses nothing: the state
        // count matches the exact engines'.
        let exact = Explorer::new(cfg).explore(&proto);
        assert_eq!(outcome.report(), exact.report());
    }
}
