//! Counterexample shrinking: machine-found attack schedules, minimised.
//!
//! The explorers already return *shortest* schedules, but other producers
//! do not: chaos stall repros, hand-edited scripts, and falsifier-derived
//! schedules carry dead weight — parks that drive nothing, deliveries of
//! copies nobody confuses, whole send/quiesce rounds that the violation
//! never needed. [`shrink`] greedily deletes contiguous runs of actions at
//! halving granularity (delta-debugging style: whole chunks first, then
//! single steps) and keeps a candidate only if it still **replays to a
//! violation through the strict scheduler** — the same
//! [`Schedule::run`](crate::Schedule::run) a human would use, so a shrunk
//! script is a shareable, replayable artifact, not just a smaller one.
//!
//! The cascade repeats until a full pass deletes nothing, which makes
//! shrinking **idempotent**: shrinking a shrunk schedule is a no-op. The
//! result is 1-minimal at chunk granularity (no single deletable step
//! remains), not globally minimal — finding the global minimum is what the
//! exhaustive explorers are for.

use crate::schedule::{Schedule, ScheduleStep};
use nonfifo_protocols::DataLink;
use std::error::Error;
use std::fmt;

/// Why a schedule could not be shrunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ShrinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ShrinkError {}

/// The result of shrinking a violating schedule.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The shrunk schedule; replaying it against the same protocol still
    /// produces a violation.
    pub schedule: Schedule,
    /// Steps in the schedule handed in.
    pub original_steps: usize,
    /// Candidate replays attempted (the shrinker's work measure).
    pub attempts: usize,
}

impl ShrinkOutcome {
    /// Steps deleted by the shrinker.
    pub fn removed(&self) -> usize {
        self.original_steps - self.schedule.steps().len()
    }
}

fn still_violates(proto: &dyn DataLink, steps: &[ScheduleStep], attempts: &mut usize) -> bool {
    *attempts += 1;
    Schedule::run_steps(steps, proto)
        .map(|sys| sys.violation().is_some())
        .unwrap_or(false)
}

/// Greedily minimises a violating schedule against `proto`.
///
/// # Errors
///
/// Returns a [`ShrinkError`] if the input schedule does not replay to a
/// violation in the first place (there is nothing to preserve).
///
/// # Example
///
/// ```
/// use nonfifo_adversary::{shrink, Schedule};
/// use nonfifo_protocols::AlternatingBit;
///
/// // The minimal attack, padded with idle parks.
/// let padded = Schedule::parse(
///     "park\nsend\npark\ndeliver h0\npark\nsend\ndeliver h1\npark\ndeliver h0\n",
/// )
/// .unwrap();
/// let outcome = shrink(&AlternatingBit::new(), &padded).unwrap();
/// assert!(outcome.schedule.steps().len() <= 6);
/// assert!(outcome.schedule.run(&AlternatingBit::new()).unwrap().violation().is_some());
/// ```
pub fn shrink(proto: &dyn DataLink, schedule: &Schedule) -> Result<ShrinkOutcome, ShrinkError> {
    let mut attempts = 0;
    let original = schedule.steps().to_vec();
    if !still_violates(proto, &original, &mut attempts) {
        return Err(ShrinkError {
            message: "schedule does not replay to a violation; nothing to shrink".into(),
        });
    }
    let mut steps = original.clone();
    loop {
        let before = steps.len();
        // Chunk sizes walk the powers of two down to 1 so every deletable
        // run up to half the schedule fits some window.
        let mut chunk = (steps.len().next_power_of_two() / 2).max(1);
        loop {
            let mut i = 0;
            while i < steps.len() {
                let end = (i + chunk).min(steps.len());
                let mut candidate = steps.clone();
                candidate.drain(i..end);
                if still_violates(proto, &candidate, &mut attempts) {
                    // Keep the deletion and retry the same window — the
                    // steps that slid into it may be deletable too.
                    steps = candidate;
                } else {
                    i += 1;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // A full halving cascade deleted nothing: fixpoint reached. Running
        // the same deterministic cascade on this result again would also
        // delete nothing, hence idempotence.
        if steps.len() == before {
            break;
        }
    }
    Ok(ShrinkOutcome {
        schedule: Schedule::new(steps),
        original_steps: original.len(),
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{AlternatingBit, SequenceNumber};

    const PADDED_ATTACK: &str = "\
park
send
park
park
deliver h0
park
send
park
deliver h1
park
deliver h0
";

    #[test]
    fn shrunk_schedule_still_replays_to_a_violation() {
        let padded = Schedule::parse(PADDED_ATTACK).unwrap();
        let outcome = shrink(&AlternatingBit::new(), &padded).unwrap();
        assert!(outcome.removed() >= 4, "removed {}", outcome.removed());
        let sys = outcome.schedule.run(&AlternatingBit::new()).unwrap();
        assert!(sys.violation().is_some());
        assert_eq!(sys.counts().rm, sys.counts().sm + 1);
    }

    #[test]
    fn shrinking_is_idempotent() {
        let padded = Schedule::parse(PADDED_ATTACK).unwrap();
        let once = shrink(&AlternatingBit::new(), &padded).unwrap();
        let twice = shrink(&AlternatingBit::new(), &once.schedule).unwrap();
        assert_eq!(once.schedule, twice.schedule);
        assert_eq!(twice.removed(), 0);
    }

    #[test]
    fn already_minimal_schedules_are_untouched() {
        // The 6-action textbook attack has no deletable step.
        let minimal =
            Schedule::parse("send\npark\ndeliver h0\nsend\ndeliver h1\ndeliver h0\n").unwrap();
        let outcome = shrink(&AlternatingBit::new(), &minimal).unwrap();
        assert_eq!(outcome.schedule, minimal);
        assert_eq!(outcome.removed(), 0);
    }

    #[test]
    fn non_violating_schedules_are_rejected() {
        let harmless = Schedule::parse("send\nquiesce\n").unwrap();
        let err = shrink(&SequenceNumber::new(), &harmless).unwrap_err();
        assert!(err.to_string().contains("does not replay"));
        // Same for a schedule that aborts mid-run.
        let aborting = Schedule::parse("deliver h0\n").unwrap();
        assert!(shrink(&AlternatingBit::new(), &aborting).is_err());
    }

    #[test]
    fn chunk_deletion_removes_whole_dead_rounds() {
        // A full extra send/deliver round pads the middle of the attack;
        // single-step deletion alone cannot remove it (deleting only the
        // send leaves an unreplayable deliver, and vice versa), so this
        // exercises the chunk pass.
        let padded = Schedule::parse(
            "send\npark\ndeliver h0\nsend\ndeliver h1\nsend\ndeliver h0\nsend\ndeliver h1\ndeliver h0\n",
        )
        .unwrap();
        let outcome = shrink(&AlternatingBit::new(), &padded).unwrap();
        assert!(
            outcome.schedule.steps().len() <= 6,
            "left {} steps:\n{}",
            outcome.schedule.steps().len(),
            outcome.schedule.to_text()
        );
        let sys = outcome.schedule.run(&AlternatingBit::new()).unwrap();
        assert!(sys.violation().is_some());
    }
}
