//! Work distribution for thread pools: a chunked atomic claim cursor.
//!
//! [`ChunkCursor`] is the load-balancing primitive shared by the parallel
//! explorer and the campaign runner: a fixed work list of `len` items is
//! handed out to workers in `chunk`-sized slices via a single
//! `fetch_add`. There are no locks, no per-item CAS loops, and no
//! external work-stealing runtime — in keeping with the workspace's
//! zero-dependency policy. Determinism is the caller's job (workers must
//! tag results with item indices and merge in index order); the cursor
//! only guarantees that every index in `0..len` is claimed exactly once.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A lock-free chunked work cursor over a fixed-size work list.
///
/// # Example
///
/// ```
/// use nonfifo_adversary::ChunkCursor;
///
/// let cursor = ChunkCursor::new(10, 4);
/// assert_eq!(cursor.claim(), Some(0..4));
/// assert_eq!(cursor.claim(), Some(4..8));
/// assert_eq!(cursor.claim(), Some(8..10)); // final partial chunk
/// assert_eq!(cursor.claim(), None);
/// ```
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkCursor {
    /// A cursor over `len` items handed out `chunk` at a time. A `chunk`
    /// of 0 is treated as 1 (every claim must make progress).
    pub fn new(len: usize, chunk: usize) -> Self {
        ChunkCursor {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next unclaimed slice, or `None` when the work list is
    /// exhausted. Each index in `0..len` is returned exactly once across
    /// all claims, in ascending order of claim start.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }

    /// Total number of items governed by this cursor.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the cursor governs no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let cursor = ChunkCursor::new(103, 16);
        let mut seen = [false; 103];
        while let Some(range) = cursor.claim() {
            for i in range {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some index never claimed");
    }

    #[test]
    fn empty_list_yields_nothing() {
        let cursor = ChunkCursor::new(0, 16);
        assert!(cursor.is_empty());
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn zero_chunk_still_progresses() {
        let cursor = ChunkCursor::new(3, 0);
        assert_eq!(cursor.claim(), Some(0..1));
        assert_eq!(cursor.claim(), Some(1..2));
        assert_eq!(cursor.claim(), Some(2..3));
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn concurrent_claims_partition_the_range() {
        let cursor = ChunkCursor::new(1000, 7);
        let claimed: Vec<Range<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(r) = cursor.claim() {
                            mine.push(r);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut indices: Vec<usize> = claimed.into_iter().flatten().collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..1000).collect::<Vec<_>>());
    }
}
