//! The boundness quantifier made effective.
//!
//! Each boundness definition (k-bounded, `M_f`, `P_f`) quantifies over an
//! extension β of a semi-valid execution in which the channel delivers no
//! old packets and the protocol finishes the outstanding message. For a
//! *deterministic* protocol implementation this β is computable: clone the
//! composed system, let the channel behave optimally from now on
//! (Theorem 2.1's extension γ: fresh sends delivered immediately, the
//! delayed pool frozen), and run until delivery. The forward receipt
//! sequence of that run is exactly the β the proofs replay.

use crate::system::System;
use nonfifo_ioa::Packet;
use std::collections::BTreeMap;

/// A computed boundness extension β.
#[derive(Debug, Clone)]
pub struct Extension {
    /// Forward packets in the order the receiver saw them in β (equal to
    /// the send order, since an optimal channel delivers immediately).
    pub receipts: Vec<Packet>,
    /// Scheduler steps β took.
    pub steps: u64,
    /// The full recorded events of β (the extension only, not the prefix
    /// it extends). Used to verify the simulation argument: a replayed β′
    /// must be receiver-indistinguishable from this.
    pub events: nonfifo_ioa::Execution,
}

impl Extension {
    /// `spᵗ→ʳ(β)` — forward sends in the extension (every send is
    /// delivered under the optimal channel, so sends = receipts).
    pub fn forward_sends(&self) -> u64 {
        self.receipts.len() as u64
    }

    /// Per-packet-value send counts within β.
    pub fn histogram(&self) -> BTreeMap<Packet, u64> {
        let mut h = BTreeMap::new();
        for &p in &self.receipts {
            *h.entry(p).or_insert(0) += 1;
        }
        h
    }
}

/// Computes boundness extensions by forward simulation.
#[derive(Debug, Clone, Copy)]
pub struct BoundnessOracle {
    /// Maximum scheduler steps before declaring the protocol stuck.
    pub max_steps: u64,
}

impl Default for BoundnessOracle {
    fn default() -> Self {
        BoundnessOracle { max_steps: 200_000 }
    }
}

impl BoundnessOracle {
    /// Creates an oracle with the given step budget.
    pub fn new(max_steps: u64) -> Self {
        BoundnessOracle { max_steps }
    }

    /// Computes the extension that delivers the system's *outstanding*
    /// message under optimal channel behaviour, or `None` if the protocol
    /// fails to deliver within the step budget (it is not live).
    ///
    /// The live system is not disturbed: everything happens in a fork.
    pub fn extension(&self, sys: &System) -> Option<Extension> {
        let fork = sys.clone();
        self.run_fork(fork)
    }

    /// Computes the extension for the *next* message: forks the system,
    /// injects one `send_msg`, and runs to delivery.
    ///
    /// Returns `None` if the transmitter is not ready or the budget is
    /// exhausted.
    pub fn extension_with_new_message(&self, sys: &System) -> Option<Extension> {
        if !sys.ready() {
            return None;
        }
        let mut fork = sys.clone();
        fork.send_msg();
        self.run_fork(fork)
    }

    fn run_fork(&self, mut fork: System) -> Option<Extension> {
        let target_rm = fork.counts().sm;
        if fork.counts().rm >= target_rm {
            return Some(Extension {
                receipts: Vec::new(),
                steps: 0,
                events: nonfifo_ioa::Execution::new(),
            });
        }
        let start_events = fork.execution().len();
        let mut steps = 0;
        while fork.counts().rm < target_rm {
            if steps >= self.max_steps {
                return None;
            }
            fork.step_deliver_all();
            steps += 1;
        }
        let events: nonfifo_ioa::Execution = fork.execution().events()[start_events..]
            .iter()
            .copied()
            .collect();
        let receipts = events
            .iter()
            .filter_map(|e| match *e {
                nonfifo_ioa::Event::ReceivePkt {
                    dir: nonfifo_ioa::Dir::Forward,
                    packet,
                    ..
                } => Some(packet),
                _ => None,
            })
            .collect();
        Some(Extension {
            receipts,
            steps,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_channel::ChannelIntrospect;
    use nonfifo_ioa::Header;
    use nonfifo_protocols::{AfekFlush, AlternatingBit, SequenceNumber};

    #[test]
    fn quiescent_system_has_empty_extension() {
        let sys = System::new(&SequenceNumber::new());
        let ext = BoundnessOracle::default().extension(&sys).unwrap();
        assert_eq!(ext.forward_sends(), 0);
    }

    #[test]
    fn clean_alternating_bit_extension_is_one_packet() {
        let mut sys = System::new(&AlternatingBit::new());
        sys.send_msg();
        let ext = BoundnessOracle::default().extension(&sys).unwrap();
        assert_eq!(ext.forward_sends(), 1);
        assert_eq!(ext.receipts[0], Packet::header_only(Header::new(0)));
        // The live system is untouched.
        assert_eq!(sys.counts().rm, 0);
    }

    #[test]
    fn extension_with_new_message_requires_ready() {
        let mut sys = System::new(&AlternatingBit::new());
        sys.send_msg(); // busy now
        assert!(BoundnessOracle::default()
            .extension_with_new_message(&sys)
            .is_none());
    }

    #[test]
    fn afek_extension_scales_with_parked_pool() {
        // Park stale copies of the label message 1 will reuse … label of
        // message 0 is 0; message 3 reuses label 0.
        let mut sys = System::new(&AfekFlush::new());
        sys.send_msg();
        for _ in 0..7 {
            sys.step_park_all();
        }
        assert!(sys.run_to_quiescence(64));
        for _ in 1..3 {
            sys.send_msg();
            assert!(sys.run_to_quiescence(64));
        }
        // Message 3 reuses label 0; its extension must outnumber the stale
        // copies of label 0 parked during message 0.
        let stale0 = sys.fwd.packet_copies(Packet::header_only(Header::new(0)));
        assert!(stale0 >= 7, "expected parked pool, got {stale0}");
        let ext = BoundnessOracle::default()
            .extension_with_new_message(&sys)
            .unwrap();
        assert!(
            ext.forward_sends() > stale0 as u64,
            "extension {} should exceed stale pool {stale0}",
            ext.forward_sends()
        );
    }

    #[test]
    fn histogram_counts_values() {
        let ext = Extension {
            receipts: vec![
                Packet::header_only(Header::new(0)),
                Packet::header_only(Header::new(0)),
                Packet::header_only(Header::new(1)),
            ],
            steps: 3,
            events: nonfifo_ioa::Execution::new(),
        };
        let h = ext.histogram();
        assert_eq!(h[&Packet::header_only(Header::new(0))], 2);
        assert_eq!(h[&Packet::header_only(Header::new(1))], 1);
    }

    #[test]
    fn stuck_protocol_returns_none() {
        // A system whose message can never be delivered because the budget
        // is zero steps.
        let mut sys = System::new(&SequenceNumber::new());
        sys.send_msg();
        assert!(BoundnessOracle::new(0).extension(&sys).is_none());
    }
}
