//! Theorem 5.1 instrumentation: dominant packets over a probabilistic
//! physical layer.
//!
//! Section 5 of the paper analyses executions
//! `α = send_msg β₁ receive_msg send_msg β₂ … βₙ receive_msg` over a
//! channel that delays each packet with probability `q`. For each extension
//! `βᵢ` at least one packet `p_j` is *dominant*: the protocol sends more
//! copies of it in `βᵢ` than the `m_{i,j}` copies already delayed
//! (otherwise the physical layer could simulate `βᵢ` from delayed copies
//! alone and violate DL1/DL3). A delayed fraction `q` of those sends then
//! pushes `m_{i+1,j}` towards `(1+q)·m_{i,j}` — the engine of the
//! exponential lower bound.
//!
//! [`DominantTracker`] runs a protocol over seeded [`ProbabilisticChannel`]s
//! and records exactly these quantities: the `m_{i,j}` snapshots at each
//! `send_msg`, the per-extension send histograms, and the dominant set —
//! the raw data behind experiments E5 and E6 (Lemmas 5.2 and 5.3).

use nonfifo_channel::{Channel, ChannelIntrospect, ProbabilisticChannel};
use nonfifo_ioa::{Dir, Event, Header, Message, SpecMonitor, SpecViolation};
use nonfifo_protocols::{DataLink, GhostInfo};
use std::collections::BTreeMap;

/// Configuration of a probabilistic run.
#[derive(Debug, Clone, Copy)]
pub struct ProbRunConfig {
    /// Messages to deliver (the `n` of Theorem 5.1).
    pub messages: u64,
    /// Per-packet delay probability `q` (both directions).
    pub q: f64,
    /// RNG seed (forward channel uses `seed`, backward `seed + 1`).
    pub seed: u64,
    /// Scheduler steps allowed per message before declaring the run stuck.
    pub max_steps_per_message: u64,
}

impl Default for ProbRunConfig {
    fn default() -> Self {
        ProbRunConfig {
            messages: 12,
            q: 0.3,
            seed: 0,
            max_steps_per_message: 2_000_000,
        }
    }
}

/// Per-message observation: the §5 quantities for one extension `βᵢ`.
#[derive(Debug, Clone)]
pub struct MessageObservation {
    /// Message index (0-based).
    pub message: u64,
    /// `m_{i,j}`: delayed forward copies per header at the `send_msg`.
    pub in_transit_by_header: BTreeMap<Header, u64>,
    /// Forward sends per header during `βᵢ`.
    pub sends_by_header: BTreeMap<Header, u64>,
    /// Headers dominant in `βᵢ` (sends exceed `m_{i,j}`).
    pub dominant: Vec<Header>,
    /// Scheduler steps `βᵢ` took.
    pub steps: u64,
}

/// The full record of a probabilistic run.
#[derive(Debug, Clone)]
pub struct DominantReport {
    /// Per-message observations, in order.
    pub per_message: Vec<MessageObservation>,
    /// Total forward packets sent over the whole run.
    pub total_forward_sent: u64,
    /// Total forward packets still delayed at the end.
    pub final_in_transit: u64,
    /// Safety violation, if the protocol escaped its safety domain.
    pub violation: Option<SpecViolation>,
    /// The configured delay probability.
    pub q: f64,
    /// True if every message was delivered within budget.
    pub completed: bool,
}

impl DominantReport {
    /// The header dominant in the most extensions — §5's probable dominant
    /// packet `p_j`.
    pub fn probable_dominant(&self) -> Option<Header> {
        let mut counts: BTreeMap<Header, u64> = BTreeMap::new();
        for obs in &self.per_message {
            for &h in &obs.dominant {
                *counts.entry(h).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(h, c)| (c, std::cmp::Reverse(h)))
            .map(|(h, _)| h)
    }

    /// The `m_{i,j}` trajectory of header `h` across messages.
    pub fn m_trajectory(&self, h: Header) -> Vec<u64> {
        self.per_message
            .iter()
            .map(|obs| obs.in_transit_by_header.get(&h).copied().unwrap_or(0))
            .collect()
    }

    /// Growth ratios `m_{i+1,j} / m_{i,j}` of header `h` across consecutive
    /// messages where `h` was dominant in extension `βᵢ` and `m_{i,j} > 0`
    /// — the per-extension growth factor of Lemma 5.3.
    pub fn growth_ratios(&self, h: Header) -> Vec<f64> {
        let traj = self.m_trajectory(h);
        let mut out = Vec::new();
        for (i, obs) in self.per_message.iter().enumerate() {
            if i + 1 >= traj.len() {
                break;
            }
            if obs.dominant.contains(&h) && traj[i] > 0 {
                out.push(traj[i + 1] as f64 / traj[i] as f64);
            }
        }
        out
    }

    /// How many extensions each header was dominant in.
    pub fn dominance_counts(&self) -> BTreeMap<Header, u64> {
        let mut counts = BTreeMap::new();
        for obs in &self.per_message {
            for &h in &obs.dominant {
                *counts.entry(h).or_insert(0) += 1;
            }
        }
        counts
    }
}

/// Runs a protocol over probabilistic channels and harvests the §5 data.
#[derive(Debug, Clone, Copy, Default)]
pub struct DominantTracker {
    /// Run configuration.
    pub config: ProbRunConfig,
}

impl DominantTracker {
    /// Creates a tracker with explicit configuration.
    pub fn new(config: ProbRunConfig) -> Self {
        DominantTracker { config }
    }

    /// Runs `proto` over fresh probabilistic channels.
    pub fn run(&self, proto: &dyn DataLink) -> DominantReport {
        let cfg = self.config;
        let uses_ghosts = proto.uses_ghosts();
        let (mut tx, mut rx) = proto.make();
        let mut fwd = ProbabilisticChannel::new(Dir::Forward, cfg.q, cfg.seed);
        let mut bwd = ProbabilisticChannel::new(Dir::Backward, cfg.q, cfg.seed.wrapping_add(1));
        let mut monitor = SpecMonitor::new();
        let mut per_message = Vec::new();
        let mut completed = true;

        'messages: for message in 0..cfg.messages {
            // m_{i,j} snapshot at the send_msg.
            let in_transit_by_header = header_histogram(&fwd);
            let round_watermark = delayed_watermark(&fwd);

            let m = Message::identical(message);
            let _ = monitor.observe(&Event::SendMsg(m));
            tx.on_send_msg(m);

            let mut sends_by_header: BTreeMap<Header, u64> = BTreeMap::new();
            let mut steps = 0u64;
            let mut delivered = false;
            while !delivered {
                if steps >= cfg.max_steps_per_message {
                    completed = false;
                    break 'messages;
                }
                steps += 1;

                // Ghost summaries (AfekFlush needs the stale counts; the
                // others ignore them, so skip the O(pool) sweep).
                if uses_ghosts {
                    let ghost = ghost_info(&fwd, &bwd, round_watermark);
                    tx.on_ghost(&ghost);
                    rx.on_ghost(&ghost);
                }
                tx.on_tick();
                rx.on_tick();

                // Transmitter sends.
                while let Some(pkt) = tx.poll_send() {
                    *sends_by_header.entry(pkt.header()).or_insert(0) += 1;
                    let copy = fwd.send(pkt);
                    let _ = monitor.observe(&Event::SendPkt {
                        dir: Dir::Forward,
                        packet: pkt,
                        copy,
                    });
                }
                // Forward deliveries.
                while let Some((pkt, copy)) = fwd.poll_deliver() {
                    let _ = monitor.observe(&Event::ReceivePkt {
                        dir: Dir::Forward,
                        packet: pkt,
                        copy,
                    });
                    rx.on_receive_pkt(pkt);
                }
                // Receiver outputs.
                while let Some(dm) = rx.poll_deliver() {
                    let _ = monitor.observe(&Event::ReceiveMsg(dm));
                    delivered = true;
                }
                while let Some(ack) = rx.poll_send() {
                    let copy = bwd.send(ack);
                    let _ = monitor.observe(&Event::SendPkt {
                        dir: Dir::Backward,
                        packet: ack,
                        copy,
                    });
                }
                // Backward deliveries.
                while let Some((ack, copy)) = bwd.poll_deliver() {
                    let _ = monitor.observe(&Event::ReceivePkt {
                        dir: Dir::Backward,
                        packet: ack,
                        copy,
                    });
                    tx.on_receive_pkt(ack);
                }
                fwd.tick();
                bwd.tick();
            }

            // Wait for the transmitter to learn about the delivery too, so
            // the next send_msg is legal (acks may need retries).
            let mut extra = 0u64;
            while !tx.ready() {
                if extra >= cfg.max_steps_per_message {
                    completed = false;
                    break 'messages;
                }
                extra += 1;
                tx.on_tick();
                while let Some(pkt) = tx.poll_send() {
                    *sends_by_header.entry(pkt.header()).or_insert(0) += 1;
                    let copy = fwd.send(pkt);
                    let _ = monitor.observe(&Event::SendPkt {
                        dir: Dir::Forward,
                        packet: pkt,
                        copy,
                    });
                }
                while let Some((pkt, copy)) = fwd.poll_deliver() {
                    let _ = monitor.observe(&Event::ReceivePkt {
                        dir: Dir::Forward,
                        packet: pkt,
                        copy,
                    });
                    rx.on_receive_pkt(pkt);
                }
                while let Some(dm) = rx.poll_deliver() {
                    // A second delivery here would be a violation; let the
                    // monitor judge.
                    let _ = monitor.observe(&Event::ReceiveMsg(dm));
                }
                while let Some(ack) = rx.poll_send() {
                    let copy = bwd.send(ack);
                    let _ = monitor.observe(&Event::SendPkt {
                        dir: Dir::Backward,
                        packet: ack,
                        copy,
                    });
                }
                while let Some((ack, copy)) = bwd.poll_deliver() {
                    let _ = monitor.observe(&Event::ReceivePkt {
                        dir: Dir::Backward,
                        packet: ack,
                        copy,
                    });
                    tx.on_receive_pkt(ack);
                }
            }

            let dominant: Vec<Header> = sends_by_header
                .iter()
                .filter(|(h, &sends)| sends > in_transit_by_header.get(h).copied().unwrap_or(0))
                .map(|(&h, _)| h)
                .collect();
            per_message.push(MessageObservation {
                message,
                in_transit_by_header,
                sends_by_header,
                dominant,
                steps,
            });
        }

        DominantReport {
            per_message,
            total_forward_sent: fwd.total_sent(),
            final_in_transit: fwd.in_transit_len() as u64,
            violation: monitor.first_violation(),
            q: cfg.q,
            completed,
        }
    }
}

fn header_histogram(fwd: &ProbabilisticChannel) -> BTreeMap<Header, u64> {
    let mut hist = BTreeMap::new();
    for (pkt, _) in fwd.delayed_multiset().iter() {
        *hist.entry(pkt.header()).or_insert(0) += 1;
    }
    hist
}

fn delayed_watermark(fwd: &ProbabilisticChannel) -> nonfifo_ioa::CopyId {
    nonfifo_ioa::CopyId::from_raw(fwd.total_sent())
}

fn ghost_info(
    fwd: &ProbabilisticChannel,
    bwd: &ProbabilisticChannel,
    watermark: nonfifo_ioa::CopyId,
) -> GhostInfo {
    let mut ghost = GhostInfo {
        fwd_in_transit: fwd.in_transit_len() as u64,
        bwd_in_transit: bwd.in_transit_len() as u64,
        stale_fwd_by_header: Vec::new(),
    };
    for (pkt, _) in fwd.delayed_multiset().iter() {
        let h = pkt.header();
        if ghost.stale_fwd_by_header.iter().any(|&(g, _)| g == h) {
            continue;
        }
        ghost.push_stale(h, fwd.header_copies_older_than(h, watermark) as u64);
    }
    ghost
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{Outnumber, SequenceNumber};

    #[test]
    fn sequence_number_is_linear_and_clean() {
        let cfg = ProbRunConfig {
            messages: 50,
            q: 0.3,
            seed: 7,
            max_steps_per_message: 100_000,
        };
        let report = DominantTracker::new(cfg).run(&SequenceNumber::new());
        assert!(report.completed);
        assert_eq!(report.violation, None);
        assert_eq!(report.per_message.len(), 50);
        // Linear cost: a handful of packets per message on average.
        assert!(
            report.total_forward_sent < 50 * 20,
            "sent {}",
            report.total_forward_sent
        );
    }

    #[test]
    fn outnumber_grows_exponentially_and_stays_safe() {
        let cfg = ProbRunConfig {
            messages: 10,
            q: 0.3,
            seed: 11,
            max_steps_per_message: 1_000_000,
        };
        let report = DominantTracker::new(cfg).run(&Outnumber::factory());
        assert!(report.completed, "run must finish");
        assert_eq!(report.violation, None, "safe in its domain");
        // Total packets at least 2^(n-1) — the outnumber doubling.
        assert!(
            report.total_forward_sent >= 1 << 8,
            "sent only {}",
            report.total_forward_sent
        );
        // Every extension has a dominant header (the §5 claim).
        for obs in &report.per_message {
            assert!(
                !obs.dominant.is_empty(),
                "message {} had no dominant packet",
                obs.message
            );
        }
        assert!(report.probable_dominant().is_some());
    }

    #[test]
    fn same_seed_reproduces() {
        let cfg = ProbRunConfig {
            messages: 20,
            q: 0.25,
            seed: 3,
            max_steps_per_message: 100_000,
        };
        let a = DominantTracker::new(cfg).run(&SequenceNumber::new());
        let b = DominantTracker::new(cfg).run(&SequenceNumber::new());
        assert_eq!(a.total_forward_sent, b.total_forward_sent);
        assert_eq!(a.final_in_transit, b.final_in_transit);
    }

    #[test]
    fn trajectory_reads_back_snapshots() {
        let cfg = ProbRunConfig {
            messages: 8,
            q: 0.4,
            seed: 5,
            max_steps_per_message: 1_000_000,
        };
        let report = DominantTracker::new(cfg).run(&Outnumber::factory());
        if let Some(h) = report.probable_dominant() {
            let traj = report.m_trajectory(h);
            assert_eq!(traj.len(), report.per_message.len());
        }
    }
}
