//! Fixed-width state encoding — the explorer's state-identity layer.
//!
//! Both exploration engines deduplicate on a 64-bit digest of the composed
//! [`System`] state. Historically each engine recomputed that digest from
//! the live `System` with ad-hoc [`StateHash`] chains duplicated across
//! `explore.rs`, `explore_par.rs`, and `por.rs`; this module is the one
//! shared home for that plumbing, and it adds the representation that the
//! tiered visited sets ([`crate::visited`]) need to push exploration past
//! RAM: a **fixed-width byte codec**.
//!
//! A bounded-protocol state is tiny by construction — that is the paper's
//! whole premise. The automata are finite (64-bit control fingerprints),
//! the `sm`/`rm` counters are bounded by the scope's message budget, and
//! the pool is summarised by an order-independent content digest plus its
//! length. [`StateCodec::encode`] packs exactly those fields into a
//! 40-byte [`EncodedState`] — well under the 64 B/state target — and
//! [`StateCodec::key_of`] derives from the packed bytes the **same** 64-bit
//! dedup key the engines have always used, so swapping representations can
//! never change a report.
//!
//! Two codec modes mirror the two dedup keys in the system:
//!
//! - [`CodecMode::Full`] — the plain state key (domain tag
//!   `explore-state`): control fingerprints, counters, whole-pool digest,
//!   pool length.
//! - [`CodecMode::RetiredQuotient`] — the partial-order-reduction quotient
//!   (domain tag `explore-state-por`, see [`crate::por`]): pool slots whose
//!   values both stations have permanently retired are anonymised into a
//!   retired-slot *count*, and the digest covers live values only.
//!
//! The encoded form is the unit the byte-budget accounting of the visited
//! tiers is denominated in: [`EncodedState::BYTES`] is exported as the
//! `explore.codec_bytes_per_state` telemetry gauge and guarded in CI.

use crate::system::System;
use nonfifo_ioa::fingerprint::{fnv64, mix64, StateHash};

/// Which dedup key the codec derives — the plain state key or the
/// partial-order-reduction retired-copy quotient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecMode {
    /// The full state key (domain tag `explore-state`): every pool value
    /// participates in the digest.
    Full,
    /// The POR quotient key (domain tag `explore-state-por`): retired pool
    /// values are anonymised into a count, live values into a digest.
    RetiredQuotient,
}

/// A [`System`] state bit-packed into [`EncodedState::BYTES`] bytes.
///
/// Layout (little-endian, fixed offsets):
///
/// | offset | width | field                                    |
/// |-------:|------:|------------------------------------------|
/// |      0 |     8 | transmitter control fingerprint           |
/// |      8 |     8 | receiver control fingerprint              |
/// |     16 |     4 | `sm` — `send_msg` count                   |
/// |     20 |     4 | `rm` — `receive_msg` count                |
/// |     24 |     8 | pool digest (whole-pool or live-only)     |
/// |     32 |     4 | retired-copy count (0 in [`CodecMode::Full`]) |
/// |     36 |     4 | pool length                               |
///
/// The 32-bit fields are bounded by the exploration scope (messages and
/// pool copies are small enumerations), so the narrowing is lossless for
/// any scope the explorer can finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodedState {
    bytes: [u8; Self::BYTES],
}

impl EncodedState {
    /// Fixed width of an encoded state, in bytes. The acceptance budget is
    /// ≤ 64; the packed layout needs 40.
    pub const BYTES: usize = 40;

    /// The packed little-endian bytes.
    pub fn as_bytes(&self) -> &[u8; Self::BYTES] {
        &self.bytes
    }

    /// Transmitter control fingerprint.
    pub fn tx_fingerprint(&self) -> u64 {
        self.read_u64(0)
    }

    /// Receiver control fingerprint.
    pub fn rx_fingerprint(&self) -> u64 {
        self.read_u64(8)
    }

    /// `sm` — number of `send_msg` actions on the path to this state.
    pub fn sm(&self) -> u64 {
        u64::from(self.read_u32(16))
    }

    /// `rm` — number of `receive_msg` actions on the path to this state.
    pub fn rm(&self) -> u64 {
        u64::from(self.read_u32(20))
    }

    /// The pool digest: the whole-pool content hash in [`CodecMode::Full`],
    /// the live-values-only digest in [`CodecMode::RetiredQuotient`].
    pub fn pool_digest(&self) -> u64 {
        self.read_u64(24)
    }

    /// Retired delayed copies anonymised out of the digest (always 0 in
    /// [`CodecMode::Full`]).
    pub fn retired(&self) -> u64 {
        u64::from(self.read_u32(32))
    }

    /// Total delayed copies in the forward pool.
    pub fn pool_len(&self) -> u64 {
        u64::from(self.read_u32(36))
    }

    fn read_u64(&self, at: usize) -> u64 {
        u64::from_le_bytes(self.bytes[at..at + 8].try_into().expect("fixed layout"))
    }

    fn read_u32(&self, at: usize) -> u32 {
        u32::from_le_bytes(self.bytes[at..at + 4].try_into().expect("fixed layout"))
    }
}

/// Encoder from live [`System`] states to [`EncodedState`]s and their
/// 64-bit dedup keys.
///
/// The codec is a zero-sized-ish value type (`Copy`), fixed per exploration
/// run: both engines and the POR context hold one and route every dedup key
/// through it, so the key derivation lives in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCodec {
    mode: CodecMode,
}

impl StateCodec {
    /// Codec for the plain state key (domain tag `explore-state`).
    pub const fn full() -> Self {
        StateCodec {
            mode: CodecMode::Full,
        }
    }

    /// Codec for the POR retired-copy quotient key (domain tag
    /// `explore-state-por`).
    pub const fn retired_quotient() -> Self {
        StateCodec {
            mode: CodecMode::RetiredQuotient,
        }
    }

    /// The mode this codec encodes for.
    pub fn mode(&self) -> CodecMode {
        self.mode
    }

    /// Packs `sys` into the fixed-width representation.
    pub fn encode(&self, sys: &System) -> EncodedState {
        let ms = sys.fwd.parked_multiset();
        let (digest, retired) = match self.mode {
            CodecMode::Full => (ms.content_hash(), 0u64),
            CodecMode::RetiredQuotient => {
                // Start from the incrementally maintained whole-pool digest
                // and subtract the retired copies back out — the walk only
                // pays for what it anonymises.
                let mut live = ms.content_hash();
                let mut retired = 0u64;
                for (p, _) in ms.iter() {
                    if sys.packet_retired(p) {
                        live = live.wrapping_sub(mix64(fnv64(&p)));
                        retired += 1;
                    }
                }
                (live, retired)
            }
        };
        let counts = sys.counts();
        debug_assert!(
            counts.sm <= u64::from(u32::MAX) && counts.rm <= u64::from(u32::MAX),
            "scope counters outgrew the 32-bit codec fields"
        );
        let mut bytes = [0u8; EncodedState::BYTES];
        bytes[0..8].copy_from_slice(&sys.tx.state_fingerprint().to_le_bytes());
        bytes[8..16].copy_from_slice(&sys.rx.state_fingerprint().to_le_bytes());
        bytes[16..20].copy_from_slice(&(counts.sm as u32).to_le_bytes());
        bytes[20..24].copy_from_slice(&(counts.rm as u32).to_le_bytes());
        bytes[24..32].copy_from_slice(&digest.to_le_bytes());
        bytes[32..36].copy_from_slice(&(retired as u32).to_le_bytes());
        bytes[36..40].copy_from_slice(&(ms.len() as u32).to_le_bytes());
        EncodedState { bytes }
    }

    /// The 64-bit dedup key of an encoded state. Bit-for-bit the digest the
    /// engines always used: the [`StateHash`] chain over the same fields
    /// under the same domain tag, so every pinned state count and
    /// byte-identity guarantee survives the representation change (the
    /// compatibility tests in this module and `tests/visited_props.rs` pin
    /// it).
    pub fn key_of(&self, enc: &EncodedState) -> u64 {
        let h = StateHash::new(match self.mode {
            CodecMode::Full => "explore-state",
            CodecMode::RetiredQuotient => "explore-state-por",
        })
        .field(enc.tx_fingerprint())
        .field(enc.rx_fingerprint())
        .field(enc.sm())
        .field(enc.rm())
        .field(enc.pool_digest());
        match self.mode {
            CodecMode::Full => h.field(enc.pool_len()).finish(),
            CodecMode::RetiredQuotient => h.field(enc.retired()).field(enc.pool_len()).finish(),
        }
    }

    /// Encode-and-key in one call — the hot-path entry both engines use.
    pub fn key(&self, sys: &System) -> u64 {
        self.key_of(&self.encode(sys))
    }
}

/// Reads the `i`-th key of a little-endian-packed sorted key block — the
/// on-disk unit of the visited tiers' spill runs (see [`crate::visited`]).
/// The codec owns every byte layout in the dedup path, so the run format
/// lives here next to [`EncodedState`]'s.
pub(crate) fn key_at(block: &[u8], i: usize) -> u64 {
    let at = i * 8;
    u64::from_le_bytes(block[at..at + 8].try_into().expect("block layout"))
}

/// Binary-searches a little-endian-packed sorted key block for `key`.
/// `block.len()` must be a multiple of 8. This is the probe primitive the
/// visited tiers' positioned and batched disk probes both settle on, so a
/// single-key probe and a batched sequential probe can never disagree.
pub(crate) fn block_contains_key(block: &[u8], key: u64) -> bool {
    let mut lo = 0usize;
    let mut hi = block.len() / 8;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match key_at(block, mid).cmp(&key) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    false
}

/// The plain state key of `sys` — the soundness anchor of deduplication:
/// every action ends with the transmitter's outbox drained and the backward
/// channel empty, so these fields determine all future behaviour of the
/// deterministic system (see the module docs of [`crate::explore`]).
pub(crate) fn state_key(sys: &System) -> u64 {
    StateCodec::full().key(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{apply, build_root, enabled_actions, ExploreConfig};
    use nonfifo_protocols::{AlternatingBit, SequenceNumber};

    /// The legacy key derivation, verbatim, as the compatibility oracle.
    fn legacy_full_key(sys: &System) -> u64 {
        let ms = sys.fwd.parked_multiset();
        StateHash::new("explore-state")
            .field(sys.tx.state_fingerprint())
            .field(sys.rx.state_fingerprint())
            .field(sys.counts().sm)
            .field(sys.counts().rm)
            .field(ms.content_hash())
            .field(ms.len() as u64)
            .finish()
    }

    fn legacy_quotient_key(sys: &System) -> u64 {
        let ms = sys.fwd.parked_multiset();
        let mut live = ms.content_hash();
        let mut retired = 0u64;
        for (p, _) in ms.iter() {
            if sys.packet_retired(p) {
                live = live.wrapping_sub(mix64(fnv64(&p)));
                retired += 1;
            }
        }
        StateHash::new("explore-state-por")
            .field(sys.tx.state_fingerprint())
            .field(sys.rx.state_fingerprint())
            .field(sys.counts().sm)
            .field(sys.counts().rm)
            .field(live)
            .field(retired)
            .field(ms.len() as u64)
            .finish()
    }

    /// Walk a few hundred states of a real exploration and check both codec
    /// keys against the legacy chains at every one.
    #[test]
    fn codec_keys_reproduce_the_legacy_digests() {
        let cfg = ExploreConfig::default();
        for proto in [
            &SequenceNumber::new() as &dyn nonfifo_protocols::DataLink,
            &AlternatingBit::new(),
        ] {
            let mut frontier = vec![build_root(proto, &cfg, true)];
            let mut seen = 0usize;
            while let Some(sys) = frontier.pop() {
                assert_eq!(StateCodec::full().key(&sys), legacy_full_key(&sys));
                assert_eq!(
                    StateCodec::retired_quotient().key(&sys),
                    legacy_quotient_key(&sys)
                );
                seen += 1;
                if seen >= 300 {
                    break;
                }
                for action in enabled_actions(&sys, &cfg) {
                    let mut next = sys.clone();
                    apply(&mut next, action);
                    frontier.push(next);
                }
            }
            assert!(seen >= 100, "walked a nontrivial sample: {seen}");
        }
    }

    #[test]
    fn encoded_fields_round_trip() {
        let cfg = ExploreConfig::default();
        let mut sys = build_root(&SequenceNumber::new(), &cfg, true);
        sys.send_msg();
        sys.step_park_all();
        let enc = StateCodec::full().encode(&sys);
        assert_eq!(enc.tx_fingerprint(), sys.tx.state_fingerprint());
        assert_eq!(enc.rx_fingerprint(), sys.rx.state_fingerprint());
        assert_eq!(enc.sm(), sys.counts().sm);
        assert_eq!(enc.rm(), sys.counts().rm);
        assert_eq!(enc.pool_digest(), sys.fwd.parked_multiset().content_hash());
        assert_eq!(enc.retired(), 0);
        assert_eq!(enc.pool_len(), sys.fwd.parked_multiset().len() as u64);
        assert_eq!(enc.as_bytes().len(), EncodedState::BYTES);
    }

    #[test]
    fn codec_stays_under_the_byte_budget() {
        // The acceptance criterion pinned in BENCH_baseline.json.
        const {
            assert!(EncodedState::BYTES <= 64);
        }
    }

    #[test]
    fn key_blocks_round_trip_and_probe_exactly() {
        let keys: Vec<u64> = (0..321u64).map(|i| i * 7 + 3).collect();
        let mut block = Vec::new();
        for &k in &keys {
            block.extend_from_slice(&k.to_le_bytes());
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(key_at(&block, i), k);
            assert!(block_contains_key(&block, k));
            assert!(!block_contains_key(&block, k + 1));
        }
        assert!(!block_contains_key(&block, 0));
        assert!(!block_contains_key(&[], 42));
    }

    #[test]
    fn modes_are_domain_separated() {
        let cfg = ExploreConfig::default();
        let sys = build_root(&SequenceNumber::new(), &cfg, true);
        assert_ne!(
            StateCodec::full().key(&sys),
            StateCodec::retired_quotient().key(&sys),
            "the two key domains must never collide structurally"
        );
    }
}
