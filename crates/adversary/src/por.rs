//! Partial-order reduction for the exploration engines.
//!
//! The scope explosion the explorer fights is mostly *commutation*: under a
//! non-FIFO channel, the adversary's choices of when to consume a stale
//! delayed copy interleave freely with everything else, and every
//! interleaving drags the search through its own ladder of intermediate
//! pool histograms. This module attacks that explosion on two levels,
//! keeping the full explorer as the differential oracle that proves both
//! sound:
//!
//! 1. a **sleep-set rule over inert deliveries** prunes redundant *edges*
//!    (the `explore.pruned_states` counter), and
//! 2. a **retired-copy quotient key** ([`PorCtx::key`]) collapses redundant
//!    *states*: pool slots holding values both stations have permanently
//!    retired ([`System::packet_retired`]) are anonymised in the dedup
//!    digest, so states that differ only in which dead value fills a slot
//!    are visited once. Under breadth-first search with full-state
//!    deduplication the quotient — not the edge pruning — is where the
//!    order-of-magnitude scope savings come from: a slept successor is
//!    usually still reachable along a path that never minted the copy,
//!    while the quotient removes the whole class.
//!
//! # The independence relation
//!
//! Two enabled adversary actions are *independent at a state* when running
//! them in either order reaches the same state key and the same monitor
//! verdict. The relation this module exports
//! ([`steps_independent_at`]) is deliberately conditional — checked at the
//! state, not declared globally — because in this model almost nothing
//! commutes unconditionally:
//!
//! - **Inert deliveries commute with automaton-invisible actions.** A
//!   `deliver h` is *inert* at a state when releasing the copy changes
//!   neither automaton fingerprint nor the `sm`/`rm` counters: the receiver
//!   shrugs at a stale value and the echoed ack is ignored by the
//!   transmitter. Copy identities are invisible to both the automata and
//!   the state key (the pool digest is an order-independent value
//!   histogram), so an inert delivery commutes with any co-enabled action
//!   that leaves the transmitter's fingerprint unchanged — `park`, another
//!   inert delivery, a drop of a different value — *provided* it is still
//!   inert after that action (a delivery that becomes acceptable stops
//!   commuting, and the relation says so).
//! - **Drops on distinct values commute with everything off-value.** A
//!   `drop h` touches only the channel: no tick, no automaton transition.
//!   Two drops of different values commute; a drop commutes with `send`,
//!   `park`, and any deliver or drop of a different value.
//! - Ghost-reading protocols ([`System::uses_ghosts`]) observe the pool
//!   through the per-step summary, so *nothing* is invisible to them and
//!   the relation is empty.
//!
//! # The sleep-set rule the engines apply
//!
//! Under [`Discipline::NonFifo`](crate::Discipline), for ghost-free
//! protocols, both engines put an enabled delivery **to sleep** (skip the
//! edge and the successor state) when all of the following hold at the
//! parent:
//!
//! 1. the delivery is inert (checked by trial application — a pure function
//!    of the parent state and the step, never of discovery order or thread
//!    schedule);
//! 2. `park` is enabled (the pool is below its bound).
//!
//! Deferral is sound because a slept delivery is not lost, merely
//! postponed: the copy stays in the pool, so the same action stays enabled
//! at every successor until either (a) it stops being inert — at which
//! point it is expanded as an ordinary action (this is the persistent-set
//! wake-up that keeps a corrupted-start phantom, or a stale copy whose
//! value comes back into expectation, reachable), or (b) the pool reaches
//! its bound — at which point rule 2 fails and the consumption is expanded
//! (this covers paths that spend an inert delivery purely to free pool
//! space). Everything else an inert delivery does is reproducible without
//! it: its embedded tick is exactly a `park` (enabled, by rule 2), and the
//! retained copy only ever *adds* enabled actions under non-FIFO, never
//! disables or alters one. Bounded-reorder and lossy disciplines gate
//! deliveries on copy age, where a retained copy can block other actions —
//! the reduction stays off there, and `--por` degenerates to the full
//! search.
//!
//! Violating successors are never slept (a violation changes `rm`, so it is
//! not inert), and the sleep decision is recomputed from scratch at every
//! state, so duplicate states reached along different paths always agree on
//! it — which is what lets the reduced engines keep plain state-key
//! deduplication and byte-identical reports at any thread count.
//!
//! # The retired-copy quotient
//!
//! A delayed copy is *retired garbage* when **both** stations have outgrown
//! its header: the receiver can never again accept it, and the ack it would
//! echo is forever ignored by the transmitter
//! ([`System::packet_retired`], built on the protocols'
//! `header_retired` oracles and their monotonicity contract — once retired,
//! retired forever). Two states that agree on everything except which
//! retired values occupy their pool slots are bisimilar: delivering or
//! dropping one retired copy is matched, move for move, by delivering or
//! dropping any other, and no other action can tell them apart. The reduced
//! engines therefore deduplicate on [`PorCtx::key`], whose kernel is
//! exactly that bisimulation — the live-value histogram plus a retired-slot
//! *count* in place of the retired values themselves. Because the key is a
//! pure function of the state, the quotient graph the engines explore is
//! representative-independent: state counts, certificates, and
//! counterexamples come out identical between the sequential and parallel
//! engines and at every thread count. Protocols that keep the defaulted
//! `header_retired` (always false — cycling alphabets *must*, since a
//! reused header comes back into expectation) get the identity quotient and
//! behave exactly as without `--por`.

use crate::codec::{state_key, CodecMode, StateCodec};
use crate::explore::{enabled_actions, Action, Discipline, ExploreConfig};
use crate::schedule::ScheduleStep;
use crate::system::System;
use nonfifo_channel::Channel as _;
use nonfifo_ioa::Packet;

/// Per-run reduction context, fixed at the root: which [`StateCodec`] the
/// run deduplicates through — the retired-copy quotient when the sleep-set
/// rule is live for this (protocol, config) pair, the plain full codec
/// otherwise.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PorCtx {
    codec: StateCodec,
}

impl PorCtx {
    /// Builds the context for one exploration run. The reduction is live
    /// only when the config asks for it, the discipline is full non-FIFO
    /// (where a retained copy can never disable or alter another action),
    /// and the protocol is ghost-free (so channel-only edits are invisible
    /// to the automata).
    pub(crate) fn new(root: &System, cfg: &ExploreConfig) -> Self {
        let active = cfg.por && cfg.discipline == Discipline::NonFifo && !root.uses_ghosts();
        PorCtx {
            codec: if active {
                StateCodec::retired_quotient()
            } else {
                StateCodec::full()
            },
        }
    }

    /// True when the sleep-set rule (and the quotient key) is live.
    fn active(&self) -> bool {
        self.codec.mode() == CodecMode::RetiredQuotient
    }

    /// True when `action`, taken from `parent` and producing `child`, goes
    /// to sleep: the successor is neither recorded nor expanded. A pure
    /// function of `(parent state, action)` — `child` is the already-applied
    /// trial the expansion loop has in hand anyway.
    pub(crate) fn sleeps(
        &self,
        parent: &System,
        child: &System,
        action: Action,
        cfg: &ExploreConfig,
    ) -> bool {
        if !self.active() || !matches!(action, Action::Deliver(_)) {
            return false;
        }
        // Rule 2: `park` must be enabled, so the slept delivery's tick is
        // reproducible and a pool-bound squeeze wakes the consumption.
        if parent.fwd.in_transit_len() >= cfg.max_pool {
            return false;
        }
        inert(parent, child)
    }

    /// The dedup key the reduced engines use: [`state_key`] with every
    /// *retired* delayed copy ([`System::packet_retired`]) replaced by an
    /// anonymous garbage token. Two states that differ only in **which**
    /// retired values occupy their pool slots — `{old₀×2, old₁×1}` versus
    /// `{old₀×1, old₁×2}` — collapse to one key: by the retirement
    /// contract their futures are bisimilar (each is forever ignored by
    /// both stations, so delivering one retired copy mirrors delivering
    /// any other), and this collapse, not edge pruning, is where the
    /// reduction's state savings come from. Inactive contexts return the
    /// full [`state_key`] unchanged. The derivation itself lives in the
    /// shared [`StateCodec`] ([`CodecMode::RetiredQuotient`]), bit-for-bit
    /// the historical chain.
    pub(crate) fn key(&self, sys: &System) -> u64 {
        self.codec.key(sys)
    }
}

/// True when the step from `parent` to `child` was invisible to both
/// automata and to the specification counters — the channel moved, the
/// stations did not.
fn inert(parent: &System, child: &System) -> bool {
    child.violation() == parent.violation()
        && child.counts().sm == parent.counts().sm
        && child.counts().rm == parent.counts().rm
        && child.tx.state_fingerprint() == parent.tx.state_fingerprint()
        && child.rx.state_fingerprint() == parent.rx.state_fingerprint()
}

/// Applies `action` to a clone of `sys` and reports whether it was inert
/// (see [`inert`]). The trial clone is discarded.
fn trial_inert(sys: &System, action: Action) -> bool {
    let mut probe = sys.clone();
    crate::explore::apply(&mut probe, action);
    inert(sys, &probe)
}

/// Resolves a schedule step to the exploration [`Action`] it denotes at
/// `sys`, if that action is currently enabled under `cfg`. Deliver/drop
/// steps name a header; the exploration works on whole packet values, so
/// the oldest delayed copy of the header supplies the value (exactly the
/// resolution [`Schedule`](crate::Schedule) replay performs).
fn resolve(sys: &System, cfg: &ExploreConfig, step: ScheduleStep) -> Option<Action> {
    let by_header = |h| -> Option<Packet> {
        sys.fwd
            .parked_multiset()
            .iter()
            .map(|(p, _)| p)
            .find(|p| p.header() == h)
    };
    let action = match step {
        ScheduleStep::Send => Action::SendMsg,
        ScheduleStep::Park => Action::StepPark,
        ScheduleStep::Deliver(h) => Action::Deliver(by_header(h)?),
        ScheduleStep::Drop(h) => Action::DropOldest(by_header(h)?),
        _ => return None,
    };
    enabled_actions(sys, cfg)
        .contains(&action)
        .then_some(action)
}

/// The independence relation over [`ScheduleStep`]s, evaluated at a state:
/// true when `a` and `b` are both enabled at `sys` under `cfg` and running
/// them in either order provably reaches the same state key and the same
/// monitor verdict *kind* (a violation's `event_index` records where in
/// the execution log the monitor flagged it — path bookkeeping the two
/// orders legitimately disagree on). This is the relation the property harness
/// (`tests/por_props.rs`) validates by literally swapping adjacent pairs;
/// the engines' sleep rule defers a strict subset of what it licenses
/// (inert deliveries), leaning on the additional park-substitution argument
/// documented at module level.
///
/// The relation is symmetric and irreflexive, and it is *conditional*:
/// the same pair of steps may be independent at one state and dependent at
/// another (a stale delivery commutes only until its value comes back into
/// expectation).
pub fn steps_independent_at(
    sys: &System,
    cfg: &ExploreConfig,
    a: ScheduleStep,
    b: ScheduleStep,
) -> bool {
    if sys.uses_ghosts() || a == b {
        return false;
    }
    let (Some(act_a), Some(act_b)) = (resolve(sys, cfg, a), resolve(sys, cfg, b)) else {
        return false;
    };
    if act_a == act_b {
        return false;
    }
    action_pair_independent(sys, cfg, act_a, act_b)
        || action_pair_independent(sys, cfg, act_b, act_a)
}

/// Packet value an action consumes from the pool, if any.
fn consumed_value(action: Action) -> Option<Packet> {
    match action {
        Action::Deliver(p) | Action::DropOldest(p) => Some(p),
        Action::SendMsg | Action::StepPark => None,
    }
}

/// One-directional check: is `t` a channel-invisible action that commutes
/// with `other` at `sys`? (The public relation tries both orientations.)
fn action_pair_independent(sys: &System, cfg: &ExploreConfig, t: Action, other: Action) -> bool {
    // The pair must not compete for the same packet value: consuming
    // actions on one value are totally ordered by copy age.
    if let (Some(p), Some(q)) = (consumed_value(t), consumed_value(other)) {
        if p == q {
            return false;
        }
    }
    match t {
        // A drop touches only the channel — no tick, no automaton
        // transition — so it commutes with anything off its value. (Under
        // lossy FIFO a drop can only *enable* other deliveries: removing
        // copies never increases anyone's older-copy count.)
        Action::DropOldest(_) => true,
        // An inert delivery commutes with `other` when (a) `other` leaves
        // the transmitter fingerprint unchanged, so the tick embedded in
        // the delivery mints the same retransmission on both sides of the
        // swap, (b) the delivery is still inert after `other`, and (c)
        // `other` is still enabled after the delivery — the delivery's
        // embedded tick can refill the pool to its bound and disable
        // `park`, making the swapped order unrunnable. All three are
        // checked by trial application at this state.
        Action::Deliver(_) => {
            cfg.discipline == Discipline::NonFifo
                && trial_inert(sys, t)
                && tx_preserving(sys, other)
                && inert_after(sys, cfg, other, t)
                && enabled_after(sys, cfg, t, other)
        }
        Action::SendMsg | Action::StepPark => false,
    }
}

/// True when applying `action` leaves the transmitter fingerprint unchanged.
fn tx_preserving(sys: &System, action: Action) -> bool {
    let mut probe = sys.clone();
    crate::explore::apply(&mut probe, action);
    probe.tx.state_fingerprint() == sys.tx.state_fingerprint()
}

/// True when `t` is still enabled and inert after `first` runs at `sys`.
fn inert_after(sys: &System, cfg: &ExploreConfig, first: Action, t: Action) -> bool {
    let mut probe = sys.clone();
    crate::explore::apply(&mut probe, first);
    resolve_action(&probe, cfg, t) && trial_inert(&probe, t)
}

/// True when `other` is still enabled after `first` runs at `sys`.
fn enabled_after(sys: &System, cfg: &ExploreConfig, first: Action, other: Action) -> bool {
    let mut probe = sys.clone();
    crate::explore::apply(&mut probe, first);
    resolve_action(&probe, cfg, other)
}

/// True when `t` is in the enabled set of `sys`.
fn resolve_action(sys: &System, cfg: &ExploreConfig, t: Action) -> bool {
    enabled_actions(sys, cfg).contains(&t)
}

/// Applies `step` at `sys` if it resolves to an enabled action, returning
/// the successor. Test-support surface for the property harness: the swap
/// experiment needs to run steps without the full schedule runner's
/// park-on-deliver conventions diverging from the explorer's `apply`.
pub fn apply_step(sys: &System, cfg: &ExploreConfig, step: ScheduleStep) -> Option<System> {
    let action = resolve(sys, cfg, step)?;
    let mut next = sys.clone();
    crate::explore::apply(&mut next, action);
    Some(next)
}

/// The state key of `sys` — re-exported for the property harness, which
/// compares swap results by the same digest the engines deduplicate on.
pub fn state_digest(sys: &System) -> u64 {
    state_key(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::build_root;
    use nonfifo_protocols::{AlternatingBit, SequenceNumber};

    fn nonfifo_cfg() -> ExploreConfig {
        ExploreConfig {
            por: true,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn stale_delivery_is_inert_and_sleeps() {
        // seqnum: deliver message 0, send message 1, keep a stale copy of
        // h0 parked. Delivering the stale copy is inert: rx ignores it, tx
        // ignores the echoed ack.
        let cfg = nonfifo_cfg();
        let mut sys = build_root(&SequenceNumber::new(), &cfg, true);
        sys.send_msg();
        sys.step_park_all();
        sys.step_park_all(); // two copies of h0 parked
        let stale = sys.fwd.parked_multiset().iter().next().unwrap().0;
        sys.fwd.release_oldest_of_packet(stale);
        sys.drain_released();
        sys.step_park_all();
        sys.send_msg();
        sys.step_park_all();
        assert!(
            sys.fwd.parked_multiset().packet_copies(stale) >= 1,
            "stale copy retained"
        );

        let ctx = PorCtx::new(&sys, &cfg);
        let mut child = sys.clone();
        crate::explore::apply(&mut child, Action::Deliver(stale));
        assert!(inert(&sys, &child), "stale delivery must be inert");
        assert!(ctx.sleeps(&sys, &child, Action::Deliver(stale), &cfg));
    }

    #[test]
    fn genuine_delivery_never_sleeps() {
        let cfg = nonfifo_cfg();
        let mut sys = build_root(&SequenceNumber::new(), &cfg, true);
        sys.send_msg();
        sys.step_park_all();
        let fresh = sys.fwd.parked_multiset().iter().next().unwrap().0;
        let ctx = PorCtx::new(&sys, &cfg);
        let mut child = sys.clone();
        crate::explore::apply(&mut child, Action::Deliver(fresh));
        assert!(!inert(&sys, &child), "accepted delivery moves the counters");
        assert!(!ctx.sleeps(&sys, &child, Action::Deliver(fresh), &cfg));
    }

    #[test]
    fn sleep_rule_requires_pool_slack() {
        // Build a state with a *stale* (inert) copy parked while the pool
        // sits exactly at its bound: the delivery is inert, but `park` is
        // disabled, so the sleep rule must expand it — consuming the copy
        // is the only pool-shrinking move and deferring it would lose the
        // paths that need the slack.
        let cfg = ExploreConfig {
            max_pool: 3,
            ..nonfifo_cfg()
        };
        let mut sys = build_root(&SequenceNumber::new(), &cfg, true);
        sys.send_msg();
        sys.step_park_all();
        sys.step_park_all(); // two h0 copies parked
        let stale = sys.fwd.parked_multiset().iter().next().unwrap().0;
        sys.fwd.release_oldest_of_packet(stale);
        sys.drain_released();
        sys.step_park_all(); // m0 done; one stale h0 left
        sys.send_msg();
        sys.step_park_all(); // h1 parked — pool 2
        sys.step_park_all(); // h1 again — pool 3, at the bound
        assert!(sys.fwd.in_transit_len() >= cfg.max_pool, "pool at bound");
        let ctx = PorCtx::new(&sys, &cfg);
        let mut child = sys.clone();
        crate::explore::apply(&mut child, Action::Deliver(stale));
        assert!(inert(&sys, &child), "stale delivery still inert at the cap");
        assert!(!ctx.sleeps(&sys, &child, Action::Deliver(stale), &cfg));
    }

    #[test]
    fn reduction_is_off_outside_nonfifo() {
        let cfg = ExploreConfig {
            discipline: Discipline::LossyFifo,
            ..nonfifo_cfg()
        };
        let root = build_root(&AlternatingBit::new(), &cfg, true);
        let ctx = PorCtx::new(&root, &cfg);
        assert!(!ctx.active());
        let clean = build_root(&AlternatingBit::new(), &nonfifo_cfg(), true);
        assert!(PorCtx::new(&clean, &nonfifo_cfg()).active());
    }

    #[test]
    fn independence_licenses_stale_swap_pairs_only() {
        // Same setup as the sleep test: one stale h0 copy, tx pending on
        // h1. `deliver h0` × `park` is independent; `deliver h1` (the
        // genuine one) is dependent with everything.
        let cfg = nonfifo_cfg();
        let mut sys = build_root(&SequenceNumber::new(), &cfg, true);
        sys.send_msg();
        sys.step_park_all();
        sys.step_park_all();
        let stale = sys.fwd.parked_multiset().iter().next().unwrap().0;
        sys.fwd.release_oldest_of_packet(stale);
        sys.drain_released();
        sys.step_park_all();
        sys.send_msg();
        sys.step_park_all();
        let stale_step = ScheduleStep::Deliver(stale.header());
        let fresh = sys
            .fwd
            .parked_multiset()
            .iter()
            .map(|(p, _)| p)
            .find(|p| *p != stale)
            .expect("fresh h1 copy parked");
        let fresh_step = ScheduleStep::Deliver(fresh.header());

        assert!(steps_independent_at(
            &sys,
            &cfg,
            stale_step,
            ScheduleStep::Park
        ));
        assert!(steps_independent_at(
            &sys,
            &cfg,
            ScheduleStep::Park,
            stale_step
        ));
        assert!(!steps_independent_at(
            &sys,
            &cfg,
            fresh_step,
            ScheduleStep::Park
        ));
        // The genuine delivery completes the transmitter's send, so the
        // stale delivery's embedded tick mints differently across the swap.
        assert!(!steps_independent_at(&sys, &cfg, stale_step, fresh_step));
        // Irreflexive, and unresolvable steps are never independent.
        assert!(!steps_independent_at(&sys, &cfg, stale_step, stale_step));
        let ghost_town = ScheduleStep::Deliver(nonfifo_ioa::Header::new(999));
        assert!(!steps_independent_at(&sys, &cfg, stale_step, ghost_town));
    }
}
