//! The lower-bound proofs of Mansour & Schieber (PODC 1989) as running
//! code.
//!
//! Every proof in the paper is a constructive adversary: it drives the
//! physical layer so that either the protocol delivers a message that was
//! never sent (an *invalid execution*, `rm(α) = sm(α) + 1`) or pays the
//! stated packet/space cost. This crate executes those constructions
//! against real protocol implementations:
//!
//! - [`System`] — the closed system `Aᵗ ∥ PLᵗ→ʳ ∥ PLʳ→ᵗ ∥ Aʳ` under full
//!   adversary control, with every event recorded and checked online.
//! - [`BoundnessOracle`] — the boundness quantifier ("there exists an
//!   extension β …") made effective: fork the deterministic system, let the
//!   channel behave optimally, and harvest β.
//! - [`MfFalsifier`] — the Theorem 3.1 induction: replay in-transit copies
//!   to simulate extensions, park what cannot be replayed, and grow the
//!   delayed pool until a full extension is coverable — at which point the
//!   replayed extension is an invalid execution.
//! - [`PfFalsifier`] — the Theorem 4.1 induction: park one copy of a
//!   *dominant* packet per message, forcing per-message cost ≥ in-transit/k.
//! - [`GreedyReplayAdversary`] — the cheap heuristic used by experiment E8
//!   and the bench ablation: capture one retransmission per message, then
//!   replay them in order.
//! - [`DominantTracker`] — the Theorem 5.1 instrumentation: per-extension
//!   dominant packets and the `m_{i,j}` growth trajectory over a
//!   probabilistic channel.
//! - [`boundness`] — empirical boundness and product-state counting for the
//!   Theorem 2.1 experiments.
//! - [`explore()`] — exhaustive small-scope model checking: every adversary
//!   behaviour within a bounded scope (under a non-FIFO, bounded-reorder,
//!   or lossy-FIFO [`Discipline`]), yielding either a *shortest* invalid
//!   execution or a certificate that none exists in scope.
//! - [`ParallelExplorer`] — the same exploration, level-synchronized across
//!   worker threads with a sharded visited set: deterministic outcomes
//!   independent of thread count, with the sequential explorer kept as the
//!   differential oracle.
//! - [`Explorer`] — the unified facade over both engines: one owner for
//!   the scope config, engine choice, arena, and visited-tier
//!   construction.
//! - [`StateCodec`] / [`VisitedSet`] — the state-identity layer: states
//!   bit-packed to [`EncodedState::BYTES`] fixed bytes, deduplicated
//!   through an exact in-RAM tier, an exact disk-spilling tier bounded by
//!   a memory budget, or a probabilistic Bloom tier with a reported
//!   false-dedup bound ([`VisitedSpec`]).
//! - [`shrink()`] — greedy counterexample shrinking: deletes runs of
//!   adversary actions while the schedule still replays to a violation, so
//!   machine-found attacks come back minimal and human-readable.
//! - [`Schedule`] — adversary behaviours as data: parse an attack script,
//!   replay it against any protocol, share it as an artifact.
//!
//! # Example
//!
//! Break the alternating-bit protocol over a non-FIFO channel and get the
//! invalid execution the paper promises:
//!
//! ```
//! use nonfifo_adversary::{FalsifyOutcome, MfFalsifier};
//! use nonfifo_protocols::AlternatingBit;
//!
//! let outcome = MfFalsifier::default().run(&AlternatingBit::new());
//! match outcome {
//!     FalsifyOutcome::Violation(report) => {
//!         // One more receive_msg than send_msg: DL1 refuted.
//!         assert!(report.execution.counts().rm > report.execution.counts().sm);
//!     }
//!     other => panic!("alternating bit should fall: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundness;
pub mod codec;
mod dominant;
pub mod explore;
pub mod explore_par;
mod explorer;
mod greedy;
mod mf;
mod oracle;
mod pf;
pub mod por;
mod schedule;
mod shrink;
mod system;
pub mod visited;
mod workpool;

pub use codec::{CodecMode, EncodedState, StateCodec};
pub use dominant::{DominantReport, DominantTracker, ProbRunConfig};
pub use explore::{
    explore, explore_with_stats, scope_root, Discipline, ExploreConfig, ExploreOutcome,
    ExploreStats,
};
pub use explore_par::{explore_parallel, ExploreArena, ParallelExplorer};
pub use explorer::Explorer;
pub use greedy::GreedyReplayAdversary;
pub use mf::{MfConfig, MfFalsifier, MfGrowthStage};
pub use oracle::{BoundnessOracle, Extension};
pub use pf::{PfConfig, PfFalsifier, PfMessageCost};
pub use por::{apply_step, state_digest, steps_independent_at};
pub use schedule::{Schedule, ScheduleError, ScheduleStep};
pub use shrink::{shrink, ShrinkError, ShrinkOutcome};
pub use system::{Disposition, System};
pub use visited::{
    ProbabilisticVisited, RamVisited, TieredVisited, VisitedSet, VisitedSpec, DEFAULT_COMPACT_RUNS,
    DEFAULT_MEMORY_BUDGET,
};
pub use workpool::ChunkCursor;

use nonfifo_ioa::{Execution, SpecViolation};

/// The result of running a falsifier against a protocol.
#[derive(Debug, Clone)]
pub enum FalsifyOutcome {
    /// The adversary constructed an invalid execution — the protocol
    /// violates the data-link specification over a non-FIFO channel.
    Violation(ViolationReport),
    /// The protocol withstood the adversary within the configured budget
    /// (e.g. it uses per-message headers, like the naive protocol).
    Survived(SurvivalReport),
    /// The protocol failed to make progress even under an optimally
    /// behaving channel — it is not a live data-link protocol at all.
    Stuck {
        /// Messages delivered before the protocol wedged.
        delivered: u64,
    },
    /// The protocol kept its safety but its packet cost outran the step
    /// budget — the other horn of the paper's dilemma (pay in packets and
    /// space instead of violating DL1).
    BudgetExhausted {
        /// Messages delivered before the budget ran out.
        delivered: u64,
        /// Forward packets sent up to that point.
        forward_packets_sent: u64,
    },
}

impl FalsifyOutcome {
    /// True if the adversary found an invalid execution.
    pub fn is_violation(&self) -> bool {
        matches!(self, FalsifyOutcome::Violation(_))
    }
}

/// Evidence of a specification violation.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The violation flagged by the online monitor.
    pub violation: SpecViolation,
    /// The full recorded execution ending in the violation.
    pub execution: Execution,
    /// Messages legitimately delivered before the phantom one.
    pub messages_before_violation: u64,
    /// Total packets the transmitter sent on the forward channel.
    pub forward_packets_sent: u64,
}

/// Statistics from a survived falsification attempt.
#[derive(Debug, Clone)]
pub struct SurvivalReport {
    /// Messages delivered during the attack.
    pub messages_delivered: u64,
    /// Total forward packets sent.
    pub forward_packets_sent: u64,
    /// Copies still delayed on the forward channel at the end.
    pub final_in_transit: u64,
    /// Peak transmitter + receiver space observed, in bytes.
    pub peak_space_bytes: usize,
    /// Distinct forward packet values sent — the execution's header count.
    pub distinct_forward_packets: u64,
}
