//! A cheap replay heuristic: capture one retransmission per message, then
//! replay the captured copies in order.
//!
//! Much weaker than the [`MfFalsifier`](crate::MfFalsifier) (no boundness
//! oracle, no coverage reasoning) but enough to break the classic cycle
//! protocols, and it makes a good ablation point for the benches: how much
//! of the falsifier's power comes from the paper's construction versus
//! brute replay.

use crate::system::{Disposition, System};
use crate::{FalsifyOutcome, SurvivalReport, ViolationReport};
use nonfifo_channel::Channel;
use nonfifo_ioa::{Dir, Packet};
use nonfifo_protocols::DataLink;

/// The greedy capture-and-replay adversary.
#[derive(Debug, Clone, Copy)]
pub struct GreedyReplayAdversary {
    /// Messages to deliver while capturing copies.
    pub capture_messages: u64,
    /// Scheduler steps allowed per message.
    pub max_steps_per_message: u64,
}

impl Default for GreedyReplayAdversary {
    fn default() -> Self {
        GreedyReplayAdversary {
            capture_messages: 16,
            max_steps_per_message: 10_000,
        }
    }
}

impl GreedyReplayAdversary {
    /// Runs the attack: phase 1 delivers `capture_messages` messages
    /// normally while parking one retransmitted copy of each; phase 2
    /// replays the parked pool oldest-first into the receiver.
    pub fn run(&self, proto: &dyn DataLink) -> FalsifyOutcome {
        let mut sys = System::new(proto);

        // Phase 1: capture. Park the first copy of each message, deliver
        // the retransmissions.
        for _ in 0..self.capture_messages {
            sys.send_msg();
            let mut captured = false;
            let mut steps = 0;
            while sys.counts().rm < sys.counts().sm {
                if steps >= self.max_steps_per_message {
                    return FalsifyOutcome::BudgetExhausted {
                        delivered: sys.counts().rm,
                        forward_packets_sent: sys.fwd.total_sent(),
                    };
                }
                sys.step(|_pkt, _copy, _ch| {
                    if captured {
                        Disposition::Deliver
                    } else {
                        captured = true;
                        Disposition::Park
                    }
                });
                if sys.violation().is_some() {
                    break;
                }
                steps += 1;
            }
            if let Some(v) = sys.violation() {
                return FalsifyOutcome::Violation(ViolationReport {
                    violation: v,
                    execution: sys.execution().clone(),
                    messages_before_violation: sys.counts().sm,
                    forward_packets_sent: sys.fwd.total_sent(),
                });
            }
        }

        // Phase 2: replay everything captured, oldest first.
        let pool: Vec<Packet> = sys
            .fwd
            .parked_multiset()
            .iter()
            .map(|(pkt, _)| pkt)
            .collect();
        for pkt in pool {
            sys.replay_receipts(&[pkt]);
            if let Some(v) = sys.violation() {
                return FalsifyOutcome::Violation(ViolationReport {
                    violation: v,
                    execution: sys.execution().clone(),
                    messages_before_violation: sys.counts().sm,
                    forward_packets_sent: sys.fwd.total_sent(),
                });
            }
        }

        FalsifyOutcome::Survived(SurvivalReport {
            messages_delivered: sys.counts().rm,
            forward_packets_sent: sys.fwd.total_sent(),
            final_in_transit: sys.counts().in_transit(Dir::Forward),
            peak_space_bytes: sys.peak_space_bytes(),
            distinct_forward_packets: sys.distinct_forward_packets(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{AlternatingBit, NaiveCycle, SequenceNumber};

    #[test]
    fn breaks_alternating_bit() {
        let outcome = GreedyReplayAdversary::default().run(&AlternatingBit::new());
        assert!(outcome.is_violation(), "got {outcome:?}");
    }

    #[test]
    fn breaks_naive_cycles() {
        for k in [2u32, 4] {
            let outcome = GreedyReplayAdversary::default().run(&NaiveCycle::new(k));
            assert!(outcome.is_violation(), "k={k}: {outcome:?}");
        }
    }

    #[test]
    fn sequence_numbers_resist_greed() {
        let outcome = GreedyReplayAdversary::default().run(&SequenceNumber::new());
        assert!(
            matches!(outcome, FalsifyOutcome::Survived(_)),
            "got {outcome:?}"
        );
    }
}
