//! Exhaustive small-scope exploration of the adversary's choices.
//!
//! The falsifiers follow the paper's particular strategy; this module
//! instead enumerates *every* adversary behaviour within a bounded scope
//! (messages, pool size, action depth) by breadth-first search over the
//! composed system's state space. Within the scope it either returns a
//! **shortest** invalid execution, or a certificate that none exists — a
//! small-scope verification complementing the constructive lower bounds:
//! the naive sequence-number protocol is *exhaustively* safe in scope,
//! while the bounded-header victims fall with minimal counterexamples.
//!
//! The adversary's power is a [`Discipline`]: the default non-FIFO channel
//! may replay any delayed copy, a bounded-reorder channel may only deliver
//! copies that overtake at most `b` older ones, and a lossy-FIFO channel
//! delivers in order but may lose queued copies. Exploring the same
//! protocol under different disciplines reproduces the paper's dichotomy
//! as a protocol × channel matrix (the alternating bit is exhaustively
//! safe under lossy FIFO and falls under non-FIFO, in the same scope).
//!
//! Soundness of deduplication: every action ends with the transmitter's
//! outbox drained onto the (parked) forward channel and the backward
//! channel empty, so the state key — control fingerprints of both automata,
//! the forward pool histogram, and the message counters — determines all
//! future behaviour of the deterministic system.
//!
//! This sequential explorer is the **oracle**: the level-synchronized
//! parallel engine in [`explore_par`](crate::explore_par) shares the
//! expansion core below (`enabled_actions` / `apply` / `state_key`) and is
//! differentially tested against this one.
//!
//! The two engines drive the visited tier through deliberately different
//! contracts. The oracle calls [`VisitedSet::insert`] one key at a time —
//! the simplest use of the trait, and the easiest to audit. The parallel
//! engine uses the batched side of the same trait
//! ([`VisitedSet::contains_resident`] during expansion, then
//! [`VisitedSet::probe_spilled_sorted`] over sorted per-shard batches and
//! [`VisitedSet::insert_new`] at the level merge), which turns disk-tier
//! probing into one sequential block read per batch instead of a random
//! read per key. Byte-identical reports across both engines and every
//! tier — pinned by `tests/visited_props.rs` — are what certify that the
//! batched path implements exactly this oracle's semantics.

use crate::schedule::{Schedule, ScheduleStep};
use crate::system::System;
use crate::visited::VisitedSet;
use nonfifo_channel::Channel as _;
use nonfifo_ioa::{CopyId, Execution, Header, Packet};
use nonfifo_protocols::DataLink;
use nonfifo_rng::StdRng;
use std::collections::VecDeque;
use std::fmt;

// The state-identity plumbing lives in one shared module now
// ([`crate::codec`] / [`crate::visited`]); these re-exports keep the
// historical in-crate paths valid.

/// What the forward channel is allowed to do with delayed copies — the
/// channel axis of the exploration matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Full non-FIFO power (the paper's PL1 channel): any delayed copy may
    /// be delivered at any time.
    NonFifo,
    /// A copy may be delivered only if at most `b` older copies are still
    /// delayed — the bounded-reorder-distance channel of experiment E9.
    /// `BoundedReorder(0)` is reliable FIFO.
    BoundedReorder(u64),
    /// FIFO delivery (only the globally oldest delayed copy), but any
    /// delayed copy may be lost. The alternating bit is exhaustively safe
    /// here — loss alone cannot reorder.
    LossyFifo,
}

impl fmt::Display for Discipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Discipline::NonFifo => write!(f, "nonfifo"),
            Discipline::BoundedReorder(b) => write!(f, "reorder{b}"),
            Discipline::LossyFifo => write!(f, "lossy"),
        }
    }
}

impl std::str::FromStr for Discipline {
    type Err = String;

    /// Parses `nonfifo`, `lossy`, or `reorder<b>` (e.g. `reorder2`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "nonfifo" => Ok(Discipline::NonFifo),
            "lossy" => Ok(Discipline::LossyFifo),
            _ => s
                .strip_prefix("reorder")
                .and_then(|b| b.parse().ok())
                .map(Discipline::BoundedReorder)
                .ok_or_else(|| format!("unknown discipline {s:?} (nonfifo, reorder<b>, lossy)")),
        }
    }
}

/// Scope bounds for the exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum `send_msg` actions.
    pub max_messages: u64,
    /// Maximum actions along any path.
    pub max_depth: usize,
    /// Maximum copies in the forward pool (branches beyond are pruned —
    /// the certificate is relative to this bound).
    pub max_pool: usize,
    /// Safety valve on visited states. Reaching it makes the outcome
    /// [`ExploreOutcome::Truncated`] — **not** a certificate; callers must
    /// treat it as inconclusive.
    pub max_states: usize,
    /// The channel discipline the adversary plays under.
    pub discipline: Discipline,
    /// Start the exploration from a *corrupted* root: the seed drives a
    /// small deterministic preload of junk packet copies onto the parked
    /// forward channel (declared as monitored sends, so PL1 checking stays
    /// meaningful) before the first adversary action. `None` is the
    /// ordinary clean boot. A certificate under `Some(_)` says no adversary
    /// schedule violates safety *even from that poisoned in-transit state* —
    /// the small-scope face of self-stabilization.
    pub corrupt_start: Option<u64>,
    /// Enable partial-order reduction: defer inert deliveries under the
    /// sleep-set rule of [`por`](crate::por). Effective only under
    /// [`Discipline::NonFifo`] with ghost-free protocols (elsewhere the
    /// reduced search silently equals the full one). Certificates and
    /// counterexample existence are preserved — the shortest reachable
    /// violation survives the reduction — but `Exhausted` state counts
    /// shrink, so reduced and full reports are *not* byte-comparable;
    /// compare outcome kind, depth, and shrunk schedules instead.
    pub por: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_messages: 3,
            max_depth: 14,
            max_pool: 6,
            max_states: 200_000,
            discipline: Discipline::NonFifo,
            corrupt_start: None,
            por: false,
        }
    }
}

/// Decorrelates corrupted-root preloads from other consumers of the seed.
const CORRUPT_ROOT_SALT: u64 = 0x5eed_c0de_ba5e_0001;

/// Builds the root [`System`] of `cfg`'s scope — the state every replay of
/// an emitted schedule must start from. For clean scopes this is a fresh
/// boot; with [`ExploreConfig::corrupt_start`] set it carries the seeded
/// junk preload, and replaying from `System::new` instead desynchronises
/// on the first step that touches the preloaded junk.
pub fn scope_root(proto: &dyn DataLink, cfg: &ExploreConfig) -> System {
    build_root(proto, cfg, true)
}

/// Builds the exploration root for `cfg`: a fresh closed system, its event
/// log disabled first when `event_log` is false (the parallel engine's
/// counters-only frontier), then the corrupted-start preload applied if
/// configured. Both engines — and the counterexample re-materialisation —
/// construct their roots through this one path, so corrupted starts cannot
/// desynchronise them.
pub(crate) fn build_root(proto: &dyn DataLink, cfg: &ExploreConfig, event_log: bool) -> System {
    let mut root = System::new(proto);
    if !event_log {
        root.disable_event_log();
    }
    if let Some(seed) = cfg.corrupt_start {
        let mut rng = StdRng::seed_from_u64(seed ^ CORRUPT_ROOT_SALT);
        // One or two distinct junk values, one or two copies each, capped
        // by the scope's pool bound: enough to poison the receiver's view
        // without drowning the state space. Headers stay small (0..8) so
        // the junk collides with real alphabets instead of being ignored.
        let values = rng.gen_range(1..3);
        for _ in 0..values {
            let pkt = Packet::header_only(Header::new(rng.gen_range(0..8) as u32));
            let copies = rng.gen_range(1..3);
            for _ in 0..copies {
                if root.fwd.in_transit_len() >= cfg.max_pool {
                    return root;
                }
                root.preload_forward(pkt);
            }
        }
    }
    root
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub enum ExploreOutcome {
    /// A shortest-in-actions invalid execution within the scope.
    Counterexample {
        /// The invalid execution.
        execution: Execution,
        /// Number of adversary actions on the path.
        depth: usize,
        /// The attack as a replayable script (see
        /// [`Schedule`](crate::Schedule)): running it against the same
        /// protocol reproduces the violation.
        schedule: Schedule,
    },
    /// No invalid execution exists within the scope.
    Exhausted {
        /// Distinct states visited.
        states: usize,
    },
    /// The state budget ran out before the scope was covered; no
    /// conclusion.
    Truncated {
        /// Distinct states visited before giving up.
        states: usize,
    },
}

impl ExploreOutcome {
    /// True if a counterexample was found.
    pub fn is_counterexample(&self) -> bool {
        matches!(self, ExploreOutcome::Counterexample { .. })
    }

    /// True if the scope was fully covered with no counterexample — the
    /// only outcome that is a safety certificate.
    pub fn is_certificate(&self) -> bool {
        matches!(self, ExploreOutcome::Exhausted { .. })
    }

    /// True if the state budget ran out — an inconclusive outcome that
    /// callers must never report as safety.
    pub fn is_truncated(&self) -> bool {
        matches!(self, ExploreOutcome::Truncated { .. })
    }

    /// A canonical one-report rendering: identical inputs produce
    /// byte-identical reports, whatever engine or thread count produced the
    /// outcome. The differential tests compare these strings.
    pub fn report(&self) -> String {
        match self {
            ExploreOutcome::Counterexample {
                execution,
                depth,
                schedule,
            } => format!(
                "counterexample: {depth} adversary actions, {} events\n{}",
                execution.len(),
                schedule.to_text()
            ),
            ExploreOutcome::Exhausted { states } => {
                format!(
                    "certificate: no invalid execution in scope (exhaustive, {states} states)\n"
                )
            }
            ExploreOutcome::Truncated { states } => {
                format!("inconclusive: state budget exhausted after {states} states\n")
            }
        }
    }
}

/// One adversary action in the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Action {
    /// Hand the next message to the transmitter (sends parked).
    SendMsg,
    /// One scheduler step with everything parked (drives retransmission).
    StepPark,
    /// Release the oldest delayed copy of a packet value to the receiver.
    Deliver(Packet),
    /// Lose the oldest delayed copy of a packet value (lossy disciplines).
    DropOldest(Packet),
}

/// Fills `oldest` with each distinct parked packet value's oldest delayed
/// copy, in packet order (deterministic). The multiset's entries are sorted
/// by copy id, so the first occurrence of a value is its oldest copy; the
/// distinct-value count is tiny (bounded by the scope's pool), so the
/// membership scan is a few cache lines.
fn oldest_copies_into(sys: &System, oldest: &mut Vec<(Packet, CopyId)>) {
    oldest.clear();
    for (packet, copy) in sys.fwd.parked_multiset().iter() {
        if !oldest.iter().any(|&(p, _)| p == packet) {
            oldest.push((packet, copy));
        }
    }
    oldest.sort_unstable();
}

/// Fills `actions` with the enabled adversary actions, reusing `oldest` as
/// scratch — the allocation-free core of both explorers' expansion loops.
pub(crate) fn enabled_actions_into(
    sys: &System,
    cfg: &ExploreConfig,
    oldest: &mut Vec<(Packet, CopyId)>,
    actions: &mut Vec<Action>,
) {
    actions.clear();
    if sys.ready() && sys.messages_sent() < cfg.max_messages {
        actions.push(Action::SendMsg);
    }
    if sys.fwd.in_transit_len() < cfg.max_pool {
        actions.push(Action::StepPark);
    }
    oldest_copies_into(sys, oldest);
    // A delivery overtakes the delayed copies older than the one released;
    // each discipline bounds how many it may overtake.
    let ms = sys.fwd.parked_multiset();
    match cfg.discipline {
        Discipline::NonFifo => {
            for &(packet, _) in oldest.iter() {
                actions.push(Action::Deliver(packet));
            }
        }
        Discipline::BoundedReorder(bound) => {
            for &(packet, copy) in oldest.iter() {
                if ms.copies_older_than(copy) as u64 <= bound {
                    actions.push(Action::Deliver(packet));
                }
            }
        }
        Discipline::LossyFifo => {
            for &(packet, copy) in oldest.iter() {
                if ms.copies_older_than(copy) == 0 {
                    actions.push(Action::Deliver(packet));
                }
            }
            for &(packet, _) in oldest.iter() {
                actions.push(Action::DropOldest(packet));
            }
        }
    }
}

pub(crate) fn enabled_actions(sys: &System, cfg: &ExploreConfig) -> Vec<Action> {
    let mut oldest = Vec::new();
    let mut actions = Vec::new();
    enabled_actions_into(sys, cfg, &mut oldest, &mut actions);
    actions
}

pub(crate) fn apply(sys: &mut System, action: Action) {
    match action {
        Action::SendMsg => {
            sys.send_msg();
            // Drain the transmitter's immediate output into the pool so the
            // state key captures it.
            sys.step_park_all();
        }
        Action::StepPark => {
            sys.step_park_all();
        }
        Action::Deliver(packet) => {
            sys.fwd.release_oldest_of_packet(packet);
            sys.drain_released();
            // The receiver's acks may wake the transmitter; park its output.
            sys.step_park_all();
        }
        Action::DropOldest(packet) => {
            // Mirrors `ScheduleStep::Drop` replay exactly: the loss is a
            // monitored drop, no scheduler step elapses.
            sys.fwd.drop_oldest_of_packet(packet);
            sys.drain_released();
        }
    }
}

pub(crate) fn to_step(action: Action) -> ScheduleStep {
    match action {
        Action::SendMsg => ScheduleStep::Send,
        Action::StepPark => ScheduleStep::Park,
        Action::Deliver(packet) => ScheduleStep::Deliver(packet.header()),
        Action::DropOldest(packet) => ScheduleStep::Drop(packet.header()),
    }
}

/// Side statistics of one exploration run — what the search did, beyond
/// the outcome it returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Successor transitions put to sleep by the partial-order reduction
    /// (always 0 with [`ExploreConfig::por`] off or inapplicable).
    pub pruned: u64,
}

/// Exhaustively explores the adversary's choices against `proto`.
pub fn explore(proto: &dyn DataLink, cfg: &ExploreConfig) -> ExploreOutcome {
    explore_with_stats(proto, cfg).0
}

/// [`explore`], also returning the run's [`ExploreStats`]. A thin wrapper
/// over the [`Explorer`](crate::Explorer) facade in its default
/// configuration (sequential engine, exact in-RAM visited tier) — kept so
/// the historical entry point and its regression pins stay valid.
pub fn explore_with_stats(
    proto: &dyn DataLink,
    cfg: &ExploreConfig,
) -> (ExploreOutcome, ExploreStats) {
    crate::explorer::Explorer::new(*cfg).explore_with_stats(proto)
}

/// The sequential breadth-first search — the oracle engine, generic over
/// the visited tier. `visited` must arrive empty (cleared); the facade owns
/// its construction and reuse.
pub(crate) fn run_sequential(
    proto: &dyn DataLink,
    cfg: &ExploreConfig,
    visited: &mut dyn VisitedSet,
) -> (ExploreOutcome, ExploreStats) {
    let root = build_root(proto, cfg, true);
    let por = crate::por::PorCtx::new(&root, cfg);
    let mut stats = ExploreStats::default();
    visited.insert(por.key(&root));
    let mut frontier: VecDeque<(System, Vec<ScheduleStep>)> = VecDeque::new();
    frontier.push_back((root, Vec::new()));

    while let Some((sys, path)) = frontier.pop_front() {
        if path.len() >= cfg.max_depth {
            continue;
        }
        for action in enabled_actions(&sys, cfg) {
            let mut next = sys.clone();
            apply(&mut next, action);
            if next.violation().is_some() {
                let mut steps = path.clone();
                steps.push(to_step(action));
                let outcome = ExploreOutcome::Counterexample {
                    execution: next.execution().clone(),
                    depth: steps.len(),
                    schedule: Schedule::new(steps),
                };
                return (outcome, stats);
            }
            // The sleep decision is a pure function of (state, action), so
            // it sits *after* the violation check (a violating successor is
            // never inert, but keep the order manifest) and *before* dedup:
            // a slept edge is neither recorded nor expanded, here or in the
            // parallel engine.
            if por.sleeps(&sys, &next, action, cfg) {
                stats.pruned += 1;
                continue;
            }
            let key = por.key(&next);
            if visited.insert(key) {
                if visited.len() >= cfg.max_states {
                    let outcome = ExploreOutcome::Truncated {
                        states: visited.len(),
                    };
                    return (outcome, stats);
                }
                let mut steps = path.clone();
                steps.push(to_step(action));
                frontier.push_back((next, steps));
            }
        }
    }
    let outcome = ExploreOutcome::Exhausted {
        states: visited.len(),
    };
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::state_key;
    use nonfifo_ioa::spec::{check_dl1, check_pl1, Validity};
    use nonfifo_ioa::Dir;
    use nonfifo_protocols::{AlternatingBit, NaiveCycle, SequenceNumber, StabilizingDl};

    #[test]
    fn finds_minimal_counterexample_for_alternating_bit() {
        let outcome = explore(&AlternatingBit::new(), &ExploreConfig::default());
        let ExploreOutcome::Counterexample {
            execution,
            depth,
            schedule,
        } = outcome
        else {
            panic!("expected counterexample, got {outcome:?}");
        };
        // The minimal attack: deliver two messages (keeping a stale copy of
        // bit 0), then replay it. That is 7 adversary actions or fewer.
        assert!(depth <= 7, "depth {depth}");
        // The counterexample is a genuine invalid execution over a legal
        // channel.
        assert!(check_dl1(&execution).is_err());
        assert!(matches!(
            Validity::classify(&execution),
            Validity::Invalid(_)
        ));
        check_pl1(&execution, Dir::Forward).unwrap();
        check_pl1(&execution, Dir::Backward).unwrap();
        // The emitted schedule is replayable: running it reproduces the
        // violation from scratch.
        let replayed = schedule.run(&AlternatingBit::new()).expect("replay");
        assert!(replayed.violation().is_some());
        assert_eq!(replayed.counts().rm, replayed.counts().sm + 1);
        // And it survives a text round trip.
        let text = schedule.to_text();
        let parsed = crate::Schedule::parse(&text).unwrap();
        assert_eq!(parsed, schedule);
    }

    #[test]
    fn finds_counterexample_for_cycle3_with_more_messages() {
        let cfg = ExploreConfig {
            max_messages: 4,
            max_depth: 16,
            max_pool: 6,
            max_states: 500_000,
            ..ExploreConfig::default()
        };
        let outcome = explore(&NaiveCycle::new(3), &cfg);
        assert!(outcome.is_counterexample(), "got {outcome:?}");
    }

    #[test]
    fn sequence_number_is_exhaustively_safe_in_scope() {
        let cfg = ExploreConfig {
            max_messages: 3,
            max_depth: 12,
            max_pool: 5,
            max_states: 500_000,
            ..ExploreConfig::default()
        };
        let outcome = explore(&SequenceNumber::new(), &cfg);
        let ExploreOutcome::Exhausted { states } = outcome else {
            panic!("expected exhaustive certificate, got {outcome:?}");
        };
        assert!(states > 10, "trivially small exploration: {states}");
    }

    #[test]
    fn scope_bounds_are_respected() {
        // With no messages allowed there is nothing to violate.
        let cfg = ExploreConfig {
            max_messages: 0,
            max_depth: 6,
            max_pool: 3,
            max_states: 1000,
            ..ExploreConfig::default()
        };
        let outcome = explore(&AlternatingBit::new(), &cfg);
        assert!(matches!(outcome, ExploreOutcome::Exhausted { .. }));
    }

    #[test]
    fn alternating_bit_is_exhaustively_safe_under_lossy_fifo() {
        // Loss alone cannot reorder: the protocol that falls to the
        // non-FIFO adversary in 6 actions carries a certificate here.
        let cfg = ExploreConfig {
            discipline: Discipline::LossyFifo,
            ..ExploreConfig::default()
        };
        let outcome = explore(&AlternatingBit::new(), &cfg);
        assert!(outcome.is_certificate(), "got {outcome:?}");
    }

    #[test]
    fn alternating_bit_is_exhaustively_safe_under_fifo() {
        let cfg = ExploreConfig {
            discipline: Discipline::BoundedReorder(0),
            ..ExploreConfig::default()
        };
        let outcome = explore(&AlternatingBit::new(), &cfg);
        assert!(outcome.is_certificate(), "got {outcome:?}");
    }

    #[test]
    fn bounded_reorder_restores_the_attack() {
        // Enough reorder distance re-enables the stale replay.
        let cfg = ExploreConfig {
            discipline: Discipline::BoundedReorder(8),
            ..ExploreConfig::default()
        };
        let outcome = explore(&AlternatingBit::new(), &cfg);
        assert!(outcome.is_counterexample(), "got {outcome:?}");
    }

    #[test]
    fn truncation_is_not_a_certificate() {
        let cfg = ExploreConfig {
            max_states: 10,
            ..ExploreConfig::default()
        };
        let outcome = explore(&SequenceNumber::new(), &cfg);
        assert!(outcome.is_truncated(), "got {outcome:?}");
        assert!(!outcome.is_certificate());
        assert!(outcome.report().contains("inconclusive"));
    }

    #[test]
    fn corrupted_roots_are_deterministic_per_seed() {
        let cfg = ExploreConfig {
            corrupt_start: Some(42),
            ..ExploreConfig::default()
        };
        let a = build_root(&SequenceNumber::new(), &cfg, true);
        let b = build_root(&SequenceNumber::new(), &cfg, true);
        assert_eq!(state_key(&a), state_key(&b));
        assert!(
            a.fwd.in_transit_len() > 0,
            "a corrupted root preloads at least one junk copy"
        );
        assert_eq!(a.execution().len(), b.execution().len());
        // Every preloaded copy is a declared send: the monitor saw it.
        assert_eq!(a.violation(), None);
    }

    #[test]
    fn corrupted_starts_separate_stabilizing_from_trusting_protocols() {
        // The counting protocol needs capacity+1 identical sightings to
        // deliver; a preload of at most two copies per junk value can never
        // cross that threshold, so every corrupted start carries a
        // certificate. The sequence-number protocol trusts whatever matches
        // its expected header — a junk copy of header 0 is a phantom
        // delivery one adversary action deep.
        let scope = |seed| ExploreConfig {
            max_messages: 2,
            max_depth: 8,
            max_pool: 4,
            max_states: 300_000,
            corrupt_start: Some(seed),
            ..ExploreConfig::default()
        };
        let mut seqnum_fell = false;
        for seed in 0..16 {
            let dl = explore(&StabilizingDl::new(), &scope(seed));
            assert!(
                dl.is_certificate(),
                "seed {seed}: stabilizing-dl got {dl:?}"
            );
            if explore(&SequenceNumber::new(), &scope(seed)).is_counterexample() {
                seqnum_fell = true;
            }
        }
        assert!(
            seqnum_fell,
            "no junk preload collided with seqnum's expected header across 16 seeds"
        );
    }

    #[test]
    fn discipline_parses_and_displays() {
        for text in ["nonfifo", "lossy", "reorder0", "reorder7"] {
            let d: Discipline = text.parse().unwrap();
            assert_eq!(d.to_string(), text);
        }
        assert!("reorder".parse::<Discipline>().is_err());
        assert!("fifoish".parse::<Discipline>().is_err());
    }
}
