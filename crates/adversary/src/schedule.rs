//! Scriptable adversary schedules.
//!
//! A [`Schedule`] is the adversary's side of an execution as *data*: a
//! sequence of channel decisions that can be written to a file, shared,
//! and replayed against any protocol. The minimal alternating-bit attack
//! becomes a six-line script:
//!
//! ```text
//! send            // message 0; fresh sends parked
//! park            // one tick: the retransmission banks a second copy
//! deliver h0      // deliver one copy, keep the stale one parked
//! send            // message 1
//! deliver h1
//! deliver h0      // replay the stale copy: phantom delivery
//! ```
//!
//! The text format is one action per line; blank lines and `//` comments
//! are ignored:
//!
//! ```text
//! send                      hand the next message to the transmitter
//! park                      one scheduler step, everything parked
//! deliver-all               one scheduler step, fresh copies delivered
//! deliver h<index>          release the oldest delayed copy of a header
//! drop h<index>             delete the oldest delayed copy of a header
//! quiesce                   deliver fresh copies until rm = sm (≤ 10k steps)
//! ```
//!
//! The chaos fault verbs mirror the fault kinds of
//! `nonfifo_channel::ChaosChannel`; they are *lenient* — when the fault is
//! not applicable (no delayed copy of the header, already partitioned) the
//! verb is a no-op, so machine-generated repro schedules always replay:
//!
//! ```text
//! dup h<index>              mint a parked twin of the oldest delayed copy
//! corrupt h<index>          replace the oldest delayed copy, bit-corrupted
//! partition                 sever the forward channel: fresh sends are lost
//! heal                      end the partition
//! crash tx                  transmitter amnesia crash (channels untouched)
//! crash rx                  receiver amnesia crash
//! ```

use crate::system::System;
use nonfifo_ioa::{Header, Packet};
use nonfifo_protocols::DataLink;
use std::error::Error;
use std::fmt;

/// One adversary action.
///
/// The derived `Ord` (declaration order, then argument order) is the
/// lexicographic tie-break the parallel explorer uses to pick *one*
/// canonical counterexample among equally short ones, so its result is
/// independent of thread count and scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScheduleStep {
    /// `send_msg` (panics at run time if the transmitter is busy — the
    /// runner reports it as a [`ScheduleError`] instead).
    Send,
    /// One scheduler step with every fresh forward copy parked.
    Park,
    /// One scheduler step with every fresh forward copy delivered.
    DeliverAll,
    /// Release the oldest delayed copy of the given header.
    Deliver(Header),
    /// Drop the oldest delayed copy of the given header.
    Drop(Header),
    /// Run `step_deliver_all` until the outstanding message count reaches
    /// zero (budgeted).
    Quiesce,
    /// Mint a parked duplicate of the oldest delayed copy of the header
    /// (lenient: no-op when none is delayed).
    Dup(Header),
    /// Replace the oldest delayed copy of the header with a bit-corrupted
    /// rewrite (lenient: no-op when none is delayed).
    Corrupt(Header),
    /// Sever the forward channel: fresh sends are dropped until `heal`.
    Partition,
    /// End a partition.
    Heal,
    /// Transmitter amnesia crash (in-transit copies survive).
    CrashTx,
    /// Receiver amnesia crash (in-transit copies survive).
    CrashRx,
}

impl fmt::Display for ScheduleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleStep::Send => write!(f, "send"),
            ScheduleStep::Park => write!(f, "park"),
            ScheduleStep::DeliverAll => write!(f, "deliver-all"),
            ScheduleStep::Deliver(h) => write!(f, "deliver {h}"),
            ScheduleStep::Drop(h) => write!(f, "drop {h}"),
            ScheduleStep::Quiesce => write!(f, "quiesce"),
            ScheduleStep::Dup(h) => write!(f, "dup {h}"),
            ScheduleStep::Corrupt(h) => write!(f, "corrupt {h}"),
            ScheduleStep::Partition => write!(f, "partition"),
            ScheduleStep::Heal => write!(f, "heal"),
            ScheduleStep::CrashTx => write!(f, "crash tx"),
            ScheduleStep::CrashRx => write!(f, "crash rx"),
        }
    }
}

/// A sequence of adversary actions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<ScheduleStep>,
}

/// Why a schedule failed to parse or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// 1-based line (parse) or step (run) number.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {}: {}", self.at, self.message)
    }
}

impl Error for ScheduleError {}

impl Schedule {
    /// Creates a schedule from steps.
    pub fn new(steps: Vec<ScheduleStep>) -> Self {
        Schedule { steps }
    }

    /// The steps in order.
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.steps
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] naming the offending line.
    pub fn parse(input: &str) -> Result<Schedule, ScheduleError> {
        let mut steps = Vec::new();
        for (i, raw) in input.lines().enumerate() {
            let line = raw.split("//").next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let head = tokens.next().expect("non-empty line");
            let header_arg = |tokens: &mut std::str::SplitWhitespace<'_>| {
                let tok = tokens.next().ok_or(ScheduleError {
                    at: i + 1,
                    message: format!("{head} needs a header argument (h<index>)"),
                })?;
                let idx = tok
                    .strip_prefix('h')
                    .and_then(|s| s.parse::<u32>().ok())
                    .ok_or(ScheduleError {
                        at: i + 1,
                        message: format!("bad header {tok:?}"),
                    })?;
                Ok(Header::new(idx))
            };
            let step = match head {
                "send" => ScheduleStep::Send,
                "park" => ScheduleStep::Park,
                "deliver-all" => ScheduleStep::DeliverAll,
                "quiesce" => ScheduleStep::Quiesce,
                "deliver" => ScheduleStep::Deliver(header_arg(&mut tokens)?),
                "drop" => ScheduleStep::Drop(header_arg(&mut tokens)?),
                "dup" => ScheduleStep::Dup(header_arg(&mut tokens)?),
                "corrupt" => ScheduleStep::Corrupt(header_arg(&mut tokens)?),
                "partition" => ScheduleStep::Partition,
                "heal" => ScheduleStep::Heal,
                "crash" => match tokens.next() {
                    Some("tx") => ScheduleStep::CrashTx,
                    Some("rx") => ScheduleStep::CrashRx,
                    other => {
                        return Err(ScheduleError {
                            at: i + 1,
                            message: format!("crash needs a station (tx|rx), got {other:?}"),
                        })
                    }
                },
                other => {
                    return Err(ScheduleError {
                        at: i + 1,
                        message: format!("unknown action {other:?}"),
                    })
                }
            };
            if let Some(extra) = tokens.next() {
                return Err(ScheduleError {
                    at: i + 1,
                    message: format!("unexpected trailing token {extra:?}"),
                });
            }
            steps.push(step);
        }
        Ok(Schedule { steps })
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&s.to_string());
            out.push('\n');
        }
        out
    }

    /// Replays the schedule against a fresh instance of `proto`, returning
    /// the resulting system (check `violation()` / `execution()` on it).
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if a step is not applicable (e.g. `send`
    /// while the transmitter is busy, or `deliver h3` with no delayed copy
    /// of `h3`).
    pub fn run(&self, proto: &dyn DataLink) -> Result<System, ScheduleError> {
        Schedule::run_steps(&self.steps, proto)
    }

    /// [`run`](Schedule::run) over a bare step slice, without constructing
    /// a `Schedule` first. The shrinker probes hundreds of candidate
    /// deletions per minimisation; replaying slices directly keeps those
    /// probes from cloning the step vector each time.
    pub fn run_steps(
        steps: &[ScheduleStep],
        proto: &dyn DataLink,
    ) -> Result<System, ScheduleError> {
        Schedule::run_steps_from(steps, System::new(proto))
    }

    /// [`run_steps`](Schedule::run_steps) from a caller-prepared system
    /// instead of a fresh boot — the corrupted-start explorer replays its
    /// counterexamples from the same seeded root that produced them.
    pub fn run_steps_from(
        steps: &[ScheduleStep],
        mut sys: System,
    ) -> Result<System, ScheduleError> {
        for (i, &step) in steps.iter().enumerate() {
            let fail = |message: String| ScheduleError { at: i + 1, message };
            match step {
                ScheduleStep::Send => {
                    if !sys.ready() {
                        return Err(fail("send while transmitter busy".into()));
                    }
                    sys.send_msg();
                    sys.step_park_all();
                }
                ScheduleStep::Park => {
                    sys.step_park_all();
                }
                ScheduleStep::DeliverAll => {
                    sys.step_deliver_all();
                }
                ScheduleStep::Deliver(h) => {
                    sys.fwd
                        .release_oldest_of_header(h)
                        .ok_or_else(|| fail(format!("no delayed copy of {h}")))?;
                    sys.drain_released();
                    sys.step_park_all();
                }
                ScheduleStep::Drop(h) => {
                    let packet = Packet::header_only(h);
                    sys.fwd
                        .drop_oldest_of_packet(packet)
                        .ok_or_else(|| fail(format!("no delayed copy of {h}")))?;
                    sys.drain_released();
                }
                ScheduleStep::Quiesce => {
                    if !sys.run_to_quiescence(10_000) {
                        return Err(fail("quiesce did not converge".into()));
                    }
                }
                // The chaos fault verbs are lenient by contract: a fault
                // that finds nothing to bite is a no-op, so generated repro
                // schedules replay against any protocol.
                ScheduleStep::Dup(h) => {
                    let _ = sys.duplicate_oldest(h);
                }
                ScheduleStep::Corrupt(h) => {
                    let _ = sys.corrupt_oldest(h);
                }
                ScheduleStep::Partition => sys.set_partitioned(true),
                ScheduleStep::Heal => sys.set_partitioned(false),
                ScheduleStep::CrashTx => sys.crash_tx(),
                ScheduleStep::CrashRx => sys.crash_rx(),
            }
        }
        Ok(sys)
    }
}

impl FromIterator<ScheduleStep> for Schedule {
    fn from_iter<I: IntoIterator<Item = ScheduleStep>>(iter: I) -> Self {
        Schedule {
            steps: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonfifo_protocols::{AlternatingBit, SequenceNumber};

    /// The canonical minimal alternating-bit attack, as a script — the
    /// same six actions the exhaustive explorer finds.
    const ABP_ATTACK: &str = "\
send
park        // tick: the retransmission banks a second copy of bit 0
deliver h0
send        // message 1 (bit 1)
deliver h1
deliver h0  // replay the stale copy: phantom delivery
";

    #[test]
    fn parse_round_trip() {
        let s = Schedule::parse(ABP_ATTACK).unwrap();
        assert_eq!(s.steps().len(), 6);
        let back = Schedule::parse(&s.to_text()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn minimal_abp_attack_runs() {
        let s = Schedule::parse(ABP_ATTACK).unwrap();
        let sys = s.run(&AlternatingBit::new()).unwrap();
        assert!(sys.violation().is_some(), "phantom delivery expected");
        let c = sys.counts();
        assert_eq!(c.rm, c.sm + 1);
    }

    #[test]
    fn same_schedule_is_harmless_against_seqnum() {
        // The identical adversary script cannot hurt the naive protocol:
        // it fails to even apply (message 1 travels as h1, there is no
        // delayed h0 copy to confuse anyone with — replaying it is a no-op
        // for the receiver).
        let s = Schedule::parse(ABP_ATTACK).unwrap();
        let sys = s.run(&SequenceNumber::new()).unwrap();
        assert!(sys.violation().is_none());
        assert_eq!(sys.counts().rm, sys.counts().sm);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Schedule::parse("send\nwarp h0\n").unwrap_err();
        assert_eq!(err.at, 2);
        assert!(err.to_string().contains("warp"));
        assert!(Schedule::parse("deliver\n").is_err());
        assert!(Schedule::parse("deliver hx\n").is_err());
        assert!(Schedule::parse("park extra\n").is_err());
    }

    #[test]
    fn run_errors_are_reported_not_panicked() {
        // deliver with an empty pool
        let s = Schedule::parse("deliver h0\n").unwrap();
        let err = s.run(&AlternatingBit::new()).unwrap_err();
        assert_eq!(err.at, 1);
        // send while busy (alternating bit is stop-and-wait)
        let s = Schedule::parse("send\nsend\n").unwrap();
        let err = s.run(&AlternatingBit::new()).unwrap_err();
        assert_eq!(err.at, 2);
    }

    #[test]
    fn quiesce_and_drop() {
        let s = Schedule::parse("send\npark\ndrop h0\nquiesce\n").unwrap();
        let sys = s.run(&AlternatingBit::new()).unwrap();
        assert!(sys.violation().is_none());
        assert_eq!(sys.counts().rm, 1);
    }

    #[test]
    fn comments_and_blanks() {
        let s = Schedule::parse("\n// nothing\n  send // trailing\n").unwrap();
        assert_eq!(s.steps(), &[ScheduleStep::Send]);
    }

    #[test]
    fn chaos_verbs_parse_and_round_trip() {
        let text = "dup h0\ncorrupt h3\npartition\nheal\ncrash tx\ncrash rx\n";
        let s = Schedule::parse(text).unwrap();
        assert_eq!(s.to_text(), text);
        assert!(Schedule::parse("crash\n").is_err());
        assert!(Schedule::parse("crash both\n").is_err());
        assert!(Schedule::parse("dup\n").is_err());
    }

    #[test]
    fn dup_declares_its_twin_to_the_monitor() {
        // Park a copy of h0, duplicate it, deliver both: the replay of the
        // twin is a declared send, so PL1 holds; the phantom *message*
        // delivery against the alternating bit is still caught.
        let s = Schedule::parse("send\ndup h0\ndeliver h0\nquiesce\n").unwrap();
        let sys = s.run(&AlternatingBit::new()).unwrap();
        assert!(sys.violation().is_none());
        assert_eq!(sys.counts().rm, 1);
    }

    #[test]
    fn corrupt_is_a_monitored_rewrite() {
        // Corrupting the only copy of h0: the original is a monitored drop
        // and the rewrite a fresh declared send, so PL1 stays sound. The
        // alternating bit reads its bit as `header % 2` — the high-bit
        // corruption is invisible to it, so it happily delivers from the
        // mangled copy. Exactly one extra distinct forward value exists:
        // the corrupted twin.
        let s = Schedule::parse("send\ncorrupt h0\ndeliver-all\nquiesce\n").unwrap();
        let sys = s.run(&AlternatingBit::new()).unwrap();
        assert!(sys.violation().is_none());
        assert_eq!(sys.counts().rm, 1);
        assert_eq!(sys.distinct_forward_packets(), 2);
    }

    #[test]
    fn chaos_verbs_are_lenient_no_ops() {
        // Nothing is in transit: every fault verb silently no-ops.
        let s = Schedule::parse("dup h5\ncorrupt h5\npartition\nheal\nsend\nquiesce\n").unwrap();
        let sys = s.run(&SequenceNumber::new()).unwrap();
        assert!(sys.violation().is_none());
        assert_eq!(sys.counts().rm, 1);
    }

    #[test]
    fn partition_loses_fresh_sends_until_heal() {
        // Under a partition nothing converges; after heal it does.
        let s = Schedule::parse("partition\nsend\npark\npark\nheal\nquiesce\n").unwrap();
        let sys = s.run(&SequenceNumber::new()).unwrap();
        assert!(sys.violation().is_none());
        assert_eq!(sys.counts().rm, 1, "retransmissions after heal get through");

        let stalled = Schedule::parse("partition\nsend\nquiesce\n").unwrap();
        let err = stalled.run(&SequenceNumber::new()).unwrap_err();
        assert!(err.message.contains("did not converge"), "{err}");
    }

    #[test]
    fn crash_rx_amnesia_enables_a_phantom_for_alternating_bit() {
        // Deliver message 0 (bit 0), then crash the receiver: it forgets it
        // already consumed bit 0, so a parked stale copy replays as a
        // phantom delivery. This is the crash-recovery analogue of the
        // paper's non-FIFO replay attack.
        let s = Schedule::parse("send\npark\ndeliver h0\ncrash rx\ndeliver h0\n").unwrap();
        let sys = s.run(&AlternatingBit::new()).unwrap();
        assert!(
            sys.violation().is_some(),
            "an amnesiac receiver re-delivers the stale bit"
        );
    }

    #[test]
    fn crash_tx_amnesia_loses_the_in_flight_message() {
        // The transmitter forgets its pending message: quiesce cannot
        // converge because nothing retransmits.
        let s = Schedule::parse("send\ncrash tx\nquiesce\n").unwrap();
        let err = s.run(&SequenceNumber::new()).unwrap_err();
        assert!(err.message.contains("did not converge"), "{err}");
    }
}
