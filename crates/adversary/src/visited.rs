//! Tiered visited-state sets — the dedup store behind both explorers.
//!
//! The exploration engines deduplicate on 64-bit state keys (see
//! [`crate::codec`]). This module replaces the hard-wired in-RAM shard
//! array with a [`VisitedSet`] trait and three interchangeable tiers:
//!
//! - [`RamVisited`] — the existing exact tier: 64 FNV shards in RAM.
//!   Fastest, bounded by memory.
//! - [`TieredVisited`] — an exact tier that **spills to disk** when a byte
//!   budget is exceeded: a RAM delta absorbs inserts and, when it outgrows
//!   the budget, is written as one new sorted on-disk run in O(delta) I/O.
//!   The set holds up to `compact_runs` such [`DiskRun`]s (each with its
//!   own in-RAM fence pointers); once the threshold is reached, the runs
//!   are merge-compacted into one by a bounded-memory k-way streaming
//!   merge on a background thread — LSM-style, never by reading a whole
//!   run back into RAM. Reports stay byte-identical to [`RamVisited`] —
//!   membership answers are exact — while resident memory stays under the
//!   budget.
//! - [`ProbabilisticVisited`] — a Bloom-filter tier with a fixed byte
//!   footprint and a **bounded false-dedup rate**: a filter hit for a
//!   never-seen state wrongly skips it, so a certificate produced on this
//!   tier holds only modulo the reported bound
//!   ([`VisitedSet::false_dedup_bound`], the standard
//!   `(1 − e^(−kn/m))^k` estimate). The filter is seeded with fixed hash
//!   functions and no randomness, so runs are deterministic and the bound
//!   is reproducible.
//!
//! **Determinism contract.** Both engines call [`VisitedSet::insert`] /
//! [`VisitedSet::insert_new`] in a deterministic order (sequential BFS
//! order, or the parallel engine's shard-major per-level merge) and only
//! ever *read* the set concurrently while it is frozen during a level
//! ([`VisitedSet::contains`], [`VisitedSet::contains_resident`] and
//! [`VisitedSet::probe_spilled_sorted`] take `&self`; the trait requires
//! `Sync`). Exact tiers therefore produce identical admit/reject decisions
//! — and hence byte-identical reports — at any thread count and for any
//! tier choice. Every quantity the tiers report (spill count, run count,
//! disk bytes, resident/peak estimates, compaction I/O) is computed from
//! deterministic schedule-time accounting, never from the wall-clock state
//! of the background compactor, so telemetry and CLI summaries are also
//! byte-identical across thread counts.
//!
//! Tier selection is data ([`VisitedSpec`]), parsed from the CLI's
//! `--visited <ram|tiered|probabilistic>` / `--memory-budget <bytes>` /
//! `--compact-runs <n>` flags and owned by the
//! [`Explorer`](crate::Explorer) facade.

use crate::codec::{block_contains_key, key_at};
use nonfifo_ioa::fingerprint::{mix64, Fnv64};
use std::collections::HashSet;
use std::fs::File;
use std::hash::BuildHasherDefault;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Visited-state set on the fixed-key FNV-64 hasher: state keys are already
/// well-mixed 64-bit fingerprints, so the cheap hash is safe and saves the
/// SipHash pass `std`'s default would pay per probe.
pub(crate) type FnvSet = HashSet<u64, BuildHasherDefault<Fnv64>>;

/// Visited-set shards in the RAM tiers. Sharding keeps the per-level merge
/// cache-friendly and the occupancy telemetry meaningful; lookups during a
/// level are lock-free because the set is frozen.
pub(crate) const SHARDS: usize = 64;

/// Estimated resident bytes per live key in a RAM shard: the 8-byte key
/// plus hash-table control and load-factor overhead. An estimate, not an
/// allocator measurement — budgets and the `explore.visited_bytes` gauge
/// are denominated in it, consistently across tiers.
const RAM_ENTRY_BYTES: usize = 12;

/// Keys per on-disk block: 512 × 8 B = one 4 KiB page per positioned read,
/// with one in-RAM fence pointer (the block's first key) each.
const BLOCK_KEYS: usize = 512;

/// The shard a key lands in — derived from the *mixed* digest, not the raw
/// key. State keys are FNV chains, which are nearly linear over inputs
/// sharing a prefix (see [`mix64`]); masking the raw low bits inherits that
/// structure, so the index goes through the SplitMix64 finalizer first and
/// masks from full-avalanche bits.
pub(crate) fn shard_of(key: u64) -> usize {
    (mix64(key) & (SHARDS as u64 - 1)) as usize
}

/// A deduplication store for 64-bit state keys.
///
/// Implementations must be deterministic: the same insert sequence yields
/// the same admit/reject answers, whatever the wall clock, thread count, or
/// filesystem says. The read-only probes (`contains`, `contains_resident`,
/// `probe_spilled_sorted`) are safe to call from many threads while no
/// insert is in flight (the engines freeze the set during a level);
/// `insert` / `insert_new` require exclusive access and are the only
/// mutators.
pub trait VisitedSet: Send + Sync + std::fmt::Debug {
    /// True if `key` has been admitted (exact tiers) or cannot be ruled out
    /// (probabilistic tier).
    fn contains(&self, key: u64) -> bool;

    /// Membership against the *resident* structures only — for
    /// [`TieredVisited`] the RAM delta, skipping the spilled runs. The
    /// parallel engine probes this in the expansion hot loop and settles
    /// spilled membership once per level through
    /// [`probe_spilled_sorted`](VisitedSet::probe_spilled_sorted), turning
    /// per-key positioned reads into batched sequential ones. Tiers without
    /// spilled state answer exactly like [`contains`](VisitedSet::contains).
    fn contains_resident(&self, key: u64) -> bool {
        self.contains(key)
    }

    /// Batched membership probe against the spilled (non-resident) state:
    /// `keys` is sorted ascending and deduplicated; `hits[i]` is set to
    /// true when `keys[i]` is present in a spilled run. Entries already
    /// true are skipped. Ascending order lets an implementation answer a
    /// whole block of keys with one sequential read. Tiers without spilled
    /// state leave `hits` untouched (the default).
    fn probe_spilled_sorted(&self, keys: &[u64], hits: &mut [bool]) {
        let _ = (keys, hits);
    }

    /// Records `key`; true if it was new (the state should be expanded),
    /// false if it deduplicates against an earlier insert.
    fn insert(&mut self, key: u64) -> bool;

    /// Records `key` that the caller has already proven absent (via
    /// [`contains_resident`](VisitedSet::contains_resident) plus
    /// [`probe_spilled_sorted`](VisitedSet::probe_spilled_sorted)). Exact
    /// tiers may skip the membership probe [`insert`](VisitedSet::insert)
    /// pays; the probabilistic tier keeps full insert semantics (its filter
    /// probe is the dedup decision itself).
    fn insert_new(&mut self, key: u64) -> bool {
        self.insert(key)
    }

    /// Keys admitted so far.
    fn len(&self) -> usize;

    /// True when nothing has been admitted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears logical content while retaining allocations — arenas call
    /// this between runs to keep the steady state off the allocator.
    fn clear(&mut self);

    /// Estimated resident bytes right now (RAM structures only; spilled
    /// runs are accounted by [`VisitedSet::disk_bytes`]).
    fn memory_bytes(&self) -> usize;

    /// High-water mark of [`VisitedSet::memory_bytes`] over the set's
    /// lifetime — what the `explore.visited_bytes` gauge reports.
    /// Disk-spilling tiers fold their transient spill and compaction
    /// buffers into this, so the mark bounds everything the tier ever holds
    /// resident, not just the steady state.
    fn peak_memory_bytes(&self) -> usize {
        self.memory_bytes()
    }

    /// Appends the resident shard occupancies (for the
    /// `explore.shard_occupancy` telemetry histogram). Tiers without a
    /// resident shard structure append nothing.
    fn shard_sizes(&self, out: &mut Vec<u64>);

    /// Times the RAM delta was written out as a new on-disk run (0 for
    /// pure-RAM tiers).
    fn spills(&self) -> u64 {
        0
    }

    /// Bytes currently resident in the on-disk runs (0 for pure-RAM tiers).
    fn disk_bytes(&self) -> u64 {
        0
    }

    /// Sorted on-disk runs currently live (0 for pure-RAM tiers). Counted
    /// logically — a compaction is accounted at the moment it is
    /// scheduled, not when the background thread happens to finish — so the
    /// number is deterministic.
    fn disk_runs(&self) -> u64 {
        0
    }

    /// Total spill I/O in bytes over the set's lifetime: run writes plus
    /// compaction reads and rewrites (0 for pure-RAM tiers). Accounted at
    /// schedule time, so the number is deterministic.
    fn compaction_bytes(&self) -> u64 {
        0
    }

    /// Paths of every spill file currently backing the set (empty for
    /// pure-RAM tiers). Exposed so crash-safety tests can pin that
    /// dropping the owner deletes every one of them.
    fn spill_paths(&self) -> Vec<PathBuf> {
        Vec::new()
    }

    /// For probabilistic tiers: an upper estimate of the probability that
    /// the *next* membership probe wrongly deduplicates a never-seen state.
    /// `None` for exact tiers — their certificates are unconditional.
    fn false_dedup_bound(&self) -> Option<f64> {
        None
    }
}

/// The exact in-RAM tier: 64 FNV-hashed shards, exactly the dedup store
/// the parallel engine always used (with the shard index now derived from
/// the mixed digest).
#[derive(Debug)]
pub struct RamVisited {
    shards: Vec<FnvSet>,
    len: usize,
}

impl RamVisited {
    /// An empty set; shard tables grow on demand and are retained across
    /// [`VisitedSet::clear`].
    pub fn new() -> Self {
        RamVisited {
            shards: (0..SHARDS).map(|_| FnvSet::default()).collect(),
            len: 0,
        }
    }
}

impl Default for RamVisited {
    fn default() -> Self {
        RamVisited::new()
    }
}

impl VisitedSet for RamVisited {
    fn contains(&self, key: u64) -> bool {
        self.shards[shard_of(key)].contains(&key)
    }

    fn insert(&mut self, key: u64) -> bool {
        let admitted = self.shards[shard_of(key)].insert(key);
        if admitted {
            self.len += 1;
        }
        admitted
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.len = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.len * RAM_ENTRY_BYTES
    }

    fn shard_sizes(&self, out: &mut Vec<u64>) {
        out.extend(self.shards.iter().map(|s| s.len() as u64));
    }
}

/// Process-unique sequence for spill-file names; combined with the PID so
/// concurrent explorations (and concurrent test processes) never collide.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_path() -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nonfifo-visited-{}-{}.run",
        std::process::id(),
        seq
    ))
}

/// One sorted on-disk run of unique little-endian `u64` keys, probed by
/// binary search over in-RAM fence pointers (first key per 4 KiB block)
/// plus a single positioned read. The file is deleted on drop.
struct DiskRun {
    file: File,
    path: PathBuf,
    keys: u64,
    fences: Vec<u64>,
    /// Serialises seek+read probes on platforms without positioned reads.
    #[cfg(not(unix))]
    probe: std::sync::Mutex<()>,
}

impl std::fmt::Debug for DiskRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskRun")
            .field("path", &self.path)
            .field("keys", &self.keys)
            .field("blocks", &self.fences.len())
            .finish()
    }
}

impl Drop for DiskRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl DiskRun {
    /// Writes `sorted` (strictly increasing, unique) to a fresh spill file.
    fn write(sorted: &[u64]) -> std::io::Result<DiskRun> {
        let mut writer = RunWriter::new()?;
        for &key in sorted {
            writer.push(key)?;
        }
        writer.finish()
    }

    fn read_block_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            // `Read`/`Seek` are implemented for `&File`, so a shared probe
            // only needs the mutex to keep seek+read atomic.
            let _guard = self.probe.lock().expect("disk-run probe lock");
            let mut file = &self.file;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }

    /// The block index `key` can live in, or `None` when it is below the
    /// first fence (or the run is empty).
    fn candidate_block(&self, key: u64) -> Option<usize> {
        if self.keys == 0 || self.fences.first().is_some_and(|&f| key < f) {
            return None;
        }
        Some(self.fences.partition_point(|&f| f <= key) - 1)
    }

    /// Keys resident in block `block` (the last block may be partial).
    fn block_len(&self, block: usize) -> usize {
        (self.keys as usize - block * BLOCK_KEYS).min(BLOCK_KEYS)
    }

    /// Exact membership probe: fence search picks the one candidate block,
    /// a positioned read fetches it, binary search settles it.
    fn contains(&self, key: u64) -> bool {
        let Some(block) = self.candidate_block(key) else {
            return false;
        };
        let start = block * BLOCK_KEYS;
        let in_block = self.block_len(block);
        let mut buf = [0u8; BLOCK_KEYS * 8];
        let bytes = &mut buf[..in_block * 8];
        if self.read_block_at((start * 8) as u64, bytes).is_err() {
            // An unreadable spill file cannot silently fabricate dedup
            // hits; treating the probe as a miss keeps the search sound
            // (worst case it re-expands a state it already covered —
            // impossible for exact tiers unless the file vanished mid-run).
            return false;
        }
        block_contains_key(bytes, key)
    }

    /// Batched probe: `keys` is sorted ascending; `hits[i]` is set when
    /// `keys[i]` is present (entries already true are skipped — the caller
    /// found them in an earlier run). Because the keys are sorted, each
    /// block of the run is read at most once per batch, with one
    /// sequential positioned read instead of one per key.
    fn probe_sorted(&self, keys: &[u64], hits: &mut [bool]) {
        if self.keys == 0 {
            return;
        }
        let mut buf = [0u8; BLOCK_KEYS * 8];
        let mut loaded: Option<(usize, usize)> = None;
        for (i, &key) in keys.iter().enumerate() {
            if hits[i] {
                continue;
            }
            let Some(block) = self.candidate_block(key) else {
                continue;
            };
            let in_block = match loaded {
                Some((b, n)) if b == block => n,
                _ => {
                    let start = block * BLOCK_KEYS;
                    let n = self.block_len(block);
                    if self
                        .read_block_at((start * 8) as u64, &mut buf[..n * 8])
                        .is_err()
                    {
                        // Same soundness stance as `contains`: an
                        // unreadable block is a miss, never a hit.
                        continue;
                    }
                    loaded = Some((block, n));
                    n
                }
            };
            if block_contains_key(&buf[..in_block * 8], key) {
                hits[i] = true;
            }
        }
    }
}

/// Streaming writer for a [`DiskRun`]: keys are pushed in ascending order
/// and buffered through a [`BufWriter`], so building a run never needs the
/// whole key set in RAM — the spill path hands it a sorted slice, the
/// compactor a k-way merge stream.
struct RunWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    fences: Vec<u64>,
    keys: u64,
}

impl RunWriter {
    fn new() -> std::io::Result<RunWriter> {
        let path = spill_path();
        // `File::create` would hand back a write-only descriptor; the run
        // is probed (read) for the rest of its life, so open read+write.
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(RunWriter {
            writer: BufWriter::new(file),
            path,
            fences: Vec::new(),
            keys: 0,
        })
    }

    fn push(&mut self, key: u64) -> std::io::Result<()> {
        if (self.keys as usize).is_multiple_of(BLOCK_KEYS) {
            self.fences.push(key);
        }
        self.keys += 1;
        self.writer.write_all(&key.to_le_bytes())
    }

    fn finish(mut self) -> std::io::Result<DiskRun> {
        self.writer.flush()?;
        let file = self
            .writer
            .into_inner()
            .map_err(std::io::IntoInnerError::into_error)?;
        Ok(DiskRun {
            file,
            path: self.path,
            keys: self.keys,
            fences: self.fences,
            #[cfg(not(unix))]
            probe: std::sync::Mutex::new(()),
        })
    }
}

/// Bounded-memory cursor over one source run of a streaming compaction:
/// reads the run block by block through positioned reads, holding exactly
/// one 4 KiB block resident.
struct RunCursor {
    run: Arc<DiskRun>,
    buf: Box<[u8; BLOCK_KEYS * 8]>,
    /// Next key index of the run to load into the buffer.
    next: u64,
    /// Keys resident in the buffer.
    in_buf: usize,
    /// Keys of the buffer already consumed.
    pos: usize,
}

impl RunCursor {
    fn new(run: Arc<DiskRun>) -> RunCursor {
        RunCursor {
            run,
            buf: Box::new([0u8; BLOCK_KEYS * 8]),
            next: 0,
            in_buf: 0,
            pos: 0,
        }
    }

    fn refill(&mut self) -> std::io::Result<()> {
        self.pos = 0;
        self.in_buf = 0;
        if self.next >= self.run.keys {
            return Ok(());
        }
        let n = ((self.run.keys - self.next) as usize).min(BLOCK_KEYS);
        self.run
            .read_block_at(self.next * 8, &mut self.buf[..n * 8])?;
        self.in_buf = n;
        self.next += n as u64;
        Ok(())
    }

    fn peek(&self) -> Option<u64> {
        (self.pos < self.in_buf).then(|| key_at(&self.buf[..], self.pos))
    }

    fn advance(&mut self) -> std::io::Result<()> {
        self.pos += 1;
        if self.pos >= self.in_buf {
            self.refill()?;
        }
        Ok(())
    }
}

/// Merge-compacts `sources` (sorted runs over pairwise-disjoint key sets)
/// into one fresh sorted run with a bounded-memory k-way streaming merge:
/// one block buffer per source plus the output's write buffer, never a
/// whole run in RAM. Runs on the compaction thread.
fn compact_runs_streaming(sources: &[Arc<DiskRun>]) -> std::io::Result<DiskRun> {
    let mut writer = RunWriter::new()?;
    let mut cursors: Vec<RunCursor> = sources
        .iter()
        .map(|r| RunCursor::new(Arc::clone(r)))
        .collect();
    for cursor in &mut cursors {
        cursor.refill()?;
    }
    loop {
        // k is the compaction threshold (single digits), so a linear scan
        // over the heads beats maintaining a heap.
        let mut best: Option<(u64, usize)> = None;
        for (i, cursor) in cursors.iter().enumerate() {
            if let Some(key) = cursor.peek() {
                if best.is_none_or(|(b, _)| key < b) {
                    best = Some((key, i));
                }
            }
        }
        let Some((key, i)) = best else {
            return writer.finish();
        };
        writer.push(key)?;
        cursors[i].advance()?;
    }
}

/// An in-flight background compaction: the first `covers` entries of the
/// owning set's run list are being merged into one fresh run.
#[derive(Debug)]
struct CompactionJob {
    covers: usize,
    handle: std::thread::JoinHandle<std::io::Result<DiskRun>>,
}

/// Default run-count threshold that triggers a compaction when
/// `--compact-runs` is not given: spills accumulate as independent sorted
/// runs until this many are live, then the background compactor folds them
/// into one.
pub const DEFAULT_COMPACT_RUNS: usize = 8;

/// The exact disk-spilling tier: a [`RamVisited`] delta under a byte
/// budget, written out as a new sorted [`DiskRun`] (O(delta) I/O) whenever
/// the resident estimate crosses the budget. Up to `compact_runs` runs
/// accumulate; then a bounded-memory streaming merge on a background
/// thread compacts them into one. Membership is exact — delta OR any run
/// (the key sets are pairwise disjoint by construction) — so reports are
/// byte-identical to the in-RAM tier at any budget and any threshold.
#[derive(Debug)]
pub struct TieredVisited {
    delta: RamVisited,
    runs: Vec<Arc<DiskRun>>,
    budget: usize,
    compact_runs: usize,
    spills: u64,
    peak: usize,
    /// Spill scratch, retained across compactions and runs.
    merge: Vec<u64>,
    pending: Option<CompactionJob>,
    /// Total spill I/O accounted at schedule time (see
    /// [`VisitedSet::compaction_bytes`]).
    compaction_bytes: u64,
    /// Resident bytes of the in-flight compactor's block buffers, charged
    /// from one schedule point to the next (deterministic, unlike the
    /// thread's actual lifetime).
    compactor_bytes: usize,
}

impl TieredVisited {
    /// A tiered set that spills once its resident estimate exceeds
    /// `memory_budget` bytes, compacting at [`DEFAULT_COMPACT_RUNS`] runs.
    /// Any budget is legal — a tiny one just spills often; correctness
    /// never depends on it.
    pub fn new(memory_budget: usize) -> Self {
        TieredVisited::with_compact_runs(memory_budget, DEFAULT_COMPACT_RUNS)
    }

    /// A tiered set compacting once `compact_runs` on-disk runs are live
    /// (clamped up to 1; a threshold of 1 compacts as soon as a second run
    /// exists, reproducing the old single-run behaviour at streaming cost).
    pub fn with_compact_runs(memory_budget: usize, compact_runs: usize) -> Self {
        TieredVisited {
            delta: RamVisited::new(),
            runs: Vec::new(),
            budget: memory_budget,
            compact_runs: compact_runs.max(1),
            spills: 0,
            peak: 0,
            merge: Vec::new(),
            pending: None,
            compaction_bytes: 0,
            compactor_bytes: 0,
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The configured compaction threshold.
    pub fn compact_runs(&self) -> usize {
        self.compact_runs
    }

    /// Deterministic estimate of the fence-pointer bytes: one 8-byte fence
    /// per 4 KiB block *of the total spilled key count*, as if the
    /// compactor had already folded every run into one. The physical fence
    /// count depends on when the background thread finishes (partial last
    /// blocks per run), so the estimate — like [`RAM_ENTRY_BYTES`] — is
    /// the consistent currency budgets are denominated in.
    fn fence_bytes(&self) -> usize {
        (self.disk_keys() as usize).div_ceil(BLOCK_KEYS) * 8
    }

    fn disk_keys(&self) -> u64 {
        self.runs.iter().map(|r| r.keys).sum()
    }

    /// Run count with an in-flight compaction accounted as already applied
    /// — the deterministic number [`VisitedSet::disk_runs`] reports.
    fn logical_runs(&self) -> usize {
        match &self.pending {
            Some(job) => self.runs.len() + 1 - job.covers,
            None => self.runs.len(),
        }
    }

    /// Folds a finished background compaction into the run list. With
    /// `block`, waits for an unfinished one (schedule points and teardown
    /// do; insert-time adoption is opportunistic). Adoption only changes
    /// the physical run layout — every logical quantity (membership, key
    /// counts, accounting) is invariant under it, which is what keeps
    /// reports independent of compactor timing.
    fn adopt_compaction(&mut self, block: bool) {
        let finished = match &self.pending {
            Some(job) => block || job.handle.is_finished(),
            None => return,
        };
        if !finished {
            return;
        }
        let job = self.pending.take().expect("pending compaction checked");
        let compacted = job
            .handle
            .join()
            .expect("visited compaction thread panicked")
            .expect("compact the visited spill runs");
        self.runs
            .splice(0..job.covers, std::iter::once(Arc::new(compacted)));
    }

    /// Writes the delta out as one new sorted run in O(delta) I/O, then
    /// schedules a background compaction if the run count reached the
    /// threshold. The delta is drained shard by shard into the sort
    /// scratch, so the transient peak tracks one delta's worth of keys —
    /// never the full spilled history (the old scheme's `read_all_into`
    /// readback is gone).
    fn spill(&mut self) {
        self.merge.clear();
        let fences = self.fence_bytes();
        for i in 0..SHARDS {
            let shard = &mut self.delta.shards[i];
            let drained = shard.len();
            self.merge.extend(shard.iter().copied());
            shard.clear();
            self.delta.len -= drained;
            let transient =
                self.delta.memory_bytes() + self.merge.len() * 8 + fences + self.compactor_bytes;
            self.peak = self.peak.max(transient);
        }
        self.merge.sort_unstable();
        let run = DiskRun::write(&self.merge).expect("write the visited spill run");
        self.compaction_bytes += run.keys * 8;
        self.runs.push(Arc::new(run));
        self.spills += 1;
        if self.logical_runs() >= self.compact_runs.max(2) {
            self.schedule_compaction();
        }
    }

    /// Starts a background streaming merge of every live run. At most one
    /// compaction is in flight: an unfinished predecessor is joined first,
    /// so schedule points are deterministic synchronisation points and the
    /// accounting below never races the thread.
    fn schedule_compaction(&mut self) {
        self.adopt_compaction(true);
        if self.runs.len() < 2 {
            return;
        }
        let sources = self.runs.clone();
        let covers = sources.len();
        // The merge reads and rewrites every spilled byte exactly once.
        let bytes = self.disk_keys() * 8;
        self.compaction_bytes += 2 * bytes;
        // One block buffer per source, plus the output's write buffer.
        self.compactor_bytes = (covers + 1) * BLOCK_KEYS * 8;
        self.peak = self.peak.max(self.memory_bytes() + self.compactor_bytes);
        let handle = std::thread::Builder::new()
            .name("nonfifo-visited-compact".into())
            .spawn(move || compact_runs_streaming(&sources))
            .expect("spawn the visited compaction thread");
        self.pending = Some(CompactionJob { covers, handle });
    }

    fn join_pending(&mut self) {
        if let Some(job) = self.pending.take() {
            // The compacted output (if any) is dropped here, deleting its
            // file; the sources are deleted when their last Arc goes.
            let _ = job.handle.join();
        }
    }
}

impl Drop for TieredVisited {
    fn drop(&mut self) {
        self.join_pending();
    }
}

impl VisitedSet for TieredVisited {
    fn contains(&self, key: u64) -> bool {
        self.delta.contains(key) || self.runs.iter().any(|r| r.contains(key))
    }

    fn contains_resident(&self, key: u64) -> bool {
        self.delta.contains(key)
    }

    fn probe_spilled_sorted(&self, keys: &[u64], hits: &mut [bool]) {
        for run in &self.runs {
            run.probe_sorted(keys, hits);
        }
    }

    fn insert(&mut self, key: u64) -> bool {
        if self.contains(key) {
            return false;
        }
        self.insert_new(key)
    }

    fn insert_new(&mut self, key: u64) -> bool {
        self.adopt_compaction(false);
        self.delta.insert(key);
        let resident = self.memory_bytes();
        self.peak = self.peak.max(resident);
        if resident > self.budget && !self.delta.is_empty() {
            self.spill();
        }
        true
    }

    fn len(&self) -> usize {
        self.delta.len() + self.disk_keys() as usize
    }

    fn clear(&mut self) {
        self.join_pending();
        self.delta.clear();
        self.runs.clear();
        self.spills = 0;
        self.peak = 0;
        self.compaction_bytes = 0;
        self.compactor_bytes = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.delta.memory_bytes() + self.fence_bytes()
    }

    fn peak_memory_bytes(&self) -> usize {
        self.peak.max(self.memory_bytes())
    }

    fn shard_sizes(&self, out: &mut Vec<u64>) {
        self.delta.shard_sizes(out);
    }

    fn spills(&self) -> u64 {
        self.spills
    }

    fn disk_bytes(&self) -> u64 {
        self.disk_keys() * 8
    }

    fn disk_runs(&self) -> u64 {
        self.logical_runs() as u64
    }

    fn compaction_bytes(&self) -> u64 {
        self.compaction_bytes
    }

    fn spill_paths(&self) -> Vec<PathBuf> {
        self.runs.iter().map(|r| r.path.clone()).collect()
    }
}

/// Bloom hash count. With the filter sized from the byte budget rather
/// than a known key count, a small fixed `k` keeps probes cheap and the
/// closed-form bound exact to evaluate.
const BLOOM_HASHES: u32 = 4;

/// Smallest filter the probabilistic tier will build, whatever the budget:
/// 1 KiB. Degenerate filters would saturate instantly and report a useless
/// (though still honest) bound near 1.
const BLOOM_MIN_BYTES: usize = 1024;

/// The probabilistic tier: a fixed-footprint Bloom filter. Exactness is
/// traded for memory — a saturated bit pattern can wrongly deduplicate a
/// never-seen state ("false dedup"), silently shrinking the explored set —
/// so certificates from this tier are annotated with
/// [`VisitedSet::false_dedup_bound`] rather than reported unconditionally.
/// Hashes are fixed (double hashing over [`mix64`] streams, no RNG), so
/// runs and bounds are deterministic.
#[derive(Debug)]
pub struct ProbabilisticVisited {
    bits: Vec<u64>,
    nbits: u64,
    admitted: usize,
}

impl ProbabilisticVisited {
    /// A filter of `memory_budget` bytes (clamped up to a 1 KiB floor).
    pub fn new(memory_budget: usize) -> Self {
        let words = memory_budget.max(BLOOM_MIN_BYTES) / 8;
        ProbabilisticVisited {
            bits: vec![0u64; words],
            nbits: (words * 64) as u64,
            admitted: 0,
        }
    }

    /// The `i`-th probe position for `key` (double hashing; `h2` is forced
    /// odd so the stride never degenerates).
    fn bit_of(&self, key: u64, i: u32) -> u64 {
        let h1 = mix64(key);
        let h2 = mix64(key ^ 0x9e37_79b9_7f4a_7c15) | 1;
        h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.nbits
    }

    fn probe(&self, key: u64) -> bool {
        (0..BLOOM_HASHES).all(|i| {
            let bit = self.bit_of(key, i);
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }
}

impl VisitedSet for ProbabilisticVisited {
    fn contains(&self, key: u64) -> bool {
        self.probe(key)
    }

    fn insert(&mut self, key: u64) -> bool {
        if self.probe(key) {
            // Either a genuine duplicate or a false dedup — by design the
            // filter cannot tell, which is exactly what the reported bound
            // quantifies.
            return false;
        }
        for i in 0..BLOOM_HASHES {
            let bit = self.bit_of(key, i);
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.admitted += 1;
        true
    }

    fn len(&self) -> usize {
        self.admitted
    }

    fn clear(&mut self) {
        self.bits.fill(0);
        self.admitted = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    fn shard_sizes(&self, _out: &mut Vec<u64>) {}

    fn false_dedup_bound(&self) -> Option<f64> {
        // The standard Bloom estimate (1 − e^(−kn/m))^k with n = keys
        // admitted so far, m = filter bits, k = probe count.
        let k = f64::from(BLOOM_HASHES);
        let n = self.admitted as f64;
        let m = self.nbits as f64;
        Some((1.0 - (-k * n / m).exp()).powf(k))
    }
}

/// Tier selection as data: which [`VisitedSet`] an exploration should
/// deduplicate through. Parsed from `--visited` / `--memory-budget` /
/// `--compact-runs` and owned by the [`Explorer`](crate::Explorer) facade.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VisitedSpec {
    /// Exact, all in RAM ([`RamVisited`]) — the default.
    #[default]
    Ram,
    /// Exact, spilling to disk past a resident-byte budget
    /// ([`TieredVisited`]).
    Tiered {
        /// Resident-byte budget before the delta spills to a new run.
        memory_budget: usize,
        /// Live-run threshold that triggers a background compaction.
        compact_runs: usize,
    },
    /// Bloom filter of a fixed byte footprint ([`ProbabilisticVisited`]);
    /// certificates hold modulo the reported false-dedup bound.
    Probabilistic {
        /// Filter size in bytes.
        memory_budget: usize,
    },
}

/// Default byte budget when `--visited tiered|probabilistic` is given
/// without `--memory-budget`: 1 GiB.
pub const DEFAULT_MEMORY_BUDGET: usize = 1 << 30;

impl VisitedSpec {
    /// The disk-spilling tier with the default compaction threshold — the
    /// spelling every call site that only cares about the budget uses.
    pub fn tiered(memory_budget: usize) -> Self {
        VisitedSpec::Tiered {
            memory_budget,
            compact_runs: DEFAULT_COMPACT_RUNS,
        }
    }

    /// Constructs the tier this spec names.
    pub fn build(&self) -> Box<dyn VisitedSet> {
        match *self {
            VisitedSpec::Ram => Box::new(RamVisited::new()),
            VisitedSpec::Tiered {
                memory_budget,
                compact_runs,
            } => Box::new(TieredVisited::with_compact_runs(
                memory_budget,
                compact_runs,
            )),
            VisitedSpec::Probabilistic { memory_budget } => {
                Box::new(ProbabilisticVisited::new(memory_budget))
            }
        }
    }

    /// True for tiers whose membership answers are exact — the modes whose
    /// reports are byte-identical to [`VisitedSpec::Ram`].
    pub fn is_exact(&self) -> bool {
        !matches!(self, VisitedSpec::Probabilistic { .. })
    }

    /// Applies a `--memory-budget` value to the spec (no-op for
    /// [`VisitedSpec::Ram`], which has no budget to bound).
    pub fn with_budget(self, memory_budget: usize) -> Self {
        match self {
            VisitedSpec::Ram => VisitedSpec::Ram,
            VisitedSpec::Tiered { compact_runs, .. } => VisitedSpec::Tiered {
                memory_budget,
                compact_runs,
            },
            VisitedSpec::Probabilistic { .. } => VisitedSpec::Probabilistic { memory_budget },
        }
    }

    /// Applies a `--compact-runs` value to the spec (no-op for tiers
    /// without on-disk runs).
    pub fn with_compact_runs(self, compact_runs: usize) -> Self {
        match self {
            VisitedSpec::Tiered { memory_budget, .. } => VisitedSpec::Tiered {
                memory_budget,
                compact_runs,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for VisitedSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VisitedSpec::Ram => write!(f, "ram"),
            VisitedSpec::Tiered {
                memory_budget,
                compact_runs,
            } => {
                write!(
                    f,
                    "tiered (budget {memory_budget} B, compact at {compact_runs} runs)"
                )
            }
            VisitedSpec::Probabilistic { memory_budget } => {
                write!(f, "probabilistic ({memory_budget} B filter)")
            }
        }
    }
}

impl std::str::FromStr for VisitedSpec {
    type Err = String;

    /// Parses `ram`, `tiered`, or `probabilistic`; budgets and thresholds
    /// ride separately on [`VisitedSpec::with_budget`] and
    /// [`VisitedSpec::with_compact_runs`].
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ram" => Ok(VisitedSpec::Ram),
            "tiered" => Ok(VisitedSpec::tiered(DEFAULT_MEMORY_BUDGET)),
            "probabilistic" => Ok(VisitedSpec::Probabilistic {
                memory_budget: DEFAULT_MEMORY_BUDGET,
            }),
            other => Err(format!(
                "unknown visited tier {other:?} (ram, tiered, probabilistic)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic mixed key stream with duplicates: every third key
    /// repeats an earlier one.
    fn key_stream(n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    mix64((i / 2) as u64)
                } else {
                    mix64(i as u64)
                }
            })
            .collect()
    }

    #[test]
    fn ram_and_tiered_agree_on_every_answer() {
        for compact_runs in [1, 2, 8] {
            let mut ram = RamVisited::new();
            // 1 KiB budget over ~10k keys: dozens of spill compactions.
            let mut tiered = TieredVisited::with_compact_runs(1024, compact_runs);
            for key in key_stream(10_000) {
                assert_eq!(ram.contains(key), tiered.contains(key), "pre-probe {key}");
                assert_eq!(ram.insert(key), tiered.insert(key), "insert {key}");
                assert!(tiered.contains(key), "post-probe {key}");
            }
            assert_eq!(ram.len(), tiered.len());
            assert!(tiered.spills() > 0, "the tiny budget must have spilled");
            assert!(tiered.disk_bytes() > 0);
            assert!(tiered.disk_runs() >= 1);
            assert!(
                tiered.disk_runs() <= compact_runs.max(2) as u64,
                "compaction must keep the live-run count at the threshold, \
                 got {} with compact_runs={compact_runs}",
                tiered.disk_runs()
            );
            assert!(
                tiered.memory_bytes() <= 1024 + SHARDS * RAM_ENTRY_BYTES,
                "resident estimate near the budget after compactions: {}",
                tiered.memory_bytes()
            );
            // Every admitted key answers true from the spilled runs.
            for key in key_stream(10_000) {
                assert!(tiered.contains(key));
            }
            assert!(!tiered.contains(mix64(0xdead_beef)));
        }
    }

    #[test]
    fn batched_sorted_probe_matches_per_key_probes() {
        let mut tiered = TieredVisited::with_compact_runs(512, 4);
        for key in key_stream(4_000) {
            tiered.insert(key);
        }
        assert!(tiered.disk_runs() >= 1);
        // Present, absent, and below-first-fence keys interleaved; sorted
        // unique as the batched API requires.
        let mut probes: Vec<u64> = key_stream(4_000);
        probes.extend((0..2_000u64).map(|i| mix64(i ^ 0xabcd_1234)));
        probes.push(0);
        probes.sort_unstable();
        probes.dedup();
        let mut hits = vec![false; probes.len()];
        tiered.probe_spilled_sorted(&probes, &mut hits);
        for (i, &key) in probes.iter().enumerate() {
            let expected = tiered.contains(key) && !tiered.contains_resident(key);
            assert_eq!(
                hits[i], expected,
                "batched probe diverges from the positioned probe for {key}"
            );
        }
    }

    #[test]
    fn accounting_is_independent_of_compactor_timing() {
        // Two identical insert sequences, one of which stalls between
        // inserts so the background compactor finishes at different
        // moments: every reported number must still match exactly.
        let run = |stall: bool| {
            let mut tiered = TieredVisited::with_compact_runs(768, 2);
            for (i, key) in key_stream(6_000).into_iter().enumerate() {
                tiered.insert(key);
                if stall && i % 1024 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            (
                tiered.len(),
                tiered.spills(),
                tiered.disk_runs(),
                tiered.disk_bytes(),
                tiered.compaction_bytes(),
                tiered.peak_memory_bytes(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn spill_transient_stays_within_twice_the_budget() {
        // The budget-violation regression this PR fixes: the old scheme
        // read the entire prior run back into RAM on every spill, so the
        // transient was unbounded by the budget. The streaming scheme's
        // peak — delta plus sort scratch plus fences plus the compactor's
        // block buffers, all folded into peak_memory_bytes — must stay
        // under 2× budget however many spills and compactions a run forces.
        for budget in [64 * 1024, 256 * 1024] {
            let mut tiered = TieredVisited::with_compact_runs(budget, 4);
            // ~12 B/key resident: enough keys for dozens of spills at the
            // smaller budget and several compaction cycles.
            let keys = 40 * budget / RAM_ENTRY_BYTES;
            for key in key_stream(keys) {
                tiered.insert(key);
            }
            assert!(
                tiered.spills() >= 4,
                "budget {budget}: must spill repeatedly"
            );
            assert!(
                tiered.peak_memory_bytes() < 2 * budget,
                "budget {budget}: transient peak {} breaches 2x the budget",
                tiered.peak_memory_bytes()
            );
        }
    }

    #[test]
    fn compaction_io_is_linear_not_quadratic() {
        // With the rewrite-all scheme, every spill rewrote the whole
        // history: total I/O grew quadratically in the spill count. The
        // multi-run scheme writes each spill once and compacts at the
        // threshold, so total I/O stays within a small multiple of the
        // data volume.
        let mut tiered = TieredVisited::with_compact_runs(1024, 8);
        for key in key_stream(30_000) {
            tiered.insert(key);
        }
        assert!(tiered.spills() > 50, "got {} spills", tiered.spills());
        let data = tiered.disk_bytes();
        let rewrite_all_floor = {
            // What the old scheme would have paid: each spill rewrites all
            // keys spilled so far — at s spills of d bytes each, d·s²/2 —
            // plus reads the prior run back in, roughly doubling it.
            let per_spill = data / tiered.spills();
            per_spill * tiered.spills() * tiered.spills()
        };
        assert!(
            tiered.compaction_bytes() * 5 <= rewrite_all_floor,
            "total spill I/O {} is not >=5x below the rewrite-all floor {}",
            tiered.compaction_bytes(),
            rewrite_all_floor
        );
    }

    #[test]
    fn tiered_clear_resets_to_an_empty_set() {
        let mut tiered = TieredVisited::new(256);
        for key in key_stream(2_000) {
            tiered.insert(key);
        }
        assert!(tiered.spills() > 0);
        tiered.clear();
        assert_eq!(tiered.len(), 0);
        assert_eq!(tiered.spills(), 0);
        assert_eq!(tiered.disk_bytes(), 0);
        assert_eq!(tiered.disk_runs(), 0);
        assert_eq!(tiered.compaction_bytes(), 0);
        assert!(!tiered.contains(mix64(1)));
        // Reusable after the reset, exactly like a fresh set.
        assert!(tiered.insert(42));
        assert!(!tiered.insert(42));
    }

    #[test]
    fn spill_files_are_deleted_on_drop() {
        let paths;
        {
            let mut tiered = TieredVisited::with_compact_runs(64, 8);
            for key in key_stream(500) {
                tiered.insert(key);
            }
            paths = tiered.spill_paths();
            assert!(paths.len() > 1, "multiple runs should be live");
            for path in &paths {
                assert!(path.exists());
            }
        }
        for path in &paths {
            assert!(
                !path.exists(),
                "spill file {path:?} must not outlive the set"
            );
        }
    }

    #[test]
    fn disk_run_block_boundaries_are_exact() {
        // Key counts straddling block boundaries: first/last key of each
        // block, plus absent neighbours of every present key.
        for n in [BLOCK_KEYS - 1, BLOCK_KEYS, BLOCK_KEYS + 1, 3 * BLOCK_KEYS] {
            let keys: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            let run = DiskRun::write(&keys).unwrap();
            for &k in &keys {
                assert!(run.contains(k), "{n} keys: present {k}");
                assert!(!run.contains(k + 1), "{n} keys: absent {}", k + 1);
            }
            assert!(!run.contains(0), "{n} keys: below the first fence");
            // The batched probe agrees with the positioned one across the
            // same boundaries.
            let mut probes: Vec<u64> = keys.iter().flat_map(|&k| [k, k + 1]).collect();
            probes.insert(0, 0);
            probes.dedup();
            let mut hits = vec![false; probes.len()];
            run.probe_sorted(&probes, &mut hits);
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(hits[i], run.contains(p), "{n} keys: probe {p}");
            }
        }
    }

    #[test]
    fn streaming_compaction_merges_disjoint_runs_exactly() {
        // Three runs of disjoint keys straddling block boundaries; the
        // streaming merge must produce exactly their sorted union.
        let a: Vec<u64> = (0..700u64).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..700u64).map(|i| i * 3 + 1).collect();
        let c: Vec<u64> = (0..100u64).map(|i| i * 3 + 2).collect();
        let runs = vec![
            Arc::new(DiskRun::write(&a).unwrap()),
            Arc::new(DiskRun::write(&b).unwrap()),
            Arc::new(DiskRun::write(&c).unwrap()),
        ];
        let merged = compact_runs_streaming(&runs).unwrap();
        assert_eq!(merged.keys as usize, a.len() + b.len() + c.len());
        for &k in a.iter().chain(&b).chain(&c) {
            assert!(merged.contains(k), "merged run lost {k}");
        }
        assert!(!merged.contains(700 * 3 + 5));
    }

    #[test]
    fn probabilistic_is_deterministic_and_reports_an_honest_bound() {
        let build = || {
            let mut bloom = ProbabilisticVisited::new(64 * 1024);
            let answers: Vec<bool> = key_stream(20_000)
                .iter()
                .map(|&k| bloom.insert(k))
                .collect();
            (bloom, answers)
        };
        let (a, answers_a) = build();
        let (b, answers_b) = build();
        assert_eq!(answers_a, answers_b, "no RNG anywhere: runs must replay");
        assert_eq!(a.len(), b.len());
        assert_eq!(a.false_dedup_bound(), b.false_dedup_bound());

        // Honesty: the distinct-key count is known, so the observed false
        // dedups are countable. The bound is a per-probe expectation; 2x
        // slack absorbs the variance of one fixed hash draw.
        let keys = key_stream(20_000);
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        let false_dedups = distinct.len() - a.len();
        let bound = a.false_dedup_bound().unwrap();
        assert!(bound > 0.0 && bound < 1.0);
        assert!(
            (false_dedups as f64) <= (bound * distinct.len() as f64).mul_add(2.0, 8.0),
            "{false_dedups} false dedups exceeds twice the reported bound \
             ({bound:.2e} over {} keys)",
            distinct.len()
        );
    }

    #[test]
    fn probabilistic_with_ample_budget_is_effectively_exact() {
        // 1 MiB of filter for 20k keys: the bound collapses and no false
        // dedup occurs, so the admitted count equals the distinct count.
        let mut bloom = ProbabilisticVisited::new(1 << 20);
        let keys = key_stream(20_000);
        for &k in &keys {
            bloom.insert(k);
        }
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(bloom.len(), distinct.len());
        assert!(bloom.false_dedup_bound().unwrap() < 1e-6);
    }

    #[test]
    fn shard_index_comes_from_the_mixed_digest() {
        // Raw FNV state keys share high-entropy low bits only after
        // mixing; the regression here is structural: consecutive FNV
        // chains must not all land in a handful of shards.
        let mut occupied = [false; SHARDS];
        for i in 0..4096u64 {
            // FNV-like near-linear keys: a fixed prefix times the prime
            // plus a small delta — the adversarial shape for raw masking.
            let key = 0xcbf2_9ce4_8422_2325u64
                .wrapping_mul(0x0000_0100_0000_01b3)
                .wrapping_add(i);
            occupied[shard_of(key)] = true;
        }
        assert!(
            occupied.iter().filter(|&&b| b).count() == SHARDS,
            "mixed shard index must reach every shard"
        );
    }

    #[test]
    fn spec_parses_builds_and_displays() {
        assert_eq!("ram".parse::<VisitedSpec>().unwrap(), VisitedSpec::Ram);
        assert!(matches!(
            "tiered".parse::<VisitedSpec>().unwrap(),
            VisitedSpec::Tiered {
                compact_runs: DEFAULT_COMPACT_RUNS,
                ..
            }
        ));
        assert!(matches!(
            "probabilistic".parse::<VisitedSpec>().unwrap(),
            VisitedSpec::Probabilistic { .. }
        ));
        assert!("mmap".parse::<VisitedSpec>().is_err());
        let spec = "tiered"
            .parse::<VisitedSpec>()
            .unwrap()
            .with_budget(4096)
            .with_compact_runs(3);
        assert_eq!(
            spec,
            VisitedSpec::Tiered {
                memory_budget: 4096,
                compact_runs: 3
            }
        );
        assert!(spec.is_exact());
        assert!(!VisitedSpec::Probabilistic {
            memory_budget: 4096
        }
        .is_exact());
        // `--compact-runs` has no run list to bound on the other tiers.
        assert_eq!(VisitedSpec::Ram.with_compact_runs(5), VisitedSpec::Ram,);
        let mut set = spec.build();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert_eq!(VisitedSpec::Ram.to_string(), "ram");
        assert_eq!(
            VisitedSpec::tiered(64).to_string(),
            format!("tiered (budget 64 B, compact at {DEFAULT_COMPACT_RUNS} runs)")
        );
    }
}
