//! Tiered visited-state sets — the dedup store behind both explorers.
//!
//! The exploration engines deduplicate on 64-bit state keys (see
//! [`crate::codec`]). This module replaces the hard-wired in-RAM shard
//! array with a [`VisitedSet`] trait and three interchangeable tiers:
//!
//! - [`RamVisited`] — the existing exact tier: 64 FNV shards in RAM.
//!   Fastest, bounded by memory.
//! - [`TieredVisited`] — an exact tier that **spills to disk** when a byte
//!   budget is exceeded: a RAM delta absorbs inserts, and when it outgrows
//!   the budget it is merge-compacted into a single sorted on-disk run of
//!   little-endian keys, probed by binary search over in-RAM fence
//!   pointers plus one positioned block read. Reports stay byte-identical
//!   to [`RamVisited`] — membership answers are exact — while resident
//!   memory stays under the budget.
//! - [`ProbabilisticVisited`] — a Bloom-filter tier with a fixed byte
//!   footprint and a **bounded false-dedup rate**: a filter hit for a
//!   never-seen state wrongly skips it, so a certificate produced on this
//!   tier holds only modulo the reported bound
//!   ([`VisitedSet::false_dedup_bound`], the standard
//!   `(1 − e^(−kn/m))^k` estimate). The filter is seeded with fixed hash
//!   functions and no randomness, so runs are deterministic and the bound
//!   is reproducible.
//!
//! **Determinism contract.** Both engines call [`VisitedSet::insert`] in a
//! deterministic order (sequential BFS order, or the parallel engine's
//! sorted per-level merge) and only ever *read* the set concurrently while
//! it is frozen during a level ([`VisitedSet::contains`] takes `&self`;
//! the trait requires `Sync`). Exact tiers therefore produce identical
//! admit/reject decisions — and hence byte-identical reports — at any
//! thread count and for any tier choice; the probabilistic tier is equally
//! deterministic but trades exactness for footprint.
//!
//! Tier selection is data ([`VisitedSpec`]), parsed from the CLI's
//! `--visited <ram|tiered|probabilistic>` / `--memory-budget <bytes>`
//! flags and owned by the [`Explorer`](crate::Explorer) facade.

use nonfifo_ioa::fingerprint::{mix64, Fnv64};
use std::collections::HashSet;
use std::fs::File;
use std::hash::BuildHasherDefault;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Visited-state set on the fixed-key FNV-64 hasher: state keys are already
/// well-mixed 64-bit fingerprints, so the cheap hash is safe and saves the
/// SipHash pass `std`'s default would pay per probe.
pub(crate) type FnvSet = HashSet<u64, BuildHasherDefault<Fnv64>>;

/// Visited-set shards in the RAM tiers. Sharding keeps the per-level merge
/// cache-friendly and the occupancy telemetry meaningful; lookups during a
/// level are lock-free because the set is frozen.
pub(crate) const SHARDS: usize = 64;

/// Estimated resident bytes per live key in a RAM shard: the 8-byte key
/// plus hash-table control and load-factor overhead. An estimate, not an
/// allocator measurement — budgets and the `explore.visited_bytes` gauge
/// are denominated in it, consistently across tiers.
const RAM_ENTRY_BYTES: usize = 12;

/// Keys per on-disk block: 512 × 8 B = one 4 KiB page per positioned read,
/// with one in-RAM fence pointer (the block's first key) each.
const BLOCK_KEYS: usize = 512;

/// The shard a key lands in — derived from the *mixed* digest, not the raw
/// key. State keys are FNV chains, which are nearly linear over inputs
/// sharing a prefix (see [`mix64`]); masking the raw low bits inherits that
/// structure, so the index goes through the SplitMix64 finalizer first and
/// masks from full-avalanche bits.
pub(crate) fn shard_of(key: u64) -> usize {
    (mix64(key) & (SHARDS as u64 - 1)) as usize
}

/// A deduplication store for 64-bit state keys.
///
/// Implementations must be deterministic: the same insert sequence yields
/// the same admit/reject answers, whatever the wall clock, thread count, or
/// filesystem says. `contains` is a read-only probe safe to call from many
/// threads while no insert is in flight (the engines freeze the set during
/// a level); `insert` requires exclusive access and is the only mutator.
pub trait VisitedSet: Send + Sync + std::fmt::Debug {
    /// True if `key` has been admitted (exact tiers) or cannot be ruled out
    /// (probabilistic tier).
    fn contains(&self, key: u64) -> bool;

    /// Records `key`; true if it was new (the state should be expanded),
    /// false if it deduplicates against an earlier insert.
    fn insert(&mut self, key: u64) -> bool;

    /// Keys admitted so far.
    fn len(&self) -> usize;

    /// True when nothing has been admitted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears logical content while retaining allocations — arenas call
    /// this between runs to keep the steady state off the allocator.
    fn clear(&mut self);

    /// Estimated resident bytes right now (RAM structures only; spilled
    /// runs are accounted by [`VisitedSet::disk_bytes`]).
    fn memory_bytes(&self) -> usize;

    /// High-water mark of [`VisitedSet::memory_bytes`] over the set's
    /// lifetime — what the `explore.visited_bytes` gauge reports.
    fn peak_memory_bytes(&self) -> usize {
        self.memory_bytes()
    }

    /// Appends the resident shard occupancies (for the
    /// `explore.shard_occupancy` telemetry histogram). Tiers without a
    /// resident shard structure append nothing.
    fn shard_sizes(&self, out: &mut Vec<u64>);

    /// Times the RAM delta was merge-compacted to disk (0 for pure-RAM
    /// tiers).
    fn spills(&self) -> u64 {
        0
    }

    /// Bytes currently resident in the on-disk run (0 for pure-RAM tiers).
    fn disk_bytes(&self) -> u64 {
        0
    }

    /// For probabilistic tiers: an upper estimate of the probability that
    /// the *next* membership probe wrongly deduplicates a never-seen state.
    /// `None` for exact tiers — their certificates are unconditional.
    fn false_dedup_bound(&self) -> Option<f64> {
        None
    }
}

/// The exact in-RAM tier: 64 FNV-hashed shards, exactly the dedup store
/// the parallel engine always used (with the shard index now derived from
/// the mixed digest).
#[derive(Debug)]
pub struct RamVisited {
    shards: Vec<FnvSet>,
    len: usize,
}

impl RamVisited {
    /// An empty set; shard tables grow on demand and are retained across
    /// [`VisitedSet::clear`].
    pub fn new() -> Self {
        RamVisited {
            shards: (0..SHARDS).map(|_| FnvSet::default()).collect(),
            len: 0,
        }
    }
}

impl Default for RamVisited {
    fn default() -> Self {
        RamVisited::new()
    }
}

impl VisitedSet for RamVisited {
    fn contains(&self, key: u64) -> bool {
        self.shards[shard_of(key)].contains(&key)
    }

    fn insert(&mut self, key: u64) -> bool {
        let admitted = self.shards[shard_of(key)].insert(key);
        if admitted {
            self.len += 1;
        }
        admitted
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.len = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.len * RAM_ENTRY_BYTES
    }

    fn shard_sizes(&self, out: &mut Vec<u64>) {
        out.extend(self.shards.iter().map(|s| s.len() as u64));
    }
}

/// Process-unique sequence for spill-file names; combined with the PID so
/// concurrent explorations (and concurrent test processes) never collide.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_path() -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nonfifo-visited-{}-{}.run",
        std::process::id(),
        seq
    ))
}

/// One sorted on-disk run of unique little-endian `u64` keys, probed by
/// binary search over in-RAM fence pointers (first key per 4 KiB block)
/// plus a single positioned read. The file is deleted on drop.
struct DiskRun {
    file: File,
    path: PathBuf,
    keys: u64,
    fences: Vec<u64>,
    /// Serialises seek+read probes on platforms without positioned reads.
    #[cfg(not(unix))]
    probe: std::sync::Mutex<()>,
}

impl std::fmt::Debug for DiskRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskRun")
            .field("path", &self.path)
            .field("keys", &self.keys)
            .field("blocks", &self.fences.len())
            .finish()
    }
}

impl Drop for DiskRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl DiskRun {
    /// Writes `sorted` (strictly increasing, unique) to a fresh spill file.
    fn write(sorted: &[u64]) -> std::io::Result<DiskRun> {
        let path = spill_path();
        let mut fences = Vec::with_capacity(sorted.len().div_ceil(BLOCK_KEYS));
        // `File::create` would hand back a write-only descriptor; the run
        // is probed (read) for the rest of its life, so open read+write.
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut writer = BufWriter::new(file);
        for (i, &key) in sorted.iter().enumerate() {
            if i % BLOCK_KEYS == 0 {
                fences.push(key);
            }
            writer.write_all(&key.to_le_bytes())?;
        }
        writer.flush()?;
        let file = writer.into_inner().map_err(|e| e.into_error())?;
        Ok(DiskRun {
            file,
            path,
            keys: sorted.len() as u64,
            fences,
            #[cfg(not(unix))]
            probe: std::sync::Mutex::new(()),
        })
    }

    fn read_block_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            // `Read`/`Seek` are implemented for `&File`, so a shared probe
            // only needs the mutex to keep seek+read atomic.
            let _guard = self.probe.lock().expect("disk-run probe lock");
            let mut file = &self.file;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }

    /// Exact membership probe: fence search picks the one candidate block,
    /// a positioned read fetches it, binary search settles it.
    fn contains(&self, key: u64) -> bool {
        if self.keys == 0 || self.fences.first().is_some_and(|&f| key < f) {
            return false;
        }
        let block = self.fences.partition_point(|&f| f <= key) - 1;
        let start = block * BLOCK_KEYS;
        let in_block = (self.keys as usize - start).min(BLOCK_KEYS);
        let mut buf = [0u8; BLOCK_KEYS * 8];
        let bytes = &mut buf[..in_block * 8];
        if self.read_block_at((start * 8) as u64, bytes).is_err() {
            // An unreadable spill file cannot silently fabricate dedup
            // hits; treating the probe as a miss keeps the search sound
            // (worst case it re-expands a state it already covered —
            // impossible for exact tiers unless the file vanished mid-run).
            return false;
        }
        let mut lo = 0usize;
        let mut hi = in_block;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let at = mid * 8;
            let probe = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("block layout"));
            match probe.cmp(&key) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        false
    }

    /// Streams the run's keys in ascending order into `out`.
    fn read_all_into(&mut self, out: &mut Vec<u64>) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut reader = std::io::BufReader::new(&self.file);
        let mut buf = [0u8; 8];
        for _ in 0..self.keys {
            reader.read_exact(&mut buf)?;
            out.push(u64::from_le_bytes(buf));
        }
        Ok(())
    }
}

/// The exact disk-spilling tier: a [`RamVisited`] delta under a byte
/// budget, merge-compacted into one sorted [`DiskRun`] whenever the
/// resident estimate crosses the budget. Membership is exact — delta OR
/// run — so reports are byte-identical to the in-RAM tier at any budget.
#[derive(Debug)]
pub struct TieredVisited {
    delta: RamVisited,
    run: Option<DiskRun>,
    budget: usize,
    spills: u64,
    peak: usize,
    /// Spill scratch, retained across compactions and runs.
    merge: Vec<u64>,
}

impl TieredVisited {
    /// A tiered set that spills once its resident estimate exceeds
    /// `memory_budget` bytes. Any budget is legal — a tiny one just spills
    /// often; correctness never depends on it.
    pub fn new(memory_budget: usize) -> Self {
        TieredVisited {
            delta: RamVisited::new(),
            run: None,
            budget: memory_budget,
            spills: 0,
            peak: 0,
            merge: Vec::new(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Merge-compacts the delta into the on-disk run. Keys are unique
    /// across the two sources by construction (`insert` probes the run
    /// before admitting into the delta), so the merge is a plain sorted
    /// union of disjoint sets.
    fn spill(&mut self) {
        self.merge.clear();
        for shard in &self.delta.shards {
            self.merge.extend(shard.iter().copied());
        }
        self.merge.sort_unstable();
        if let Some(run) = &mut self.run {
            run.read_all_into(&mut self.merge)
                .expect("read back the visited spill run");
            // Both halves are sorted and disjoint; a full sort of the
            // concatenation is simple and the spill is off the hot path.
            self.merge.sort_unstable();
        }
        let next = DiskRun::write(&self.merge).expect("write the visited spill run");
        self.run = Some(next);
        self.delta.clear();
        self.spills += 1;
    }
}

impl VisitedSet for TieredVisited {
    fn contains(&self, key: u64) -> bool {
        self.delta.contains(key) || self.run.as_ref().is_some_and(|r| r.contains(key))
    }

    fn insert(&mut self, key: u64) -> bool {
        if self.contains(key) {
            return false;
        }
        self.delta.insert(key);
        let resident = self.memory_bytes();
        self.peak = self.peak.max(resident);
        if resident > self.budget && !self.delta.is_empty() {
            self.spill();
        }
        true
    }

    fn len(&self) -> usize {
        self.delta.len() + self.run.as_ref().map_or(0, |r| r.keys as usize)
    }

    fn clear(&mut self) {
        self.delta.clear();
        self.run = None;
        self.spills = 0;
        self.peak = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.delta.memory_bytes() + self.run.as_ref().map_or(0, |r| r.fences.len() * 8)
    }

    fn peak_memory_bytes(&self) -> usize {
        self.peak.max(self.memory_bytes())
    }

    fn shard_sizes(&self, out: &mut Vec<u64>) {
        self.delta.shard_sizes(out);
    }

    fn spills(&self) -> u64 {
        self.spills
    }

    fn disk_bytes(&self) -> u64 {
        self.run.as_ref().map_or(0, |r| r.keys * 8)
    }
}

/// Bloom hash count. With the filter sized from the byte budget rather
/// than a known key count, a small fixed `k` keeps probes cheap and the
/// closed-form bound exact to evaluate.
const BLOOM_HASHES: u32 = 4;

/// Smallest filter the probabilistic tier will build, whatever the budget:
/// 1 KiB. Degenerate filters would saturate instantly and report a useless
/// (though still honest) bound near 1.
const BLOOM_MIN_BYTES: usize = 1024;

/// The probabilistic tier: a fixed-footprint Bloom filter. Exactness is
/// traded for memory — a saturated bit pattern can wrongly deduplicate a
/// never-seen state ("false dedup"), silently shrinking the explored set —
/// so certificates from this tier are annotated with
/// [`VisitedSet::false_dedup_bound`] rather than reported unconditionally.
/// Hashes are fixed (double hashing over [`mix64`] streams, no RNG), so
/// runs and bounds are deterministic.
#[derive(Debug)]
pub struct ProbabilisticVisited {
    bits: Vec<u64>,
    nbits: u64,
    admitted: usize,
}

impl ProbabilisticVisited {
    /// A filter of `memory_budget` bytes (clamped up to a 1 KiB floor).
    pub fn new(memory_budget: usize) -> Self {
        let words = memory_budget.max(BLOOM_MIN_BYTES) / 8;
        ProbabilisticVisited {
            bits: vec![0u64; words],
            nbits: (words * 64) as u64,
            admitted: 0,
        }
    }

    /// The `i`-th probe position for `key` (double hashing; `h2` is forced
    /// odd so the stride never degenerates).
    fn bit_of(&self, key: u64, i: u32) -> u64 {
        let h1 = mix64(key);
        let h2 = mix64(key ^ 0x9e37_79b9_7f4a_7c15) | 1;
        h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.nbits
    }

    fn probe(&self, key: u64) -> bool {
        (0..BLOOM_HASHES).all(|i| {
            let bit = self.bit_of(key, i);
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }
}

impl VisitedSet for ProbabilisticVisited {
    fn contains(&self, key: u64) -> bool {
        self.probe(key)
    }

    fn insert(&mut self, key: u64) -> bool {
        if self.probe(key) {
            // Either a genuine duplicate or a false dedup — by design the
            // filter cannot tell, which is exactly what the reported bound
            // quantifies.
            return false;
        }
        for i in 0..BLOOM_HASHES {
            let bit = self.bit_of(key, i);
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.admitted += 1;
        true
    }

    fn len(&self) -> usize {
        self.admitted
    }

    fn clear(&mut self) {
        self.bits.fill(0);
        self.admitted = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    fn shard_sizes(&self, _out: &mut Vec<u64>) {}

    fn false_dedup_bound(&self) -> Option<f64> {
        // The standard Bloom estimate (1 − e^(−kn/m))^k with n = keys
        // admitted so far, m = filter bits, k = probe count.
        let k = f64::from(BLOOM_HASHES);
        let n = self.admitted as f64;
        let m = self.nbits as f64;
        Some((1.0 - (-k * n / m).exp()).powf(k))
    }
}

/// Tier selection as data: which [`VisitedSet`] an exploration should
/// deduplicate through. Parsed from `--visited` / `--memory-budget` and
/// owned by the [`Explorer`](crate::Explorer) facade.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VisitedSpec {
    /// Exact, all in RAM ([`RamVisited`]) — the default.
    #[default]
    Ram,
    /// Exact, spilling to disk past a resident-byte budget
    /// ([`TieredVisited`]).
    Tiered {
        /// Resident-byte budget before a spill compaction.
        memory_budget: usize,
    },
    /// Bloom filter of a fixed byte footprint ([`ProbabilisticVisited`]);
    /// certificates hold modulo the reported false-dedup bound.
    Probabilistic {
        /// Filter size in bytes.
        memory_budget: usize,
    },
}

/// Default byte budget when `--visited tiered|probabilistic` is given
/// without `--memory-budget`: 1 GiB.
pub const DEFAULT_MEMORY_BUDGET: usize = 1 << 30;

impl VisitedSpec {
    /// Constructs the tier this spec names.
    pub fn build(&self) -> Box<dyn VisitedSet> {
        match *self {
            VisitedSpec::Ram => Box::new(RamVisited::new()),
            VisitedSpec::Tiered { memory_budget } => Box::new(TieredVisited::new(memory_budget)),
            VisitedSpec::Probabilistic { memory_budget } => {
                Box::new(ProbabilisticVisited::new(memory_budget))
            }
        }
    }

    /// True for tiers whose membership answers are exact — the modes whose
    /// reports are byte-identical to [`VisitedSpec::Ram`].
    pub fn is_exact(&self) -> bool {
        !matches!(self, VisitedSpec::Probabilistic { .. })
    }

    /// Applies a `--memory-budget` value to the spec (no-op for
    /// [`VisitedSpec::Ram`], which has no budget to bound).
    pub fn with_budget(self, memory_budget: usize) -> Self {
        match self {
            VisitedSpec::Ram => VisitedSpec::Ram,
            VisitedSpec::Tiered { .. } => VisitedSpec::Tiered { memory_budget },
            VisitedSpec::Probabilistic { .. } => VisitedSpec::Probabilistic { memory_budget },
        }
    }
}

impl std::fmt::Display for VisitedSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VisitedSpec::Ram => write!(f, "ram"),
            VisitedSpec::Tiered { memory_budget } => {
                write!(f, "tiered (budget {memory_budget} B)")
            }
            VisitedSpec::Probabilistic { memory_budget } => {
                write!(f, "probabilistic ({memory_budget} B filter)")
            }
        }
    }
}

impl std::str::FromStr for VisitedSpec {
    type Err = String;

    /// Parses `ram`, `tiered`, or `probabilistic`; budgets ride separately
    /// on [`VisitedSpec::with_budget`].
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ram" => Ok(VisitedSpec::Ram),
            "tiered" => Ok(VisitedSpec::Tiered {
                memory_budget: DEFAULT_MEMORY_BUDGET,
            }),
            "probabilistic" => Ok(VisitedSpec::Probabilistic {
                memory_budget: DEFAULT_MEMORY_BUDGET,
            }),
            other => Err(format!(
                "unknown visited tier {other:?} (ram, tiered, probabilistic)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic mixed key stream with duplicates: every third key
    /// repeats an earlier one.
    fn key_stream(n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    mix64((i / 2) as u64)
                } else {
                    mix64(i as u64)
                }
            })
            .collect()
    }

    #[test]
    fn ram_and_tiered_agree_on_every_answer() {
        let mut ram = RamVisited::new();
        // 1 KiB budget over ~10k keys: dozens of spill compactions.
        let mut tiered = TieredVisited::new(1024);
        for key in key_stream(10_000) {
            assert_eq!(ram.contains(key), tiered.contains(key), "pre-probe {key}");
            assert_eq!(ram.insert(key), tiered.insert(key), "insert {key}");
            assert!(tiered.contains(key), "post-probe {key}");
        }
        assert_eq!(ram.len(), tiered.len());
        assert!(tiered.spills() > 0, "the tiny budget must have spilled");
        assert!(tiered.disk_bytes() > 0);
        assert!(
            tiered.memory_bytes() <= 1024 + SHARDS * RAM_ENTRY_BYTES,
            "resident estimate near the budget after compactions: {}",
            tiered.memory_bytes()
        );
        // Every admitted key answers true from the spilled run.
        for key in key_stream(10_000) {
            assert!(tiered.contains(key));
        }
        assert!(!tiered.contains(mix64(0xdead_beef)));
    }

    #[test]
    fn tiered_clear_resets_to_an_empty_set() {
        let mut tiered = TieredVisited::new(256);
        for key in key_stream(2_000) {
            tiered.insert(key);
        }
        assert!(tiered.spills() > 0);
        tiered.clear();
        assert_eq!(tiered.len(), 0);
        assert_eq!(tiered.spills(), 0);
        assert_eq!(tiered.disk_bytes(), 0);
        assert!(!tiered.contains(mix64(1)));
        // Reusable after the reset, exactly like a fresh set.
        assert!(tiered.insert(42));
        assert!(!tiered.insert(42));
    }

    #[test]
    fn spill_files_are_deleted_on_drop() {
        let path;
        {
            let mut tiered = TieredVisited::new(64);
            for key in key_stream(500) {
                tiered.insert(key);
            }
            path = tiered.run.as_ref().expect("spilled").path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists(), "spill file must not outlive the set");
    }

    #[test]
    fn disk_run_block_boundaries_are_exact() {
        // Key counts straddling block boundaries: first/last key of each
        // block, plus absent neighbours of every present key.
        for n in [BLOCK_KEYS - 1, BLOCK_KEYS, BLOCK_KEYS + 1, 3 * BLOCK_KEYS] {
            let keys: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            let run = DiskRun::write(&keys).unwrap();
            for &k in &keys {
                assert!(run.contains(k), "{n} keys: present {k}");
                assert!(!run.contains(k + 1), "{n} keys: absent {}", k + 1);
            }
            assert!(!run.contains(0), "{n} keys: below the first fence");
        }
    }

    #[test]
    fn probabilistic_is_deterministic_and_reports_an_honest_bound() {
        let build = || {
            let mut bloom = ProbabilisticVisited::new(64 * 1024);
            let answers: Vec<bool> = key_stream(20_000)
                .iter()
                .map(|&k| bloom.insert(k))
                .collect();
            (bloom, answers)
        };
        let (a, answers_a) = build();
        let (b, answers_b) = build();
        assert_eq!(answers_a, answers_b, "no RNG anywhere: runs must replay");
        assert_eq!(a.len(), b.len());
        assert_eq!(a.false_dedup_bound(), b.false_dedup_bound());

        // Honesty: the distinct-key count is known, so the observed false
        // dedups are countable. The bound is a per-probe expectation; 2x
        // slack absorbs the variance of one fixed hash draw.
        let keys = key_stream(20_000);
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        let false_dedups = distinct.len() - a.len();
        let bound = a.false_dedup_bound().unwrap();
        assert!(bound > 0.0 && bound < 1.0);
        assert!(
            (false_dedups as f64) <= (bound * distinct.len() as f64).mul_add(2.0, 8.0),
            "{false_dedups} false dedups exceeds twice the reported bound \
             ({bound:.2e} over {} keys)",
            distinct.len()
        );
    }

    #[test]
    fn probabilistic_with_ample_budget_is_effectively_exact() {
        // 1 MiB of filter for 20k keys: the bound collapses and no false
        // dedup occurs, so the admitted count equals the distinct count.
        let mut bloom = ProbabilisticVisited::new(1 << 20);
        let keys = key_stream(20_000);
        for &k in &keys {
            bloom.insert(k);
        }
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(bloom.len(), distinct.len());
        assert!(bloom.false_dedup_bound().unwrap() < 1e-6);
    }

    #[test]
    fn shard_index_comes_from_the_mixed_digest() {
        // Raw FNV state keys share high-entropy low bits only after
        // mixing; the regression here is structural: consecutive FNV
        // chains must not all land in a handful of shards.
        let mut occupied = [false; SHARDS];
        for i in 0..4096u64 {
            // FNV-like near-linear keys: a fixed prefix times the prime
            // plus a small delta — the adversarial shape for raw masking.
            let key = 0xcbf2_9ce4_8422_2325u64
                .wrapping_mul(0x0000_0100_0000_01b3)
                .wrapping_add(i);
            occupied[shard_of(key)] = true;
        }
        assert!(
            occupied.iter().filter(|&&b| b).count() == SHARDS,
            "mixed shard index must reach every shard"
        );
    }

    #[test]
    fn spec_parses_builds_and_displays() {
        assert_eq!("ram".parse::<VisitedSpec>().unwrap(), VisitedSpec::Ram);
        assert!(matches!(
            "tiered".parse::<VisitedSpec>().unwrap(),
            VisitedSpec::Tiered { .. }
        ));
        assert!(matches!(
            "probabilistic".parse::<VisitedSpec>().unwrap(),
            VisitedSpec::Probabilistic { .. }
        ));
        assert!("mmap".parse::<VisitedSpec>().is_err());
        let spec = "tiered".parse::<VisitedSpec>().unwrap().with_budget(4096);
        assert_eq!(
            spec,
            VisitedSpec::Tiered {
                memory_budget: 4096
            }
        );
        assert!(spec.is_exact());
        assert!(!VisitedSpec::Probabilistic {
            memory_budget: 4096
        }
        .is_exact());
        let mut set = spec.build();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert_eq!(VisitedSpec::Ram.to_string(), "ram");
    }
}
