//! Parallel state-space exploration: the engine of [`explore`] scaled to
//! every core, with the sequential explorer kept as its oracle.
//!
//! [`ParallelExplorer`] runs a **level-synchronized** breadth-first search
//! over the composed system: all states at adversary-action depth `d` are
//! expanded (in parallel) before any state at depth `d+1`, so the
//! "shortest counterexample" guarantee of the sequential explorer is
//! preserved exactly. Within a level, worker threads claim chunks of the
//! frontier from a shared atomic cursor — dynamic load balancing with no
//! external work-stealing runtime, in keeping with the workspace's
//! zero-dependency policy.
//!
//! **Zero-copy hot path.** Three structural choices keep the steady-state
//! expansion loop off the allocator (see `docs/explorer_internals.md`):
//!
//! - **Parent-pointer paths.** A frontier node does not own its schedule.
//!   Each level appends one `(parent index, last step)` record per admitted
//!   node to a per-level arena, and full paths are reconstructed by walking
//!   the parent chain — only on a violation or never. Expanding a node
//!   copies two words instead of cloning an O(depth) vector.
//! - **Pooled systems.** Expanded successors draw recycled [`System`]s from
//!   a pool and refill them in place ([`System::assign_from`]); merged-out
//!   duplicates and retired frontiers return to the pool. With the flat
//!   multiset and fieldwise `clone_from` plumbing underneath, a warm
//!   expansion performs no heap allocation (pinned by the allocation
//!   regression test in `tests/explore_alloc.rs`).
//! - **Tiered dedup.** The visited set behind the engine is a
//!   [`VisitedSet`] tier chosen by [`VisitedSpec`] (see [`crate::visited`]):
//!   the exact RAM tier runs 64 FNV shards on the fixed-key FNV-64 hasher
//!   ([`nonfifo_ioa::fingerprint`]), the tiered tier spills past a byte
//!   budget to a sorted disk run, and the probabilistic tier trades
//!   exactness for a fixed Bloom footprint. State keys come from the shared
//!   [`StateCodec`](crate::codec::StateCodec), which folds in the
//!   multiset's incrementally maintained content digest, so hashing a
//!   state never walks the pool.
//!
//! **Determinism.** The outcome is a pure function of (protocol, config):
//! thread count and OS scheduling cannot change it.
//!
//! - Workers only *read* the visited set (it is frozen during a level);
//!   newly discovered states are merged after the level in sorted
//!   `(state key, parent rank, step)` order. All paths within a level have
//!   equal length and the frontier is kept sorted by path order, so
//!   comparing `(parent rank, step)` *is* comparing full paths — when two
//!   paths reach the same state in the same level, the lexicographically
//!   smallest path deterministically claims it, exactly as the old
//!   owned-path engine did (property-tested in `tests/explore_props.rs`).
//! - The merge itself is **sharded and parallel**: candidates are binned
//!   by the 64-way mixed-digest shard index ([`shard_of`]) as workers
//!   discover them, and each shard is sorted, deduplicated, and probed
//!   against the visited tier's spilled runs independently — shards are
//!   disjoint key spaces, so per-shard winners concatenated shard-major
//!   and then emitted in global path-rank order are exactly the winners
//!   the old single-threaded full-sort merge produced, whatever thread
//!   ran which shard (the determinism argument is spelled out in
//!   `docs/explorer_internals.md` §7). Disk-backed tiers are probed once
//!   per shard with a sorted key batch
//!   ([`VisitedSet::probe_spilled_sorted`]), so a 4 KiB run block is read
//!   once per level instead of once per candidate.
//! - Violations found within a level are collected, and the
//!   lexicographically smallest schedule wins — not the first one a thread
//!   happened to stumble on. (The sequential oracle instead returns the
//!   first violation in discovery order; both are shortest, so outcome
//!   kind and depth always agree, while the schedule bytes may differ
//!   between the two engines — never between thread counts.)
//! - The state budget is enforced during the sorted merge, so `Truncated`
//!   outcomes report a thread-count-independent state count. When a level
//!   contains both a violation and the budget edge, the violation wins
//!   (the conclusive answer beats the resource excuse); the sequential
//!   oracle may report `Truncated` on such knife-edge scopes.
//!
//! Frontier states are held with counters-only executions
//! ([`System::disable_event_log`]) so cloning a node is O(protocol state),
//! not O(history); the winning counterexample is re-materialised by
//! replaying its schedule through the strict scheduler — which doubles as
//! an end-to-end validation of every reported attack.

use crate::codec::EncodedState;
use crate::explore::{
    apply, build_root, enabled_actions_into, to_step, Action, ExploreConfig, ExploreOutcome,
};
use crate::por::PorCtx;
use crate::schedule::{Schedule, ScheduleStep};
use crate::system::System;
use crate::visited::{shard_of, VisitedSet, VisitedSpec, SHARDS};
use crate::workpool::ChunkCursor;
use nonfifo_ioa::{CopyId, Packet};
use nonfifo_protocols::DataLink;
use nonfifo_telemetry::{Counter, Histogram, Registry, TraceSink};
use std::sync::Arc;
use std::time::Instant;

/// Frontier nodes a worker claims per cursor fetch. Small enough to
/// balance skewed levels, large enough to keep the cursor cold.
const CHUNK: usize = 16;

/// One parent-pointer path record: the frontier node at this level reached
/// its state by taking `step` from the previous level's node at index
/// `parent`. Full schedules are reconstructed by walking the chain — two
/// words per node instead of an owned `Vec<ScheduleStep>` per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PathRec {
    /// Index of the parent node in the previous level's frontier. The
    /// frontier is kept sorted by path order, so for the equal-length paths
    /// of one BFS level, comparing `(parent, step)` is exactly comparing
    /// full paths lexicographically.
    parent: u32,
    /// The action taken from the parent.
    step: ScheduleStep,
}

/// A successor discovered during a level, pending the deterministic merge.
struct Candidate {
    key: u64,
    rec: PathRec,
    sys: System,
}

/// Per-worker scratch: action/oldest-copy buffers for the expansion core, a
/// local system pool, and the candidate/violation out-buffers. Candidates
/// are binned by visited-shard index at discovery time ([`shard_of`]), so
/// the post-level merge starts from 64 disjoint key spaces per worker.
/// Everything is reused level to level and run to run.
#[derive(Debug, Default)]
struct WorkerScratch {
    actions: Vec<Action>,
    oldest: Vec<(Packet, CopyId)>,
    pool: Vec<System>,
    candidates: Vec<Vec<Candidate>>,
    violations: Vec<PathRec>,
}

/// Per-shard merge state, retained in the arena: the shard's combined
/// candidate bin, the sorted unique key batch handed to
/// [`VisitedSet::probe_spilled_sorted`], and the partition point left by
/// the in-place winner compaction (`bin[..start]` are rejected duplicates,
/// `bin[start..]` the shard's winners in descending path-record order so
/// rank assignment can pop them off the tail).
#[derive(Debug, Default)]
struct ShardMerge {
    bin: Vec<Candidate>,
    keys: Vec<u64>,
    hits: Vec<bool>,
    start: usize,
}

impl std::fmt::Debug for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Candidate")
            .field("key", &self.key)
            .field("rec", &self.rec)
            .finish_non_exhaustive()
    }
}

/// Caller-owned reusable workspace for [`ParallelExplorer::explore_in`]:
/// the visited set (any [`VisitedSpec`] tier), the system pool, per-worker
/// scratches, the path arena, and the merge buffers. Running repeated
/// explorations through one arena keeps the steady-state expansion loop
/// entirely off the allocator — the campaign runner and the allocation
/// regression test both rely on this.
#[derive(Debug)]
pub struct ExploreArena {
    visited: Box<dyn VisitedSet>,
    spec: VisitedSpec,
    pool: Vec<System>,
    workers: Vec<WorkerScratch>,
    /// `levels[d]` holds one [`PathRec`] per frontier node at depth `d`
    /// (`levels[0]` stays empty: the root has no incoming step).
    levels: Vec<Vec<PathRec>>,
    frontier: Vec<System>,
    /// Shard-major transpose buffer: `bins_in[s * stride + w]` is worker
    /// `w`'s candidate bin for shard `s`, swapped in header-only so the
    /// merge can hand disjoint shard groups to threads.
    bins_in: Vec<Vec<Candidate>>,
    /// One [`ShardMerge`] per visited shard.
    merges: Vec<ShardMerge>,
    /// Rank-assignment scratch: a 64-way min-heap over shard bin tails.
    heap: Vec<(PathRec, usize)>,
}

impl Default for ExploreArena {
    fn default() -> Self {
        ExploreArena {
            visited: VisitedSpec::Ram.build(),
            spec: VisitedSpec::Ram,
            pool: Vec::new(),
            workers: Vec::new(),
            levels: Vec::new(),
            frontier: Vec::new(),
            bins_in: Vec::new(),
            merges: (0..SHARDS).map(|_| ShardMerge::default()).collect(),
            heap: Vec::with_capacity(SHARDS),
        }
    }
}

impl ExploreArena {
    /// Creates an empty arena on the exact in-RAM visited tier; buffers
    /// warm up over the first run.
    pub fn new() -> Self {
        ExploreArena::default()
    }

    /// An empty arena deduplicating through `spec`'s visited tier.
    pub fn with_visited(spec: VisitedSpec) -> Self {
        let mut arena = ExploreArena::default();
        arena.install_visited(spec);
        arena
    }

    /// Swaps the visited tier to `spec`. A no-op when the arena already
    /// runs that spec — the existing set (and its warmed allocations) is
    /// kept and merely cleared at the next run.
    pub fn install_visited(&mut self, spec: VisitedSpec) {
        if spec != self.spec {
            self.visited = spec.build();
            self.spec = spec;
        }
    }

    /// The visited set of the most recent run — spill counts, resident
    /// bytes, and the probabilistic tier's false-dedup bound are read here.
    pub fn visited(&self) -> &dyn VisitedSet {
        &*self.visited
    }

    /// The spec the current visited set was built from.
    pub fn visited_spec(&self) -> VisitedSpec {
        self.spec
    }

    pub(crate) fn visited_mut(&mut self) -> &mut dyn VisitedSet {
        &mut *self.visited
    }

    /// Clears logical state while keeping every allocation: the visited
    /// set retains capacity, systems return to the pool, level/merge
    /// buffers reset to length zero.
    fn reset(&mut self, threads: usize) {
        self.visited.clear();
        while self.workers.len() < threads {
            self.workers.push(WorkerScratch::default());
        }
        let ExploreArena {
            pool,
            workers,
            levels,
            frontier,
            bins_in,
            merges,
            ..
        } = self;
        pool.append(frontier);
        for bin in bins_in.iter_mut() {
            pool.extend(bin.drain(..).map(|c| c.sys));
        }
        for m in merges.iter_mut() {
            pool.extend(m.bin.drain(..).map(|c| c.sys));
        }
        for w in workers.iter_mut() {
            while w.candidates.len() < SHARDS {
                w.candidates.push(Vec::new());
            }
            for bin in w.candidates.iter_mut() {
                pool.extend(bin.drain(..).map(|c| c.sys));
            }
            w.violations.clear();
        }
        for level in levels.iter_mut() {
            level.clear();
        }
    }

    /// Reconstructs the full schedule ending in `last`, a record whose
    /// parent sits at depth `depth` (so the path has `depth + 1` steps).
    fn reconstruct(&self, depth: usize, last: PathRec) -> Vec<ScheduleStep> {
        let mut steps = vec![last.step];
        let mut idx = last.parent as usize;
        // A depth-0 violation has no interior path to walk — and on a fresh
        // arena `levels` is still empty, so even the degenerate `[1..=0]`
        // slice would be out of bounds. Reachable only from a corrupted
        // start, where the very first deliver can already be a phantom.
        if depth > 0 {
            for level in self.levels[1..=depth].iter().rev() {
                let rec = level[idx];
                steps.push(rec.step);
                idx = rec.parent as usize;
            }
        }
        steps.reverse();
        steps
    }
}

/// The work-stealing breadth-first exploration engine.
///
/// # Example
///
/// ```
/// use nonfifo_adversary::{ExploreConfig, ParallelExplorer};
/// use nonfifo_protocols::AlternatingBit;
///
/// let outcome = ParallelExplorer::new(2).explore(&AlternatingBit::new(), &ExploreConfig::default());
/// assert!(outcome.is_counterexample());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelExplorer {
    threads: usize,
    telemetry: Option<ExploreTelemetry>,
}

/// Pre-bound metric handles for the explorer. Recording is relaxed atomics
/// on shared cells, so worker threads update them lock-free; nothing here
/// is ever read back into the search, keeping reports byte-identical with
/// telemetry on or off.
#[derive(Debug, Clone)]
struct ExploreTelemetry {
    registry: Arc<Registry>,
    trace: Option<Arc<TraceSink>>,
    /// Frontier nodes expanded (worker-side).
    expansions: Counter,
    /// Successors generated across all levels (worker-side).
    candidates: Counter,
    /// Successors rejected as already-visited: frozen prior-level hits in
    /// workers plus same-level duplicates caught by the sorted merge.
    dedup_hits: Counter,
    /// Unique states admitted to the visited set.
    states: Counter,
    /// Successor transitions put to sleep by the partial-order reduction
    /// (worker-side; stays 0 with `--por` off or inapplicable).
    pruned: Counter,
    /// Nanoseconds spent in the *serial* part of the per-level merge
    /// (transpose, admit, rank assignment — the per-shard sort/probe work
    /// runs on worker threads and is excluded). This over wall time is the
    /// engine's Amdahl serial fraction; CI guards its share.
    merge_serial: Counter,
    /// Frontier width, one observation per depth level.
    frontier_width: Histogram,
}

impl ExploreTelemetry {
    fn new(registry: Arc<Registry>, trace: Option<Arc<TraceSink>>) -> Self {
        ExploreTelemetry {
            expansions: registry.counter("explore.expansions"),
            candidates: registry.counter("explore.candidates"),
            dedup_hits: registry.counter("explore.dedup_hits"),
            states: registry.counter("explore.states"),
            pruned: registry.counter("explore.pruned_states"),
            merge_serial: registry.counter("explore.merge_serial_ns"),
            frontier_width: registry.histogram("explore.frontier_width"),
            registry,
            trace,
        }
    }

    /// End-of-run derived metrics: visited-set shard occupancy (balance of
    /// the mixed-digest shard split, for tiers with resident shards),
    /// overall throughput, the peak resident frontier estimate, and the
    /// memory-footprint gauges of the tiered visited-set work
    /// (`explore.visited_bytes`, `explore.codec_bytes_per_state`).
    fn finalize(&self, visited: &dyn VisitedSet, elapsed_secs: f64, peak_frontier_bytes: usize) {
        let occupancy = self.registry.histogram("explore.shard_occupancy");
        let mut sizes = Vec::new();
        visited.shard_sizes(&mut sizes);
        for size in sizes {
            occupancy.record(size);
        }
        let states = visited.len();
        if elapsed_secs > 0.0 {
            self.registry
                .set_value("explore.states_per_sec", states as f64 / elapsed_secs);
        }
        self.registry
            .gauge("explore.peak_frontier_bytes")
            .set(peak_frontier_bytes as u64);
        self.registry
            .gauge("explore.visited_bytes")
            .set(visited.peak_memory_bytes() as u64);
        self.registry
            .gauge("explore.codec_bytes_per_state")
            .set(EncodedState::BYTES as u64);
        if visited.spills() > 0 {
            self.registry
                .counter("explore.visited_spills")
                .add(visited.spills());
        }
        // Wall time in the values map so CI can ratio merge_serial_ns
        // against it without parsing states_per_sec backwards.
        self.registry
            .set_value("explore.wall_ns", elapsed_secs * 1e9);
        if visited.disk_runs() > 0 {
            self.registry
                .gauge("explore.disk_runs")
                .set(visited.disk_runs());
        }
        if visited.compaction_bytes() > 0 {
            self.registry
                .counter("explore.compaction_bytes")
                .add(visited.compaction_bytes());
        }
    }
}

impl ParallelExplorer {
    /// Creates an explorer with `threads` workers; `0` means one per
    /// available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        ParallelExplorer {
            threads,
            telemetry: None,
        }
    }

    /// Attaches a metrics registry (and optionally a trace sink) that every
    /// subsequent [`explore`](ParallelExplorer::explore) call records into:
    /// states/candidates/dedup counters, per-depth frontier widths, shard
    /// occupancy, throughput, peak frontier bytes, and per-level spans.
    /// Telemetry never feeds back into the search — outcomes stay
    /// byte-identical.
    pub fn with_telemetry(
        mut self,
        registry: Arc<Registry>,
        trace: Option<Arc<TraceSink>>,
    ) -> Self {
        self.telemetry = Some(ExploreTelemetry::new(registry, trace));
        self
    }

    /// The worker count this explorer will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Explores `proto` within `cfg`'s scope. Same contract as
    /// [`explore`](crate::explore()): shortest counterexample, certificate,
    /// or truncation — and the result is identical for every thread count.
    pub fn explore(&self, proto: &dyn DataLink, cfg: &ExploreConfig) -> ExploreOutcome {
        self.explore_in(proto, cfg, &mut ExploreArena::new())
    }

    /// [`explore`](ParallelExplorer::explore) through a caller-owned
    /// [`ExploreArena`], reusing its buffers. The outcome is identical to a
    /// fresh-arena run; only the allocation profile changes.
    pub fn explore_in(
        &self,
        proto: &dyn DataLink,
        cfg: &ExploreConfig,
        arena: &mut ExploreArena,
    ) -> ExploreOutcome {
        let started = Instant::now();
        arena.reset(self.threads);
        let (outcome, peak_frontier_bytes) = self.run(proto, cfg, arena);
        if let Some(tel) = &self.telemetry {
            tel.finalize(
                arena.visited(),
                started.elapsed().as_secs_f64(),
                peak_frontier_bytes,
            );
            tel.registry
                .gauge("explore.threads")
                .set(self.threads as u64);
        }
        outcome
    }

    fn run(
        &self,
        proto: &dyn DataLink,
        cfg: &ExploreConfig,
        arena: &mut ExploreArena,
    ) -> (ExploreOutcome, usize) {
        let tel = self.telemetry.as_ref();
        let root = build_root(proto, cfg, false);
        // The sleep rule is a pure function of (state, action), so workers
        // apply it independently with no coordination — pruning cannot
        // depend on discovery order or thread count.
        let por = PorCtx::new(&root, cfg);
        let root_key = por.key(&root);
        arena.visited.insert(root_key);
        let mut states = 1usize;
        if let Some(t) = tel {
            t.states.inc();
        }
        arena.frontier.push(root);
        let mut peak_frontier_bytes = 0usize;

        for depth in 0..cfg.max_depth {
            if arena.frontier.is_empty() {
                break;
            }
            let _level_span = tel.and_then(|t| t.trace.as_deref()).map(|trace| {
                trace.span_with_args(
                    "explore",
                    &format!("level {depth}"),
                    vec![
                        ("depth".to_string(), depth as u64),
                        ("frontier".to_string(), arena.frontier.len() as u64),
                    ],
                )
            });
            if let Some(t) = tel {
                t.frontier_width.record(arena.frontier.len() as u64);
                // The resident estimate walks the frontier, so only pay for
                // it when someone attached a registry to read it.
                let bytes: usize = arena.frontier.iter().map(System::heap_bytes_estimate).sum();
                peak_frontier_bytes = peak_frontier_bytes.max(bytes);
            }
            self.expand_level(cfg, por, arena);

            // Violations: the lexicographically smallest path wins; within
            // one level that is the minimal (parent rank, step) pair.
            let best_violation = arena
                .workers
                .iter()
                .flat_map(|w| w.violations.iter().copied())
                .min();
            if let Some(rec) = best_violation {
                let steps = arena.reconstruct(depth, rec);
                return (materialize(proto, cfg, steps), peak_frontier_bytes);
            }

            // Deterministic sharded merge: every shard is a disjoint key
            // space, so each is sorted by (key, parent rank, step),
            // deduplicated, and disk-probed independently — on worker
            // threads — and the shard-local decisions concatenated
            // shard-major are exactly the decisions the old global sort
            // made. Only the transpose, the admit pass, and rank
            // assignment remain serial (timed as `explore.merge_serial_ns`
            // when telemetry is attached).
            let ExploreArena {
                visited,
                pool,
                workers,
                levels,
                frontier,
                bins_in,
                merges,
                heap,
                ..
            } = &mut *arena;

            let serial_started = tel.map(|_| Instant::now());
            // Transpose worker-major bins into shard-major groups with
            // header-only Vec swaps; `bins_in[s * stride + w]` then holds
            // worker w's candidates for shard s.
            let stride = workers.len();
            while bins_in.len() < SHARDS * stride {
                bins_in.push(Vec::new());
            }
            let mut total = 0usize;
            for (w, scratch) in workers.iter_mut().enumerate() {
                for (s, bin) in scratch.candidates.iter_mut().enumerate() {
                    if !bin.is_empty() {
                        total += bin.len();
                        std::mem::swap(&mut bins_in[s * stride + w], bin);
                    }
                }
            }
            let mut serial_ns = serial_started.map_or(0, |t| t.elapsed().as_nanos() as u64);

            // Per-shard sort + same-level dedup + batched spilled-run
            // probe + winner compaction (phase A), fanned out over the
            // worker threads. Tiny levels stay inline: a scope spawn costs
            // more than sorting a few dozen candidates.
            let frozen: &dyn VisitedSet = &**visited;
            let merge_threads = self.threads.min(SHARDS);
            if merge_threads == 1 || total < CHUNK * SHARDS {
                for (s, m) in merges.iter_mut().enumerate() {
                    merge_shard(m, &mut bins_in[s * stride..(s + 1) * stride]);
                    frozen.probe_spilled_sorted(&m.keys, &mut m.hits);
                    compact_winners(m);
                }
            } else {
                let per = SHARDS.div_ceil(merge_threads);
                std::thread::scope(|scope| {
                    for (ms, bs) in merges
                        .chunks_mut(per)
                        .zip(bins_in[..SHARDS * stride].chunks_mut(per * stride))
                    {
                        scope.spawn(move || {
                            for (j, m) in ms.iter_mut().enumerate() {
                                merge_shard(m, &mut bs[j * stride..(j + 1) * stride]);
                                frozen.probe_spilled_sorted(&m.keys, &mut m.hits);
                                compact_winners(m);
                            }
                        });
                    }
                });
            }

            let serial_resumed = tel.map(|_| Instant::now());
            // The expanded frontier is dead; recycle its systems.
            pool.append(frontier);

            // Admit pass (serial): shard-major over the compacted winners.
            // Each winner key was proven absent by the resident probe at
            // expansion time plus the spilled probe above, so exact tiers
            // take the probe-free insert; the probabilistic tier re-probes
            // its filter and may still reject (a same-level false dedup),
            // which stays on the rare path.
            let mut level_dedup = 0u64;
            for m in merges.iter_mut() {
                level_dedup += m.start as u64;
                let mut i = m.start;
                while i < m.bin.len() {
                    if visited.insert_new(m.bin[i].key) {
                        states += 1;
                        if let Some(t) = tel {
                            t.states.inc();
                        }
                        if states >= cfg.max_states {
                            if let Some(t) = tel {
                                t.dedup_hits.add(level_dedup);
                            }
                            return (ExploreOutcome::Truncated { states }, peak_frontier_bytes);
                        }
                        i += 1;
                    } else {
                        level_dedup += 1;
                        let c = m.bin.remove(i);
                        pool.push(c.sys);
                    }
                }
            }
            if let Some(t) = tel {
                t.dedup_hits.add(level_dedup);
            }

            // Rank assignment (serial): each shard's winners sit at its
            // bin tail in descending (parent rank, step) order, so a
            // 64-way min-heap over the tails emits the level in global
            // path order with O(1) by-value pops — each node's index in
            // the next frontier and the level's record arena *is* its path
            // rank, the invariant that lets the merge compare two-word
            // records instead of whole paths.
            while levels.len() <= depth + 1 {
                levels.push(Vec::new());
            }
            let level = &mut levels[depth + 1];
            heap.clear();
            for (s, m) in merges.iter().enumerate() {
                if m.bin.len() > m.start {
                    heap_push(heap, (m.bin[m.bin.len() - 1].rec, s));
                }
            }
            while let Some((_, s)) = heap_pop(heap) {
                let m = &mut merges[s];
                let c = m.bin.pop().expect("heap tracks non-empty tails");
                level.push(c.rec);
                frontier.push(c.sys);
                if m.bin.len() > m.start {
                    heap_push(heap, (m.bin[m.bin.len() - 1].rec, s));
                }
            }
            // What is left in the bins are the level's duplicates;
            // recycle their systems.
            for m in merges.iter_mut() {
                pool.extend(m.bin.drain(..).map(|c| c.sys));
            }
            if let (Some(t), Some(resumed)) = (tel, serial_resumed) {
                serial_ns += resumed.elapsed().as_nanos() as u64;
                t.merge_serial.add(serial_ns);
            }
        }
        (ExploreOutcome::Exhausted { states }, peak_frontier_bytes)
    }

    /// Expands every frontier node, leaving each worker's discoveries in
    /// its scratch buffers. Work is claimed in [`CHUNK`]-sized slices from
    /// an atomic cursor; a frontier too small to fill one chunk per worker
    /// runs on the calling thread without spawning a scope.
    fn expand_level(&self, cfg: &ExploreConfig, por: PorCtx, arena: &mut ExploreArena) {
        let tel = self.telemetry.as_ref();
        let ExploreArena {
            visited,
            pool,
            workers,
            frontier,
            ..
        } = arena;
        let nworkers = self.threads.min(frontier.len().div_ceil(CHUNK)).max(1);
        // Hand the recycled systems to the active workers round-robin so
        // every thread draws from a warm local pool.
        for (i, sys) in pool.drain(..).enumerate() {
            workers[i % nworkers].pool.push(sys);
        }
        if nworkers == 1 {
            let scratch = &mut workers[0];
            for (rank, sys) in frontier.iter().enumerate() {
                expand_node(sys, rank as u32, &**visited, cfg, por, tel, scratch);
            }
            return;
        }
        let cursor = ChunkCursor::new(frontier.len(), CHUNK);
        let frontier = &*frontier;
        // Frozen for the level: workers only probe membership, so a shared
        // borrow of the tier is all they get (the trait requires `Sync`).
        let visited: &dyn VisitedSet = &**visited;
        std::thread::scope(|scope| {
            for scratch in workers[..nworkers].iter_mut() {
                let cursor = &cursor;
                scope.spawn(move || {
                    while let Some(range) = cursor.claim() {
                        let start = range.start;
                        for (i, sys) in frontier[range].iter().enumerate() {
                            expand_node(sys, (start + i) as u32, visited, cfg, por, tel, scratch);
                        }
                    }
                });
            }
        });
    }
}

fn expand_node(
    sys: &System,
    rank: u32,
    visited: &dyn VisitedSet,
    cfg: &ExploreConfig,
    por: PorCtx,
    tel: Option<&ExploreTelemetry>,
    scratch: &mut WorkerScratch,
) {
    if let Some(t) = tel {
        t.expansions.inc();
    }
    enabled_actions_into(sys, cfg, &mut scratch.oldest, &mut scratch.actions);
    for k in 0..scratch.actions.len() {
        let action = scratch.actions[k];
        let mut next = match scratch.pool.pop() {
            Some(mut recycled) => {
                recycled.assign_from(sys);
                recycled
            }
            None => sys.clone(),
        };
        apply(&mut next, action);
        let rec = PathRec {
            parent: rank,
            step: to_step(action),
        };
        if next.violation().is_some() {
            scratch.violations.push(rec);
            scratch.pool.push(next);
            continue;
        }
        // Sleep-set pruning, mirrored exactly from the sequential engine:
        // after the violation check, before dedup. Pure in (state, action),
        // so every thread schedule prunes the identical edge set.
        if por.sleeps(sys, &next, action, cfg) {
            if let Some(t) = tel {
                t.pruned.inc();
            }
            scratch.pool.push(next);
            continue;
        }
        let key = por.key(&next);
        // Frozen *resident* membership check — for disk-spilling tiers
        // this is the RAM delta only; spilled-run membership is settled
        // once per level by the merge's batched sorted probe, so the hot
        // loop never waits on a positioned read. Same-level duplicates are
        // likewise resolved in the merge.
        if !visited.contains_resident(key) {
            if let Some(t) = tel {
                t.candidates.inc();
            }
            scratch.candidates[shard_of(key)].push(Candidate {
                key,
                rec,
                sys: next,
            });
        } else {
            if let Some(t) = tel {
                t.dedup_hits.inc();
            }
            scratch.pool.push(next);
        }
    }
}

/// Phase A of the sharded merge, one shard at a time: combine the workers'
/// bins for this shard, sort by `(key, parent rank, step)`, and build the
/// sorted unique key batch for the spilled-run probe. Runs concurrently
/// across shards — every buffer it touches is shard-local.
fn merge_shard(m: &mut ShardMerge, bins: &mut [Vec<Candidate>]) {
    m.bin.clear();
    m.keys.clear();
    m.start = 0;
    for bin in bins {
        m.bin.append(bin);
    }
    if m.bin.is_empty() {
        m.hits.clear();
        return;
    }
    m.bin.sort_unstable_by_key(|c| (c.key, c.rec));
    for c in &m.bin {
        if m.keys.last() != Some(&c.key) {
            m.keys.push(c.key);
        }
    }
    m.hits.clear();
    m.hits.resize(m.keys.len(), false);
}

/// Tail of phase A, after the spilled-run probe filled `m.hits`: compact
/// the shard's winners — the first occurrence of each key that is not
/// already on disk — to the tail of the bin in place, losers to the front,
/// then order the winners by *descending* path record so rank assignment
/// can pop the shard's minimum off the tail in O(1).
fn compact_winners(m: &mut ShardMerge) {
    let mut w = m.bin.len();
    let mut key_idx = m.keys.len();
    for i in (0..m.bin.len()).rev() {
        let key = m.bin[i].key;
        if key_idx == m.keys.len() || m.keys[key_idx] != key {
            key_idx -= 1;
        }
        let first = i == 0 || m.bin[i - 1].key != key;
        if first && !m.hits[key_idx] {
            // The swap target is always in the already-scanned suffix, so
            // the backward scan never revisits a displaced element.
            w -= 1;
            m.bin.swap(i, w);
        }
    }
    m.start = w;
    m.bin[w..].sort_unstable_by_key(|b| std::cmp::Reverse(b.rec));
}

/// Sift-up push into the arena-retained min-heap over shard bin tails.
/// Path records within a level are unique (a `(parent, step)` pair is one
/// edge), so ordering by record alone is total and deterministic.
fn heap_push(heap: &mut Vec<(PathRec, usize)>, item: (PathRec, usize)) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent].0 <= heap[i].0 {
            break;
        }
        heap.swap(i, parent);
        i = parent;
    }
}

/// Pop the minimum record off the tail heap (sift-down).
fn heap_pop(heap: &mut Vec<(PathRec, usize)>) -> Option<(PathRec, usize)> {
    let n = heap.len();
    if n == 0 {
        return None;
    }
    heap.swap(0, n - 1);
    let top = heap.pop();
    let n = heap.len();
    let mut i = 0;
    loop {
        let left = 2 * i + 1;
        if left >= n {
            break;
        }
        let child = if left + 1 < n && heap[left + 1].0 < heap[left].0 {
            left + 1
        } else {
            left
        };
        if heap[i].0 <= heap[child].0 {
            break;
        }
        heap.swap(i, child);
        i = child;
    }
    top
}

/// Re-runs the winning path through the strict scheduler to recover the
/// full invalid execution (frontier systems carry counters-only logs).
fn materialize(
    proto: &dyn DataLink,
    cfg: &ExploreConfig,
    steps: Vec<ScheduleStep>,
) -> ExploreOutcome {
    let schedule = Schedule::new(steps);
    // Replay from the same (possibly corrupted) root that produced the
    // violation — a clean boot would desynchronise corrupted-start runs.
    let sys = Schedule::run_steps_from(schedule.steps(), build_root(proto, cfg, true))
        .expect("explorer-found schedule must replay");
    assert!(
        sys.violation().is_some(),
        "explorer-found schedule must reproduce its violation"
    );
    ExploreOutcome::Counterexample {
        execution: sys.execution().clone(),
        depth: schedule.steps().len(),
        schedule,
    }
}

/// Convenience wrapper: [`ParallelExplorer::new(threads)`] then
/// [`explore`](ParallelExplorer::explore).
pub fn explore_parallel(
    proto: &dyn DataLink,
    cfg: &ExploreConfig,
    threads: usize,
) -> ExploreOutcome {
    ParallelExplorer::new(threads).explore(proto, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::state_key;
    use crate::explore::{explore, Discipline};
    use crate::visited::FnvSet;
    use crate::visited::SHARDS;
    use nonfifo_protocols::{AlternatingBit, GoBackN, NaiveCycle, SequenceNumber};

    fn outcome_kind(o: &ExploreOutcome) -> &'static str {
        match o {
            ExploreOutcome::Counterexample { .. } => "counterexample",
            ExploreOutcome::Exhausted { .. } => "exhausted",
            ExploreOutcome::Truncated { .. } => "truncated",
        }
    }

    #[test]
    fn byte_identical_reports_across_thread_counts() {
        let cfg = ExploreConfig::default();
        let protos: Vec<Box<dyn DataLink>> = vec![
            Box::new(AlternatingBit::new()),
            Box::new(NaiveCycle::new(3)),
            Box::new(SequenceNumber::new()),
            Box::new(GoBackN::new(1)),
        ];
        for proto in &protos {
            let reports: Vec<String> = [1, 2, 8]
                .iter()
                .map(|&t| explore_parallel(proto.as_ref(), &cfg, t).report())
                .collect();
            assert_eq!(reports[0], reports[1], "{}: 1 vs 2 threads", proto.name());
            assert_eq!(reports[0], reports[2], "{}: 1 vs 8 threads", proto.name());
        }
    }

    #[test]
    fn agrees_with_sequential_oracle_on_kind_depth_and_states() {
        let cfg = ExploreConfig::default();
        let protos: Vec<Box<dyn DataLink>> = vec![
            Box::new(AlternatingBit::new()),
            Box::new(NaiveCycle::new(3)),
            Box::new(SequenceNumber::new()),
        ];
        for proto in &protos {
            let seq = explore(proto.as_ref(), &cfg);
            let par = explore_parallel(proto.as_ref(), &cfg, 4);
            assert_eq!(
                outcome_kind(&seq),
                outcome_kind(&par),
                "{}: outcome kinds diverge",
                proto.name()
            );
            match (&seq, &par) {
                (
                    ExploreOutcome::Counterexample { depth: a, .. },
                    ExploreOutcome::Counterexample { depth: b, .. },
                ) => assert_eq!(a, b, "{}: counterexample depths diverge", proto.name()),
                (
                    ExploreOutcome::Exhausted { states: a },
                    ExploreOutcome::Exhausted { states: b },
                ) => assert_eq!(a, b, "{}: certificate state counts diverge", proto.name()),
                _ => {}
            }
        }
    }

    #[test]
    fn parallel_counterexample_replays_and_is_shortest() {
        let outcome = explore_parallel(&AlternatingBit::new(), &ExploreConfig::default(), 8);
        let ExploreOutcome::Counterexample {
            depth, schedule, ..
        } = outcome
        else {
            panic!("expected counterexample");
        };
        assert!(depth <= 7, "depth {depth}");
        let sys = schedule.run(&AlternatingBit::new()).expect("replay");
        assert!(sys.violation().is_some());
    }

    #[test]
    fn truncation_is_deterministic_and_explicit() {
        let cfg = ExploreConfig {
            max_states: 10,
            ..ExploreConfig::default()
        };
        let a = explore_parallel(&SequenceNumber::new(), &cfg, 1);
        let b = explore_parallel(&SequenceNumber::new(), &cfg, 8);
        assert!(a.is_truncated(), "got {a:?}");
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn depth_zero_violations_reconstruct_from_a_fresh_arena() {
        // Corrupt seed 8 preloads junk whose very first deliver is already
        // a phantom: the shortest counterexample is one action, found at
        // depth 0 before the path arena holds any levels. Regression:
        // `reconstruct` used to slice `levels[1..=0]` on the still-empty
        // arena and panic out of bounds.
        let cfg = ExploreConfig {
            max_messages: 2,
            max_depth: 8,
            max_pool: 4,
            max_states: 300_000,
            corrupt_start: Some(8),
            ..ExploreConfig::default()
        };
        for threads in [1, 4] {
            match explore_parallel(&SequenceNumber::new(), &cfg, threads) {
                ExploreOutcome::Counterexample { schedule, .. } => {
                    assert_eq!(schedule.steps().len(), 1, "{threads} threads");
                }
                other => {
                    panic!("{threads} threads: expected a one-action counterexample, got {other:?}")
                }
            }
        }
    }

    #[test]
    fn corrupted_starts_flow_through_the_parallel_engine() {
        // Same corrupted root on every engine and thread count: reports are
        // byte-identical, and a parallel-found counterexample re-materialises
        // from the seeded root (materialize panics otherwise).
        for seed in 0..4 {
            let cfg = ExploreConfig {
                max_messages: 2,
                max_depth: 8,
                max_pool: 4,
                max_states: 300_000,
                corrupt_start: Some(seed),
                ..ExploreConfig::default()
            };
            let reference = explore(&SequenceNumber::new(), &cfg).report();
            for threads in [1, 4] {
                let par = explore_parallel(&SequenceNumber::new(), &cfg, threads).report();
                assert_eq!(par, reference, "seed {seed}, {threads} threads");
            }
        }
    }

    #[test]
    fn disciplines_flow_through_the_parallel_engine() {
        let lossy = ExploreConfig {
            discipline: Discipline::LossyFifo,
            ..ExploreConfig::default()
        };
        assert!(explore_parallel(&AlternatingBit::new(), &lossy, 4).is_certificate());
        let reorder = ExploreConfig {
            discipline: Discipline::BoundedReorder(8),
            ..ExploreConfig::default()
        };
        assert!(explore_parallel(&AlternatingBit::new(), &reorder, 4).is_counterexample());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(ParallelExplorer::new(0).threads() >= 1);
        assert_eq!(ParallelExplorer::new(3).threads(), 3);
    }

    #[test]
    fn arena_reuse_preserves_reports() {
        // Back-to-back explorations through one arena — including a switch
        // of protocol, which exercises the assign_from type-mismatch
        // fallback on pooled systems — match fresh-arena runs exactly.
        let explorer = ParallelExplorer::new(2);
        let cfg = ExploreConfig::default();
        let mut arena = ExploreArena::new();
        for _ in 0..2 {
            for proto in [
                &AlternatingBit::new() as &dyn DataLink,
                &SequenceNumber::new() as &dyn DataLink,
            ] {
                let warm = explorer.explore_in(proto, &cfg, &mut arena).report();
                let fresh = explorer.explore(proto, &cfg).report();
                assert_eq!(warm, fresh, "{}", proto.name());
            }
        }
    }

    /// The pre-optimization engine, kept as a reference: every frontier
    /// node owns its full `Vec<ScheduleStep>` path, and the merge compares
    /// whole paths. The production engine's two-word `(parent rank, step)`
    /// records must reproduce its reports byte for byte.
    fn cloned_path_reference(proto: &dyn DataLink, cfg: &ExploreConfig) -> ExploreOutcome {
        struct Node {
            sys: System,
            path: Vec<ScheduleStep>,
        }
        let mut root = System::new(proto);
        root.disable_event_log();
        let mut visited = FnvSet::default();
        visited.insert(state_key(&root));
        let mut states = 1usize;
        let mut frontier = vec![Node {
            sys: root,
            path: Vec::new(),
        }];
        for _ in 0..cfg.max_depth {
            if frontier.is_empty() {
                break;
            }
            let mut violations: Vec<Vec<ScheduleStep>> = Vec::new();
            let mut candidates: Vec<(u64, Vec<ScheduleStep>, System)> = Vec::new();
            for node in &frontier {
                for action in crate::explore::enabled_actions(&node.sys, cfg) {
                    let mut next = node.sys.clone();
                    apply(&mut next, action);
                    let mut path = node.path.clone();
                    path.push(to_step(action));
                    if next.violation().is_some() {
                        violations.push(path);
                        continue;
                    }
                    let key = state_key(&next);
                    if !visited.contains(&key) {
                        candidates.push((key, path, next));
                    }
                }
            }
            if !violations.is_empty() {
                violations.sort_unstable();
                return materialize(proto, cfg, violations.swap_remove(0));
            }
            candidates.sort_unstable_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
            let mut next = Vec::new();
            for (key, path, sys) in candidates {
                if visited.insert(key) {
                    states += 1;
                    if states >= cfg.max_states {
                        return ExploreOutcome::Truncated { states };
                    }
                    next.push(Node { sys, path });
                }
            }
            frontier = next;
        }
        ExploreOutcome::Exhausted { states }
    }

    #[test]
    fn rank_merge_matches_cloned_path_reference() {
        let protos: Vec<Box<dyn DataLink>> = vec![
            Box::new(AlternatingBit::new()),
            Box::new(NaiveCycle::new(3)),
            Box::new(SequenceNumber::new()),
            Box::new(GoBackN::new(1)),
        ];
        let scopes = [
            ExploreConfig::default(),
            ExploreConfig {
                discipline: Discipline::BoundedReorder(2),
                ..ExploreConfig::default()
            },
            ExploreConfig {
                discipline: Discipline::LossyFifo,
                ..ExploreConfig::default()
            },
            ExploreConfig {
                max_states: 40,
                ..ExploreConfig::default()
            },
        ];
        for proto in &protos {
            for cfg in &scopes {
                let reference = cloned_path_reference(proto.as_ref(), cfg).report();
                for threads in [1, 4] {
                    let engine = explore_parallel(proto.as_ref(), cfg, threads).report();
                    assert_eq!(
                        reference,
                        engine,
                        "{} / {} / {threads} threads: parent-pointer engine \
                         diverged from the owned-path reference",
                        proto.name(),
                        cfg.discipline,
                    );
                }
            }
        }
    }

    #[test]
    fn telemetry_observes_without_perturbing() {
        let cfg = ExploreConfig::default();
        let plain = ParallelExplorer::new(4)
            .explore(&SequenceNumber::new(), &cfg)
            .report();

        let registry = Arc::new(Registry::new());
        let trace = Arc::new(TraceSink::new());
        let instrumented = ParallelExplorer::new(4)
            .with_telemetry(Arc::clone(&registry), Some(Arc::clone(&trace)))
            .explore(&SequenceNumber::new(), &cfg)
            .report();
        assert_eq!(plain, instrumented, "telemetry must not change the outcome");

        let snap = registry.snapshot();
        let states = snap.counters["explore.states"];
        let candidates = snap.counters["explore.candidates"];
        assert!(states > 1, "visited more than the root");
        assert!(
            candidates >= states - 1,
            "every non-root state was a candidate"
        );
        assert_eq!(
            snap.histograms["explore.shard_occupancy"].count, SHARDS as u64,
            "one occupancy sample per shard"
        );
        assert_eq!(
            snap.histograms["explore.shard_occupancy"].sum, states,
            "shard occupancy sums to the unique-state count"
        );
        assert!(
            snap.histograms["explore.frontier_width"].count >= 1,
            "at least one level was recorded"
        );
        assert!(snap.values.contains_key("explore.states_per_sec"));
        assert!(
            snap.gauges["explore.peak_frontier_bytes"].value > 0,
            "resident frontier estimate was recorded"
        );
        assert!(!trace.is_empty(), "per-level spans were recorded");
    }
}
