//! Parallel state-space exploration: the engine of [`explore`] scaled to
//! every core, with the sequential explorer kept as its oracle.
//!
//! [`ParallelExplorer`] runs a **level-synchronized** breadth-first search
//! over the composed system: all states at adversary-action depth `d` are
//! expanded (in parallel) before any state at depth `d+1`, so the
//! "shortest counterexample" guarantee of the sequential explorer is
//! preserved exactly. Within a level, worker threads claim chunks of the
//! frontier from a shared atomic cursor — dynamic load balancing with no
//! external work-stealing runtime, in keeping with the workspace's
//! zero-dependency policy.
//!
//! **Determinism.** The outcome is a pure function of (protocol, config):
//! thread count and OS scheduling cannot change it.
//!
//! - Workers only *read* the visited set (it is frozen during a level);
//!   newly discovered states are merged after the level in sorted
//!   `(state key, path)` order, so when two paths reach the same state in
//!   the same level, the lexicographically smallest path deterministically
//!   claims it.
//! - Violations found within a level are collected, and the
//!   lexicographically smallest schedule wins — not the first one a thread
//!   happened to stumble on. (The sequential oracle instead returns the
//!   first violation in discovery order; both are shortest, so outcome
//!   kind and depth always agree, while the schedule bytes may differ
//!   between the two engines — never between thread counts.)
//! - The state budget is enforced during the sorted merge, so `Truncated`
//!   outcomes report a thread-count-independent state count. When a level
//!   contains both a violation and the budget edge, the violation wins
//!   (the conclusive answer beats the resource excuse); the sequential
//!   oracle may report `Truncated` on such knife-edge scopes.
//!
//! Frontier states are held with counters-only executions
//! ([`System::disable_event_log`]) so cloning a node is O(protocol state),
//! not O(history); the winning counterexample is re-materialised by
//! replaying its schedule through the strict scheduler — which doubles as
//! an end-to-end validation of every reported attack.

use crate::explore::{apply, enabled_actions, state_key, to_step, ExploreConfig, ExploreOutcome};
use crate::schedule::{Schedule, ScheduleStep};
use crate::system::System;
use crate::workpool::ChunkCursor;
use nonfifo_protocols::DataLink;
use nonfifo_telemetry::{Counter, Histogram, Registry, TraceSink};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Visited-set shards: the key's low bits pick the shard. Sharding keeps
/// the per-level merge cache-friendly and lets `reserve` stay incremental;
/// lookups during expansion are lock-free because the set is frozen.
const SHARDS: usize = 64;

/// Frontier nodes a worker claims per cursor fetch. Small enough to
/// balance skewed levels, large enough to keep the cursor cold.
const CHUNK: usize = 16;

/// A frontier node: a deduplicated system state and the lexicographically
/// smallest action path known to reach it.
struct Node {
    sys: System,
    path: Vec<ScheduleStep>,
}

/// A successor discovered during a level, pending the deterministic merge.
struct Candidate {
    key: u64,
    path: Vec<ScheduleStep>,
    sys: System,
}

/// The work-stealing breadth-first exploration engine.
///
/// # Example
///
/// ```
/// use nonfifo_adversary::{ExploreConfig, ParallelExplorer};
/// use nonfifo_protocols::AlternatingBit;
///
/// let outcome = ParallelExplorer::new(2).explore(&AlternatingBit::new(), &ExploreConfig::default());
/// assert!(outcome.is_counterexample());
/// ```
#[derive(Debug, Clone)]
pub struct ParallelExplorer {
    threads: usize,
    telemetry: Option<ExploreTelemetry>,
}

/// Pre-bound metric handles for the explorer. Recording is relaxed atomics
/// on shared cells, so worker threads update them lock-free; nothing here
/// is ever read back into the search, keeping reports byte-identical with
/// telemetry on or off.
#[derive(Debug, Clone)]
struct ExploreTelemetry {
    registry: Arc<Registry>,
    trace: Option<Arc<TraceSink>>,
    /// Frontier nodes expanded (worker-side).
    expansions: Counter,
    /// Successors generated across all levels (worker-side).
    candidates: Counter,
    /// Successors rejected as already-visited: frozen prior-level hits in
    /// workers plus same-level duplicates caught by the sorted merge.
    dedup_hits: Counter,
    /// Unique states admitted to the visited set.
    states: Counter,
    /// Frontier width, one observation per depth level.
    frontier_width: Histogram,
}

impl ExploreTelemetry {
    fn new(registry: Arc<Registry>, trace: Option<Arc<TraceSink>>) -> Self {
        ExploreTelemetry {
            expansions: registry.counter("explore.expansions"),
            candidates: registry.counter("explore.candidates"),
            dedup_hits: registry.counter("explore.dedup_hits"),
            states: registry.counter("explore.states"),
            frontier_width: registry.histogram("explore.frontier_width"),
            registry,
            trace,
        }
    }

    /// End-of-run derived metrics: visited-set shard occupancy (balance of
    /// the `key % SHARDS` split) and overall throughput.
    fn finalize(&self, shards: &[HashSet<u64>], elapsed_secs: f64) {
        let occupancy = self.registry.histogram("explore.shard_occupancy");
        for shard in shards {
            occupancy.record(shard.len() as u64);
        }
        let states: usize = shards.iter().map(HashSet::len).sum();
        if elapsed_secs > 0.0 {
            self.registry
                .set_value("explore.states_per_sec", states as f64 / elapsed_secs);
        }
    }
}

impl ParallelExplorer {
    /// Creates an explorer with `threads` workers; `0` means one per
    /// available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        ParallelExplorer {
            threads,
            telemetry: None,
        }
    }

    /// Attaches a metrics registry (and optionally a trace sink) that every
    /// subsequent [`explore`](ParallelExplorer::explore) call records into:
    /// states/candidates/dedup counters, per-depth frontier widths, shard
    /// occupancy, throughput, and per-level spans. Telemetry never feeds
    /// back into the search — outcomes stay byte-identical.
    pub fn with_telemetry(
        mut self,
        registry: Arc<Registry>,
        trace: Option<Arc<TraceSink>>,
    ) -> Self {
        self.telemetry = Some(ExploreTelemetry::new(registry, trace));
        self
    }

    /// The worker count this explorer will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Explores `proto` within `cfg`'s scope. Same contract as
    /// [`explore`](crate::explore()): shortest counterexample, certificate,
    /// or truncation — and the result is identical for every thread count.
    pub fn explore(&self, proto: &dyn DataLink, cfg: &ExploreConfig) -> ExploreOutcome {
        let started = Instant::now();
        let mut shards: Vec<HashSet<u64>> = (0..SHARDS).map(|_| HashSet::new()).collect();
        let outcome = self.run(proto, cfg, &mut shards);
        if let Some(tel) = &self.telemetry {
            tel.finalize(&shards, started.elapsed().as_secs_f64());
            tel.registry
                .gauge("explore.threads")
                .set(self.threads as u64);
        }
        outcome
    }

    fn run(
        &self,
        proto: &dyn DataLink,
        cfg: &ExploreConfig,
        shards: &mut [HashSet<u64>],
    ) -> ExploreOutcome {
        let mut root = System::new(proto);
        root.disable_event_log();
        let root_key = state_key(&root);
        shards[shard_of(root_key)].insert(root_key);
        let mut states = 1usize;
        let tel = self.telemetry.as_ref();
        if let Some(t) = tel {
            t.states.inc();
        }
        let mut frontier = vec![Node {
            sys: root,
            path: Vec::new(),
        }];

        for depth in 0..cfg.max_depth {
            if frontier.is_empty() {
                break;
            }
            let _level_span = tel.and_then(|t| t.trace.as_deref()).map(|trace| {
                trace.span_with_args(
                    "explore",
                    &format!("level {depth}"),
                    vec![
                        ("depth".to_string(), depth as u64),
                        ("frontier".to_string(), frontier.len() as u64),
                    ],
                )
            });
            if let Some(t) = tel {
                t.frontier_width.record(frontier.len() as u64);
            }
            let (mut violations, mut candidates) = self.expand_level(&frontier, shards, cfg);

            if !violations.is_empty() {
                violations.sort_unstable();
                return materialize(proto, violations.swap_remove(0));
            }

            // Deterministic merge: sorted by (key, path), so the smallest
            // path claims each state whatever order threads found them in.
            candidates.sort_unstable_by(|a, b| (a.key, &a.path).cmp(&(b.key, &b.path)));
            let mut next = Vec::with_capacity(candidates.len());
            for c in candidates {
                if shards[shard_of(c.key)].insert(c.key) {
                    states += 1;
                    if let Some(t) = tel {
                        t.states.inc();
                    }
                    if states >= cfg.max_states {
                        return ExploreOutcome::Truncated { states };
                    }
                    next.push(Node {
                        sys: c.sys,
                        path: c.path,
                    });
                } else if let Some(t) = tel {
                    t.dedup_hits.inc();
                }
            }
            frontier = next;
        }
        ExploreOutcome::Exhausted { states }
    }

    /// Expands every frontier node, returning the violating paths and the
    /// not-yet-visited successors discovered at this level. Work is claimed
    /// in [`CHUNK`]-sized slices from an atomic cursor.
    fn expand_level(
        &self,
        frontier: &[Node],
        shards: &[HashSet<u64>],
        cfg: &ExploreConfig,
    ) -> (Vec<Vec<ScheduleStep>>, Vec<Candidate>) {
        let workers = self.threads.min(frontier.len().div_ceil(CHUNK)).max(1);
        let tel = self.telemetry.as_ref();
        if workers == 1 {
            let mut violations = Vec::new();
            let mut candidates = Vec::new();
            for node in frontier {
                expand_node(node, shards, cfg, tel, &mut violations, &mut candidates);
            }
            return (violations, candidates);
        }
        let cursor = ChunkCursor::new(frontier.len(), CHUNK);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut violations = Vec::new();
                        let mut candidates = Vec::new();
                        while let Some(range) = cursor.claim() {
                            for node in &frontier[range] {
                                expand_node(
                                    node,
                                    shards,
                                    cfg,
                                    tel,
                                    &mut violations,
                                    &mut candidates,
                                );
                            }
                        }
                        (violations, candidates)
                    })
                })
                .collect();
            let mut violations = Vec::new();
            let mut candidates = Vec::new();
            for handle in handles {
                let (v, c) = handle.join().expect("explorer worker panicked");
                violations.extend(v);
                candidates.extend(c);
            }
            (violations, candidates)
        })
    }
}

fn shard_of(key: u64) -> usize {
    (key % SHARDS as u64) as usize
}

fn expand_node(
    node: &Node,
    shards: &[HashSet<u64>],
    cfg: &ExploreConfig,
    tel: Option<&ExploreTelemetry>,
    violations: &mut Vec<Vec<ScheduleStep>>,
    candidates: &mut Vec<Candidate>,
) {
    if let Some(t) = tel {
        t.expansions.inc();
    }
    for action in enabled_actions(&node.sys, cfg) {
        let mut next = node.sys.clone();
        apply(&mut next, action);
        let mut path = node.path.clone();
        path.push(to_step(action));
        if next.violation().is_some() {
            violations.push(path);
            continue;
        }
        let key = state_key(&next);
        // Frozen prior-level membership check; same-level duplicates are
        // resolved in the sorted merge.
        if !shards[shard_of(key)].contains(&key) {
            if let Some(t) = tel {
                t.candidates.inc();
            }
            candidates.push(Candidate {
                key,
                path,
                sys: next,
            });
        } else if let Some(t) = tel {
            t.dedup_hits.inc();
        }
    }
}

/// Re-runs the winning path through the strict scheduler to recover the
/// full invalid execution (frontier systems carry counters-only logs).
fn materialize(proto: &dyn DataLink, steps: Vec<ScheduleStep>) -> ExploreOutcome {
    let schedule = Schedule::new(steps);
    let sys = schedule
        .run(proto)
        .expect("explorer-found schedule must replay");
    assert!(
        sys.violation().is_some(),
        "explorer-found schedule must reproduce its violation"
    );
    ExploreOutcome::Counterexample {
        execution: sys.execution().clone(),
        depth: schedule.steps().len(),
        schedule,
    }
}

/// Convenience wrapper: [`ParallelExplorer::new(threads)`] then
/// [`explore`](ParallelExplorer::explore).
pub fn explore_parallel(
    proto: &dyn DataLink,
    cfg: &ExploreConfig,
    threads: usize,
) -> ExploreOutcome {
    ParallelExplorer::new(threads).explore(proto, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Discipline};
    use nonfifo_protocols::{AlternatingBit, GoBackN, NaiveCycle, SequenceNumber};

    fn outcome_kind(o: &ExploreOutcome) -> &'static str {
        match o {
            ExploreOutcome::Counterexample { .. } => "counterexample",
            ExploreOutcome::Exhausted { .. } => "exhausted",
            ExploreOutcome::Truncated { .. } => "truncated",
        }
    }

    #[test]
    fn byte_identical_reports_across_thread_counts() {
        let cfg = ExploreConfig::default();
        let protos: Vec<Box<dyn DataLink>> = vec![
            Box::new(AlternatingBit::new()),
            Box::new(NaiveCycle::new(3)),
            Box::new(SequenceNumber::new()),
            Box::new(GoBackN::new(1)),
        ];
        for proto in &protos {
            let reports: Vec<String> = [1, 2, 8]
                .iter()
                .map(|&t| explore_parallel(proto.as_ref(), &cfg, t).report())
                .collect();
            assert_eq!(reports[0], reports[1], "{}: 1 vs 2 threads", proto.name());
            assert_eq!(reports[0], reports[2], "{}: 1 vs 8 threads", proto.name());
        }
    }

    #[test]
    fn agrees_with_sequential_oracle_on_kind_depth_and_states() {
        let cfg = ExploreConfig::default();
        let protos: Vec<Box<dyn DataLink>> = vec![
            Box::new(AlternatingBit::new()),
            Box::new(NaiveCycle::new(3)),
            Box::new(SequenceNumber::new()),
        ];
        for proto in &protos {
            let seq = explore(proto.as_ref(), &cfg);
            let par = explore_parallel(proto.as_ref(), &cfg, 4);
            assert_eq!(
                outcome_kind(&seq),
                outcome_kind(&par),
                "{}: outcome kinds diverge",
                proto.name()
            );
            match (&seq, &par) {
                (
                    ExploreOutcome::Counterexample { depth: a, .. },
                    ExploreOutcome::Counterexample { depth: b, .. },
                ) => assert_eq!(a, b, "{}: counterexample depths diverge", proto.name()),
                (
                    ExploreOutcome::Exhausted { states: a },
                    ExploreOutcome::Exhausted { states: b },
                ) => assert_eq!(a, b, "{}: certificate state counts diverge", proto.name()),
                _ => {}
            }
        }
    }

    #[test]
    fn parallel_counterexample_replays_and_is_shortest() {
        let outcome = explore_parallel(&AlternatingBit::new(), &ExploreConfig::default(), 8);
        let ExploreOutcome::Counterexample {
            depth, schedule, ..
        } = outcome
        else {
            panic!("expected counterexample");
        };
        assert!(depth <= 7, "depth {depth}");
        let sys = schedule.run(&AlternatingBit::new()).expect("replay");
        assert!(sys.violation().is_some());
    }

    #[test]
    fn truncation_is_deterministic_and_explicit() {
        let cfg = ExploreConfig {
            max_states: 10,
            ..ExploreConfig::default()
        };
        let a = explore_parallel(&SequenceNumber::new(), &cfg, 1);
        let b = explore_parallel(&SequenceNumber::new(), &cfg, 8);
        assert!(a.is_truncated(), "got {a:?}");
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn disciplines_flow_through_the_parallel_engine() {
        let lossy = ExploreConfig {
            discipline: Discipline::LossyFifo,
            ..ExploreConfig::default()
        };
        assert!(explore_parallel(&AlternatingBit::new(), &lossy, 4).is_certificate());
        let reorder = ExploreConfig {
            discipline: Discipline::BoundedReorder(8),
            ..ExploreConfig::default()
        };
        assert!(explore_parallel(&AlternatingBit::new(), &reorder, 4).is_counterexample());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(ParallelExplorer::new(0).threads() >= 1);
        assert_eq!(ParallelExplorer::new(3).threads(), 3);
    }

    #[test]
    fn telemetry_observes_without_perturbing() {
        let cfg = ExploreConfig::default();
        let plain = ParallelExplorer::new(4)
            .explore(&SequenceNumber::new(), &cfg)
            .report();

        let registry = Arc::new(Registry::new());
        let trace = Arc::new(TraceSink::new());
        let instrumented = ParallelExplorer::new(4)
            .with_telemetry(Arc::clone(&registry), Some(Arc::clone(&trace)))
            .explore(&SequenceNumber::new(), &cfg)
            .report();
        assert_eq!(plain, instrumented, "telemetry must not change the outcome");

        let snap = registry.snapshot();
        let states = snap.counters["explore.states"];
        let candidates = snap.counters["explore.candidates"];
        assert!(states > 1, "visited more than the root");
        assert!(
            candidates >= states - 1,
            "every non-root state was a candidate"
        );
        assert_eq!(
            snap.histograms["explore.shard_occupancy"].count, SHARDS as u64,
            "one occupancy sample per shard"
        );
        assert_eq!(
            snap.histograms["explore.shard_occupancy"].sum, states,
            "shard occupancy sums to the unique-state count"
        );
        assert!(
            snap.histograms["explore.frontier_width"].count >= 1,
            "at least one level was recorded"
        );
        assert!(snap.values.contains_key("explore.states_per_sec"));
        assert!(!trace.is_empty(), "per-level spans were recorded");
    }
}
