//! Parallel state-space exploration: the engine of [`explore`] scaled to
//! every core, with the sequential explorer kept as its oracle.
//!
//! [`ParallelExplorer`] runs a **level-synchronized** breadth-first search
//! over the composed system: all states at adversary-action depth `d` are
//! expanded (in parallel) before any state at depth `d+1`, so the
//! "shortest counterexample" guarantee of the sequential explorer is
//! preserved exactly. Within a level, worker threads claim chunks of the
//! frontier from a shared atomic cursor — dynamic load balancing with no
//! external work-stealing runtime, in keeping with the workspace's
//! zero-dependency policy.
//!
//! **Determinism.** The outcome is a pure function of (protocol, config):
//! thread count and OS scheduling cannot change it.
//!
//! - Workers only *read* the visited set (it is frozen during a level);
//!   newly discovered states are merged after the level in sorted
//!   `(state key, path)` order, so when two paths reach the same state in
//!   the same level, the lexicographically smallest path deterministically
//!   claims it.
//! - Violations found within a level are collected, and the
//!   lexicographically smallest schedule wins — not the first one a thread
//!   happened to stumble on. (The sequential oracle instead returns the
//!   first violation in discovery order; both are shortest, so outcome
//!   kind and depth always agree, while the schedule bytes may differ
//!   between the two engines — never between thread counts.)
//! - The state budget is enforced during the sorted merge, so `Truncated`
//!   outcomes report a thread-count-independent state count. When a level
//!   contains both a violation and the budget edge, the violation wins
//!   (the conclusive answer beats the resource excuse); the sequential
//!   oracle may report `Truncated` on such knife-edge scopes.
//!
//! Frontier states are held with counters-only executions
//! ([`System::disable_event_log`]) so cloning a node is O(protocol state),
//! not O(history); the winning counterexample is re-materialised by
//! replaying its schedule through the strict scheduler — which doubles as
//! an end-to-end validation of every reported attack.

use crate::explore::{apply, enabled_actions, state_key, to_step, ExploreConfig, ExploreOutcome};
use crate::schedule::{Schedule, ScheduleStep};
use crate::system::System;
use nonfifo_protocols::DataLink;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Visited-set shards: the key's low bits pick the shard. Sharding keeps
/// the per-level merge cache-friendly and lets `reserve` stay incremental;
/// lookups during expansion are lock-free because the set is frozen.
const SHARDS: usize = 64;

/// Frontier nodes a worker claims per cursor fetch. Small enough to
/// balance skewed levels, large enough to keep the cursor cold.
const CHUNK: usize = 16;

/// A frontier node: a deduplicated system state and the lexicographically
/// smallest action path known to reach it.
struct Node {
    sys: System,
    path: Vec<ScheduleStep>,
}

/// A successor discovered during a level, pending the deterministic merge.
struct Candidate {
    key: u64,
    path: Vec<ScheduleStep>,
    sys: System,
}

/// The work-stealing breadth-first exploration engine.
///
/// # Example
///
/// ```
/// use nonfifo_adversary::{ExploreConfig, ParallelExplorer};
/// use nonfifo_protocols::AlternatingBit;
///
/// let outcome = ParallelExplorer::new(2).explore(&AlternatingBit::new(), &ExploreConfig::default());
/// assert!(outcome.is_counterexample());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelExplorer {
    threads: usize,
}

impl ParallelExplorer {
    /// Creates an explorer with `threads` workers; `0` means one per
    /// available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        ParallelExplorer { threads }
    }

    /// The worker count this explorer will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Explores `proto` within `cfg`'s scope. Same contract as
    /// [`explore`](crate::explore()): shortest counterexample, certificate,
    /// or truncation — and the result is identical for every thread count.
    pub fn explore(&self, proto: &dyn DataLink, cfg: &ExploreConfig) -> ExploreOutcome {
        let mut root = System::new(proto);
        root.disable_event_log();
        let root_key = state_key(&root);
        let mut shards: Vec<HashSet<u64>> = (0..SHARDS).map(|_| HashSet::new()).collect();
        shards[shard_of(root_key)].insert(root_key);
        let mut states = 1usize;
        let mut frontier = vec![Node {
            sys: root,
            path: Vec::new(),
        }];

        for _depth in 0..cfg.max_depth {
            if frontier.is_empty() {
                break;
            }
            let (mut violations, mut candidates) = self.expand_level(&frontier, &shards, cfg);

            if !violations.is_empty() {
                violations.sort_unstable();
                return materialize(proto, violations.swap_remove(0));
            }

            // Deterministic merge: sorted by (key, path), so the smallest
            // path claims each state whatever order threads found them in.
            candidates.sort_unstable_by(|a, b| (a.key, &a.path).cmp(&(b.key, &b.path)));
            let mut next = Vec::with_capacity(candidates.len());
            for c in candidates {
                if shards[shard_of(c.key)].insert(c.key) {
                    states += 1;
                    if states >= cfg.max_states {
                        return ExploreOutcome::Truncated { states };
                    }
                    next.push(Node {
                        sys: c.sys,
                        path: c.path,
                    });
                }
            }
            frontier = next;
        }
        ExploreOutcome::Exhausted { states }
    }

    /// Expands every frontier node, returning the violating paths and the
    /// not-yet-visited successors discovered at this level. Work is claimed
    /// in [`CHUNK`]-sized slices from an atomic cursor.
    fn expand_level(
        &self,
        frontier: &[Node],
        shards: &[HashSet<u64>],
        cfg: &ExploreConfig,
    ) -> (Vec<Vec<ScheduleStep>>, Vec<Candidate>) {
        let workers = self.threads.min(frontier.len().div_ceil(CHUNK)).max(1);
        if workers == 1 {
            let mut violations = Vec::new();
            let mut candidates = Vec::new();
            for node in frontier {
                expand_node(node, shards, cfg, &mut violations, &mut candidates);
            }
            return (violations, candidates);
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut violations = Vec::new();
                        let mut candidates = Vec::new();
                        loop {
                            let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                            if start >= frontier.len() {
                                break;
                            }
                            let end = (start + CHUNK).min(frontier.len());
                            for node in &frontier[start..end] {
                                expand_node(node, shards, cfg, &mut violations, &mut candidates);
                            }
                        }
                        (violations, candidates)
                    })
                })
                .collect();
            let mut violations = Vec::new();
            let mut candidates = Vec::new();
            for handle in handles {
                let (v, c) = handle.join().expect("explorer worker panicked");
                violations.extend(v);
                candidates.extend(c);
            }
            (violations, candidates)
        })
    }
}

fn shard_of(key: u64) -> usize {
    (key % SHARDS as u64) as usize
}

fn expand_node(
    node: &Node,
    shards: &[HashSet<u64>],
    cfg: &ExploreConfig,
    violations: &mut Vec<Vec<ScheduleStep>>,
    candidates: &mut Vec<Candidate>,
) {
    for action in enabled_actions(&node.sys, cfg) {
        let mut next = node.sys.clone();
        apply(&mut next, action);
        let mut path = node.path.clone();
        path.push(to_step(action));
        if next.violation().is_some() {
            violations.push(path);
            continue;
        }
        let key = state_key(&next);
        // Frozen prior-level membership check; same-level duplicates are
        // resolved in the sorted merge.
        if !shards[shard_of(key)].contains(&key) {
            candidates.push(Candidate {
                key,
                path,
                sys: next,
            });
        }
    }
}

/// Re-runs the winning path through the strict scheduler to recover the
/// full invalid execution (frontier systems carry counters-only logs).
fn materialize(proto: &dyn DataLink, steps: Vec<ScheduleStep>) -> ExploreOutcome {
    let schedule = Schedule::new(steps);
    let sys = schedule
        .run(proto)
        .expect("explorer-found schedule must replay");
    assert!(
        sys.violation().is_some(),
        "explorer-found schedule must reproduce its violation"
    );
    ExploreOutcome::Counterexample {
        execution: sys.execution().clone(),
        depth: schedule.steps().len(),
        schedule,
    }
}

/// Convenience wrapper: [`ParallelExplorer::new(threads)`] then
/// [`explore`](ParallelExplorer::explore).
pub fn explore_parallel(
    proto: &dyn DataLink,
    cfg: &ExploreConfig,
    threads: usize,
) -> ExploreOutcome {
    ParallelExplorer::new(threads).explore(proto, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Discipline};
    use nonfifo_protocols::{AlternatingBit, GoBackN, NaiveCycle, SequenceNumber};

    fn outcome_kind(o: &ExploreOutcome) -> &'static str {
        match o {
            ExploreOutcome::Counterexample { .. } => "counterexample",
            ExploreOutcome::Exhausted { .. } => "exhausted",
            ExploreOutcome::Truncated { .. } => "truncated",
        }
    }

    #[test]
    fn byte_identical_reports_across_thread_counts() {
        let cfg = ExploreConfig::default();
        let protos: Vec<Box<dyn DataLink>> = vec![
            Box::new(AlternatingBit::new()),
            Box::new(NaiveCycle::new(3)),
            Box::new(SequenceNumber::new()),
            Box::new(GoBackN::new(1)),
        ];
        for proto in &protos {
            let reports: Vec<String> = [1, 2, 8]
                .iter()
                .map(|&t| explore_parallel(proto.as_ref(), &cfg, t).report())
                .collect();
            assert_eq!(reports[0], reports[1], "{}: 1 vs 2 threads", proto.name());
            assert_eq!(reports[0], reports[2], "{}: 1 vs 8 threads", proto.name());
        }
    }

    #[test]
    fn agrees_with_sequential_oracle_on_kind_depth_and_states() {
        let cfg = ExploreConfig::default();
        let protos: Vec<Box<dyn DataLink>> = vec![
            Box::new(AlternatingBit::new()),
            Box::new(NaiveCycle::new(3)),
            Box::new(SequenceNumber::new()),
        ];
        for proto in &protos {
            let seq = explore(proto.as_ref(), &cfg);
            let par = explore_parallel(proto.as_ref(), &cfg, 4);
            assert_eq!(
                outcome_kind(&seq),
                outcome_kind(&par),
                "{}: outcome kinds diverge",
                proto.name()
            );
            match (&seq, &par) {
                (
                    ExploreOutcome::Counterexample { depth: a, .. },
                    ExploreOutcome::Counterexample { depth: b, .. },
                ) => assert_eq!(a, b, "{}: counterexample depths diverge", proto.name()),
                (
                    ExploreOutcome::Exhausted { states: a },
                    ExploreOutcome::Exhausted { states: b },
                ) => assert_eq!(a, b, "{}: certificate state counts diverge", proto.name()),
                _ => {}
            }
        }
    }

    #[test]
    fn parallel_counterexample_replays_and_is_shortest() {
        let outcome = explore_parallel(&AlternatingBit::new(), &ExploreConfig::default(), 8);
        let ExploreOutcome::Counterexample {
            depth, schedule, ..
        } = outcome
        else {
            panic!("expected counterexample");
        };
        assert!(depth <= 7, "depth {depth}");
        let sys = schedule.run(&AlternatingBit::new()).expect("replay");
        assert!(sys.violation().is_some());
    }

    #[test]
    fn truncation_is_deterministic_and_explicit() {
        let cfg = ExploreConfig {
            max_states: 10,
            ..ExploreConfig::default()
        };
        let a = explore_parallel(&SequenceNumber::new(), &cfg, 1);
        let b = explore_parallel(&SequenceNumber::new(), &cfg, 8);
        assert!(a.is_truncated(), "got {a:?}");
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn disciplines_flow_through_the_parallel_engine() {
        let lossy = ExploreConfig {
            discipline: Discipline::LossyFifo,
            ..ExploreConfig::default()
        };
        assert!(explore_parallel(&AlternatingBit::new(), &lossy, 4).is_certificate());
        let reorder = ExploreConfig {
            discipline: Discipline::BoundedReorder(8),
            ..ExploreConfig::default()
        };
        assert!(explore_parallel(&AlternatingBit::new(), &reorder, 4).is_counterexample());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(ParallelExplorer::new(0).threads() >= 1);
        assert_eq!(ParallelExplorer::new(3).threads(), 3);
    }
}
